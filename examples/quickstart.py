#!/usr/bin/env python
"""Quickstart: boot a DATAFLASKS cluster, store and fetch objects.

Runs a 60-node epidemic key-value store inside the simulator, waits for
the system to slice itself autonomously, then exercises the public API:
versioned puts, exact-version and latest reads, and a look at where the
data physically landed (every node of the key's slice).

Run:  python examples/quickstart.py
"""

from repro import DataFlasksCluster, DataFlasksConfig


def main() -> None:
    config = DataFlasksConfig(num_slices=5)
    cluster = DataFlasksCluster(n=60, config=config, seed=42)

    print("warming up the gossip overlay...")
    cluster.warm_up(10)
    converged = cluster.wait_for_slices(timeout=120)
    print(f"slicing converged: {converged}")
    print(f"slice populations: {cluster.slice_population()}")

    client = cluster.new_client()

    # Versioned writes — versions are assigned by the upper layer
    # (DATADROPLETS in the paper); here we play that role.
    print("\nwriting user:alice v1 and v2...")
    cluster.put_sync(client, "user:alice", b"alice v1", version=1)
    cluster.put_sync(client, "user:alice", b"alice v2", version=2)

    latest = cluster.get_sync(client, "user:alice")
    exact = cluster.get_sync(client, "user:alice", version=1)
    print(f"latest read : {latest.value!r} (version {latest.result_version})")
    print(f"exact read  : {exact.value!r} (version {exact.result_version})")

    # Let intra-slice anti-entropy replicate, then inspect placement.
    cluster.sim.run_for(20)
    target = cluster.target_slice("user:alice")
    replicas = cluster.replication_level("user:alice")
    slice_size = cluster.slice_population()[target]
    print(f"\nkey 'user:alice' belongs to slice {target}")
    print(
        f"replicas: {replicas} (current slice population {slice_size}; "
        "holders that re-sliced keep their copy until it is re-homed)"
    )

    load = cluster.server_message_load()
    print(f"\nmean messages handled per server node: {load['handled']:.1f}")


if __name__ == "__main__":
    main()

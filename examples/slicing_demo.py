#!/usr/bin/env python
"""Autonomous slicing by storage capacity (paper Section IV-A).

DATAFLASKS slices the system "according to the individual node storage
capacity. This allows that a certain node with less capacity is assigned
with less data to store." This example deploys nodes with three capacity
tiers, shows that the emergent slices sort by capacity with no global
knowledge, and then *reconfigures the slice count at runtime* — the knob
the paper identifies for autonomous replication management (fewer slices
⇒ more replicas per object; more slices ⇒ more capacity).

Run:  python examples/slicing_demo.py
"""

from collections import defaultdict

from repro import DataFlasksCluster, DataFlasksConfig
from repro.slicing.base import SlicingService


def capacity_tiers(node_id: int, rng) -> float:
    """Three hardware generations: small, medium, large nodes."""
    return [100.0, 500.0, 2000.0][node_id % 3] + rng.random()


def describe(cluster) -> None:
    tiers = defaultdict(lambda: defaultdict(int))
    for server in cluster.alive_servers():
        service = server.get_service(SlicingService)
        tier = ["small", "medium", "large"][server.id % 3]
        tiers[service.my_slice()][tier] += 1
    for slice_id in sorted(tiers):
        counts = dict(tiers[slice_id])
        print(f"  slice {slice_id}: {counts}")


def main() -> None:
    config = DataFlasksConfig(num_slices=3)
    cluster = DataFlasksCluster(
        n=60, config=config, seed=5, attribute_fn=capacity_tiers
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=120)
    cluster.sim.run_for(60)  # extra rounds to sharpen the rank estimates

    print("slices after convergence (should sort by capacity tier):")
    describe(cluster)

    print("\nreconfiguring to 6 slices at runtime...")
    for server in cluster.alive_servers():
        server.get_service(SlicingService).set_num_slices(6)
    cluster.config.num_slices = 6
    cluster.sim.run_for(60)
    print("slices after reconfiguration:")
    describe(cluster)

    print(
        "\nnote: fewer slices -> larger slices -> higher replication factor;"
        "\nmore slices -> more key ranges -> higher system capacity (Sec. IV-C)"
    )


if __name__ == "__main__":
    main()

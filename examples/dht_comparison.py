#!/usr/bin/env python
"""DATAFLASKS vs a Chord DHT under identical mass failures.

The paper's introduction argues that DHT-backed tuple-stores "rely on
structured peer-to-peer protocols which assume moderately stable
environments". This example runs the same load and the same failure
schedule against both systems and prints read availability side by side.

Run:  python examples/dht_comparison.py
"""

from repro import DataFlasksCluster, DataFlasksConfig
from repro.analysis.tables import format_table
from repro.dht import DhtCluster


def availability(cluster, client, keys) -> float:
    ok = 0
    for key in keys:
        op = client.get(key)
        cluster.sim.run_until_condition(lambda: op.done, timeout=40)
        ok += op.done and op.succeeded
    return ok / len(keys)


def run_dataflasks(kill_fraction, seed):
    cluster = DataFlasksCluster(
        n=80, config=DataFlasksConfig(num_slices=8), seed=seed
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    client = cluster.new_client(timeout=4.0, retries=2)
    keys = [f"k:{i}" for i in range(12)]
    for key in keys:
        cluster.put_sync(client, key, b"v", 1)
    cluster.sim.run_for(25)
    cluster.churn_controller().kill_fraction(kill_fraction)
    return availability(cluster, client, keys)


def run_dht(kill_fraction, seed):
    cluster = DhtCluster(n=80, replication=3, seed=seed)
    cluster.stabilize(15)
    client = cluster.new_client(timeout=4.0, retries=2)
    keys = [f"k:{i}" for i in range(12)]
    for key in keys:
        cluster.put_sync(client, key, b"v", 1)
    cluster.sim.run_for(25)
    cluster.churn_controller().kill_fraction(kill_fraction)
    return availability(cluster, client, keys)


def main() -> None:
    rows = []
    for i, fraction in enumerate((0.1, 0.3, 0.5)):
        print(f"running kill fraction {fraction:.0%}...")
        rows.append(
            [
                f"{fraction:.0%}",
                f"{run_dataflasks(fraction, seed=200 + i):.0%}",
                f"{run_dht(fraction, seed=200 + i):.0%}",
            ]
        )
    print()
    print(
        format_table(
            ["killed", "DATAFLASKS reads ok", "Chord DHT (R=3) reads ok"], rows
        )
    )
    print(
        "\nDATAFLASKS replicates across a whole slice (~10 nodes here), so"
        "\nreads survive failures that overwhelm the DHT's R=3 successor set."
    )


if __name__ == "__main__":
    main()

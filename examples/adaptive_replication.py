#!/usr/bin/env python
"""Autonomous replication management (paper Section IV-C, future work).

"For the same system size, a smaller number of slices increases the
replication factor but lowers system capacity. [...] this opens
important research paths for future work."

This example enables the implemented version of that research path: every
node runs a decentralised system-size estimator (gossiped min-hash
sketch) and a replication manager that retunes the slice count ``k`` to
keep the replication factor near a target — with no coordinator. The
cluster then *grows by 3x* and the example shows the system noticing and
reconfiguring itself, re-homing data to its new slices.

Run:  python examples/adaptive_replication.py
"""

from collections import Counter

from repro import DataFlasksCluster, DataFlasksConfig
from repro.gossip.aggregation import SystemSizeEstimator


def describe(cluster, label):
    ks = Counter(s.config.num_slices for s in cluster.alive_servers())
    sizes = [
        s.size_estimator.size()
        for s in cluster.alive_servers()
        if s.size_estimator is not None and s.size_estimator.size() is not None
    ]
    mean_size = sum(sizes) / len(sizes) if sizes else float("nan")
    print(f"{label}:")
    print(f"  alive servers: {len(cluster.alive_servers())}")
    print(f"  mean size estimate: {mean_size:.0f}")
    print(f"  slice-count votes: {dict(ks)}")


def main() -> None:
    config = DataFlasksConfig(
        num_slices=4,
        auto_replication_target=10,
        auto_replication_period=5.0,
        # Reconfiguration remaps every key; let nodes hand off and then
        # drop copies they are no longer responsible for (Section VII's
        # capacity/slack trade-off) so the replication level tracks the
        # target instead of accumulating stale copies.
        gc_foreign_data=True,
    )
    cluster = DataFlasksCluster(n=40, config=config, seed=13)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)

    client = cluster.new_client(timeout=4.0, retries=3)
    keys = [f"item:{i}" for i in range(8)]
    for key in keys:
        cluster.put_sync(client, key, b"payload", 1)

    cluster.sim.run_for(80)
    describe(cluster, "\nafter convergence at 40 nodes (target replication 10)")

    print("\ntripling the cluster to 120 nodes...")
    controller = cluster.churn_controller()
    for _ in range(80):
        controller.join()
    cluster.sim.run_for(200)  # estimator epochs + controller periods + re-homing
    describe(cluster, "after growth and autonomous reconfiguration")

    ok = 0
    for key in keys:
        op = client.get(key)
        cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        ok += op.succeeded
    print(f"\nall pre-growth data still readable: {ok}/{len(keys)}")
    mean_replication = sum(cluster.replication_level(k) for k in keys) / len(keys)
    print(f"mean replication level: {mean_replication:.1f} (target 10)")


if __name__ == "__main__":
    main()

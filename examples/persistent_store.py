#!/usr/bin/env python
"""Durable Data Stores: running DATAFLASKS nodes on disk.

The paper's Data Store "is an abstraction of the actual storing
mechanism which can be the node hard disk or other persistence
mechanism" (Section V). This example deploys a small cluster whose nodes
persist to append-only log files, crashes a node, and shows that the log
survives and recovers — including a torn final record.

Run:  python examples/persistent_store.py
"""

import os
import tempfile

from repro import DataFlasksCluster, DataFlasksConfig, FileStore


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="dataflasks-")
    print(f"node logs under {data_dir}")

    def store_factory(node_id: int) -> FileStore:
        return FileStore(os.path.join(data_dir, f"node-{node_id}.log"))

    cluster = DataFlasksCluster(
        n=30,
        config=DataFlasksConfig(num_slices=3),
        seed=11,
        store_factory=store_factory,
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    client = cluster.new_client()

    for i in range(10):
        cluster.put_sync(client, f"durable:{i}", f"value-{i}".encode(), version=1)
    cluster.sim.run_for(20)

    holder = next(s for s in cluster.alive_servers() if s.holds("durable:0"))
    log_path = os.path.join(data_dir, f"node-{holder.id}.log")
    print(f"\nnode {holder.id} holds durable:0; crashing it")
    holder.crash()  # closes the store

    print(f"log file survives: {os.path.getsize(log_path)} bytes")
    recovered = FileStore(log_path)
    obj = recovered.get("durable:0", 1)
    print(f"recovered from disk: {obj.key} v{obj.version} = {obj.value!r}")
    print(f"objects in recovered store: {len(recovered)}")

    # Crash-consistency: even a torn final record is tolerated.
    recovered.close()
    with open(log_path, "r+b") as f:
        f.truncate(os.path.getsize(log_path) - 2)
    reopened = FileStore(log_path)
    print(f"after simulated torn write: {len(reopened)} objects still readable")
    reopened.close()

    # Meanwhile the cluster still serves the data from other replicas.
    result = cluster.get_sync(client, "durable:0")
    print(f"\ncluster still serves durable:0 -> {result.value!r}")


if __name__ == "__main__":
    main()

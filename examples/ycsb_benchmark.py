#!/usr/bin/env python
"""Drive YCSB core workloads against DATAFLASKS (paper Section VI).

The paper used YCSB "as its direct client" with a write-only workload;
this example runs the load phase plus three of the standard mixes
(A: 50/50 read-update, B: 95/5, C: read-only) and prints the table of
throughput, latency and per-node message cost.

Run:  python examples/ycsb_benchmark.py
"""

from repro import DataFlasksCluster, DataFlasksConfig
from repro.analysis.tables import format_table
from repro.workload import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WorkloadRunner


def run_mix(workload, seed):
    cluster = DataFlasksCluster(
        n=60, config=DataFlasksConfig(num_slices=6), seed=seed
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    runner = WorkloadRunner(cluster, workload.scaled(40), seed=seed)

    load_stats = runner.run_load_phase()
    cluster.sim.run_for(20)  # replicate before the transaction phase

    before = cluster.server_message_load()["handled"]
    stats = runner.run_transactions(80)
    after = cluster.server_message_load()["handled"]

    reads = stats.latency_summary("read")
    return [
        workload.name,
        f"{load_stats.success_rate:.0%}",
        f"{stats.success_rate:.0%}",
        f"{stats.throughput:.1f}",
        f"{reads['p50'] * 1000:.0f}ms",
        f"{reads['p99'] * 1000:.0f}ms",
        f"{after - before:.0f}",
    ]


def main() -> None:
    rows = [
        run_mix(workload, seed=100 + i)
        for i, workload in enumerate((WORKLOAD_A, WORKLOAD_B, WORKLOAD_C))
    ]
    print(
        format_table(
            [
                "workload",
                "load ok",
                "txn ok",
                "ops/s (sim)",
                "read p50",
                "read p99",
                "msgs/node",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()

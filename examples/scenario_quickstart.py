#!/usr/bin/env python
"""Scenario engine quickstart: declarative, reproducible experiments.

Loads the bundled ``catastrophic-failure`` scenario, scales it down so
it runs in seconds, executes it at one seed (twice, to show the runs are
byte-identical), then sweeps three seeds and prints the aggregate table
— the same flow ``python -m repro scenarios run/sweep`` drives.

Run:  python examples/scenario_quickstart.py
"""

from repro.analysis.aggregate import aggregate_table_rows
from repro.analysis.tables import rows_to_table
from repro.scenarios import load_bundled, run_scenario, run_sweep


def main() -> None:
    spec = load_bundled("catastrophic-failure").scaled(
        nodes=40, num_slices=4, record_count=10, operation_count=20
    )
    print(f"scenario: {spec.name} — {spec.description}")
    print(f"scaled to {spec.nodes} nodes, {spec.churn.fraction:.0%} correlated kill\n")

    result = run_scenario(spec, seed=7)
    replay = run_scenario(spec, seed=7)
    assert result.summary_json() == replay.summary_json()
    print("single run (seed 7) — replay is byte-identical:")
    for name in (
        "converged",
        "population_alive",
        "churn_leaves",
        "txn_success_rate",
        "replication_mean",
        "messages_per_node",
    ):
        print(f"  {name:20s} {result.metrics[name]}")

    print("\nsweep over seeds 0..2 (2 worker processes; aggregates are")
    print("byte-identical to a serial run whatever the job count):")
    sweep = run_sweep(spec, seeds=[0, 1, 2], jobs=2)
    rows = [
        row
        for row in aggregate_table_rows(sweep.aggregate)
        if row["metric"] in ("txn_success_rate", "population_alive", "messages_per_node")
    ]
    print(rows_to_table(rows, ["metric", "mean", "stdev", "min", "max"]))


if __name__ == "__main__":
    main()

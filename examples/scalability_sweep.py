#!/usr/bin/env python
"""Regenerate the paper's Figures 3 and 4 at example scale.

Runs the two evaluation sweeps (Section VI) on a reduced node range so
the example finishes in about a minute; the benchmarks in benchmarks/
run the full scaled sweep and ``REPRO_FULL_SCALE=1`` enables the paper's
exact 500–3,000-node range.

Run:  python examples/scalability_sweep.py
"""

from repro.analysis import (
    run_constant_slices,
    run_proportional_slices,
)
from repro.analysis.tables import format_series, rows_to_table

COLUMNS = ["n", "num_slices", "ops", "messages_per_node", "success_rate"]
NODE_COUNTS = [60, 120, 180, 240]


def main() -> None:
    print("Figure 3 (example scale) — constant slices, fixed workload")
    rows = run_constant_slices(node_counts=NODE_COUNTS, num_slices=6, record_count=60)
    print(rows_to_table(rows, COLUMNS))
    print(
        format_series(
            "expected shape: roughly flat",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )

    print("\nFigure 4 (example scale) — slices proportional to nodes")
    rows = run_proportional_slices(
        node_counts=NODE_COUNTS, nodes_per_slice=10, records_per_slice=6
    )
    print(rows_to_table(rows, COLUMNS))
    print(
        format_series(
            "expected shape: growing with system size",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The pluggable-backend API: one experiment, every storage stack.

The registry makes the paper's comparison a loop: the same scenario
spec deploys DATAFLASKS (`core`), the Chord baseline (`dht`) and the
idealized oracle store (`oracle`) behind one `StoreBackend` surface,
and runs the identical put/get exercise against each. The oracle column
is the ground truth — its replication level is the alive population and
its reads can never be stale.

Run:  python examples/backend_quickstart.py
"""

from repro import Simulation, get_backend, list_backends
from repro.analysis.tables import format_table
from repro.scenarios.spec import ScenarioSpec


def exercise(stack: str, seed: int = 7) -> dict:
    spec = ScenarioSpec(name=f"quickstart-{stack}", stack=stack, nodes=40, num_slices=4)
    backend = get_backend(stack).deploy(spec, Simulation(seed=seed))
    converged = backend.converge(spec)

    client = backend.new_client()
    backend.put_sync(client, "user:1", b"alice", version=1)
    backend.sim.run_for(15)  # let replication settle
    result = backend.get_sync(client, "user:1")

    return {
        "backend": stack,
        "converged": converged,
        "get_ok": result.succeeded and result.value == b"alice",
        "replication": backend.replication_level("user:1"),
        "alive": len(backend.directory()),
    }


def main() -> None:
    print(f"registered backends: {list_backends()}\n")
    rows = [exercise(stack) for stack in list_backends()]
    print(
        format_table(
            ["backend", "converged", "get_ok", "replication", "alive"],
            [[r["backend"], r["converged"], r["get_ok"], r["replication"], r["alive"]] for r in rows],
        )
    )
    print("\nthe oracle replicates to every alive server by construction;")
    print("core replicates to the key's slice; the dht to R successors.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The full STRATUS stack: DATADROPLETS-lite over DATAFLASKS.

Paper Section III: STRATUS separates the soft-state layer (client
interface, caching, concurrency control — DATADROPLETS) from the
persistent-state layer (DATAFLASKS). This example runs both: an
application talks to a :class:`~repro.droplets.DropletsSession` with a
plain ``put(key, value)`` / ``get(key)`` API and never sees a version
stamp; the session orders writes, caches reads, and — the paper's
recoverability requirement — rebuilds its entire soft state from the
persistent layer after a simulated crash.

Run:  python examples/stratus_stack.py
"""

from repro import DataFlasksCluster, DataFlasksConfig
from repro.droplets import DropletsSession


def main() -> None:
    cluster = DataFlasksCluster(n=50, config=DataFlasksConfig(num_slices=5), seed=21)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=120)

    session = DropletsSession(cluster)
    print("writing through the soft-state layer (no versions in sight)...")
    for round_no in range(3):
        session.put("account:alice", f"balance={100 + round_no}".encode())
    print(f"  alice is at version {session.current_version('account:alice')}")
    print(f"  latest read: {session.get('account:alice')!r}")
    print(f"  cache hits so far: {session.cache_hits}")

    print("\ntime-travel read of version 1 (the substrate keeps history):")
    print(f"  v1 = {session.get_version('account:alice', 1)!r}")

    # Let the persistent layer replicate, then lose the soft state.
    cluster.sim.run_for(15)
    print("\nsimulating a catastrophic soft-state failure...")
    del session
    recovered = DropletsSession(cluster)
    count = recovered.rebuild(["account:alice", "account:ghost"])
    print(f"  rebuilt {count} key(s) from DATAFLASKS")
    print(f"  alice version after rebuild: {recovered.current_version('account:alice')}")
    print(f"  alice value  after rebuild: {recovered.get('account:alice')!r}")

    next_version = recovered.put("account:alice", b"balance=200")
    print(f"  post-recovery write got version {next_version} (sequence continued)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Dependability under churn — the paper's motivating scenario.

"As the system size grows, the assumption of a moderately stable
environment becomes unrealistic [...] faults and churn become the rule
instead of the exception." (Section I)

This example loads a data set into DATAFLASKS, then subjects the cluster
to three escalating insults while continuously measuring read
availability and the replication level:

1. steady session churn (nodes constantly leaving, replaced by joiners),
2. a 30% instantaneous mass failure,
3. a correlated failure killing an *entire slice* — the worst case for
   any placement scheme; anti-entropy plus adaptive slicing must regrow
   the lost replicas from other slices' refugees.

Run:  python examples/churn_tolerance.py
"""

from repro import DataFlasksCluster, DataFlasksConfig
from repro.churn import SessionChurn
from repro.slicing.base import SlicingService


def availability(cluster, client, keys) -> float:
    ok = 0
    for key in keys:
        op = client.get(key)
        cluster.sim.run_until_condition(lambda: op.done, timeout=40)
        ok += op.done and op.succeeded
    return ok / len(keys)


def mean_replication(cluster, keys) -> float:
    return sum(cluster.replication_level(k) for k in keys) / len(keys)


def main() -> None:
    config = DataFlasksConfig(num_slices=6)
    cluster = DataFlasksCluster(n=80, config=config, seed=7)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=120)
    client = cluster.new_client(timeout=4.0, retries=3)
    controller = cluster.churn_controller()

    keys = [f"object:{i}" for i in range(12)]
    for key in keys:
        cluster.put_sync(client, key, b"precious payload", version=1)
    cluster.sim.run_for(25)
    print(f"loaded {len(keys)} objects")
    print(f"  availability={availability(cluster, client, keys):.0%}"
          f"  mean replicas={mean_replication(cluster, keys):.1f}")

    print("\nphase 1: steady session churn (mean session 200s, 60s)...")
    controller.apply(SessionChurn(population=80, mean_session=200), horizon=60)
    cluster.sim.run_for(61)
    print(f"  joins={controller.joins} leaves={controller.leaves}")
    print(f"  availability={availability(cluster, client, keys):.0%}"
          f"  mean replicas={mean_replication(cluster, keys):.1f}")

    print("\nphase 2: 30% instantaneous mass failure...")
    controller.kill_fraction(0.3)
    print(f"  alive servers: {len(cluster.alive_servers())}")
    print(f"  availability (immediately)={availability(cluster, client, keys):.0%}")
    cluster.sim.run_for(40)
    print(f"  after 40s of anti-entropy: mean replicas="
          f"{mean_replication(cluster, keys):.1f}")

    print("\nphase 3: correlated failure — killing every node of one slice...")
    victim_slice = cluster.target_slice(keys[0])
    victims = [
        s for s in cluster.alive_servers()
        if s.get_service(SlicingService).my_slice() == victim_slice
    ]
    # Keep one survivor: the paper is explicit that persistence requires
    # "for each slice, there are always some correct number of nodes".
    for victim in victims[:-1]:
        victim.crash()
    print(f"  killed {len(victims) - 1} of {len(victims)} nodes in slice {victim_slice}")
    print(f"  replicas of {keys[0]!r} now: {cluster.replication_level(keys[0])}")

    cluster.sim.run_for(120)  # slicing rebalances + anti-entropy state transfer
    print(f"  after 120s: slice populations {cluster.slice_population()}")
    print(f"  replicas of {keys[0]!r}: {cluster.replication_level(keys[0])}")
    print(f"  availability={availability(cluster, client, keys):.0%}")


if __name__ == "__main__":
    main()

"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_different_names_are_independent():
    reg = RngRegistry(seed=1)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_streams_are_reproducible_across_registries():
    first = [RngRegistry(seed=9).stream("x").random() for _ in range(3)]
    second = [RngRegistry(seed=9).stream("x").random() for _ in range(3)]
    assert first == second


def test_different_master_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_derive_seed_is_stable():
    # The mapping must not depend on interpreter hash randomisation.
    assert derive_seed(0, "net") == derive_seed(0, "net")
    assert derive_seed(0, "net") != derive_seed(0, "neu")


def test_adding_streams_does_not_perturb_existing_ones():
    reg_a = RngRegistry(seed=4)
    stream = reg_a.stream("proto")
    first = stream.random()

    reg_b = RngRegistry(seed=4)
    reg_b.stream("other")  # an extra stream created first
    assert reg_b.stream("proto").random() == first


def test_fork_creates_namespaced_registry():
    reg = RngRegistry(seed=5)
    child_a = reg.fork("exp1")
    child_b = reg.fork("exp2")
    assert child_a.seed != child_b.seed
    assert child_a.stream("x").random() != child_b.stream("x").random()

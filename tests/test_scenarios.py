"""Tests for the scenario engine: spec round-trips, deterministic
replay, sweep aggregation, and an end-to-end run of every bundled spec
at small scale."""

import json

import pytest

from repro.churn.models import JOIN, LEAVE, CorrelatedFailure, PoissonChurn, SessionChurn, TraceChurn
from repro.errors import ConfigurationError
from repro.scenarios import (
    ChurnSpec,
    FaultSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
    bundled_names,
    load_all_bundled,
    load_bundled,
    load_spec,
    run_scenario,
    run_sweep,
    spec_from_dict,
)
from repro.sim.network import FixedLatency, LogNormalLatency, UniformLatency

EXPECTED_BUNDLED = {
    "asymmetric-partition",
    "baseline",
    "burst-loss",
    "catastrophic-failure",
    "crash-recover-wave",
    "dht-baseline",
    "dht-crash-recover",
    "flash-crowd",
    "flight-recorder",
    "heterogeneous-latency",
    "open-loop",
    "oracle-baseline",
    "oracle-fault-wave",
    "scale-20k",
    "scale-5k",
    "skewed-ycsb",
    "slow-quartile",
    "steady-churn",
}

# Overrides that make any bundled spec run in well under a second.
SMALL = dict(
    nodes=25,
    warmup=8.0,
    settle=6.0,
    cooldown=0.0,
    record_count=6,
    operation_count=10,
)


def small_spec(name: str, **extra) -> ScenarioSpec:
    spec = load_bundled(name)
    overrides = dict(SMALL, **extra)
    if spec.stack == "core":
        overrides.setdefault("num_slices", 3)
    spec = spec.scaled(**overrides)
    if spec.churn is not None and spec.churn.kind == "flash_crowd":
        spec.churn.joins = 8
        spec.churn.over = 2.0
    return spec


# ------------------------------------------------------------------ specs


class TestSpecValidation:
    def test_unknown_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", stack="cloud")

    def test_unknown_latency_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencySpec(kind="quantum")

    def test_unknown_churn_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(kind="meteor")

    def test_unknown_workload_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(preset="ycsb-z")

    def test_unknown_metric_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", metrics=("workload", "vibes"))

    def test_unknown_dict_key_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict({"name": "x", "nodez": 10})

    def test_malformed_trace_event_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(kind="trace", events=[[1.0, "explode"]])


class TestSpecBuilders:
    def test_latency_builders(self):
        assert isinstance(LatencySpec(kind="fixed").build(), FixedLatency)
        assert isinstance(LatencySpec(kind="uniform").build(), UniformLatency)
        assert isinstance(LatencySpec(kind="lognormal").build(), LogNormalLatency)

    def test_churn_builders(self):
        assert isinstance(
            ChurnSpec(kind="poisson", join_rate=1.0).build(10), PoissonChurn
        )
        assert isinstance(ChurnSpec(kind="session").build(10), SessionChurn)
        assert isinstance(
            ChurnSpec(kind="flash_crowd", joins=5).build(10), TraceChurn
        )
        assert isinstance(
            ChurnSpec(kind="trace", events=[[0.5, JOIN], [1.0, LEAVE]]).build(10),
            TraceChurn,
        )
        # Correlated failure is applied directly by the runner.
        assert ChurnSpec(kind="correlated", fraction=0.3).build(10) is None

    def test_flash_crowd_horizon_and_events(self):
        spec = ChurnSpec(kind="flash_crowd", joins=4, over=2.0)
        assert spec.horizon == 2.0
        events = list(spec.build(10).events(None, horizon=10.0))
        assert len(events) == 4
        assert all(e.kind == JOIN for e in events)

    def test_workload_build_applies_overrides(self):
        workload = WorkloadSpec(
            preset="ycsb-b", record_count=33, request_distribution="uniform", value_size=8
        ).build()
        assert workload.record_count == 33
        assert workload.request_distribution == "uniform"
        assert workload.value_size == 8

    def test_scaled_routes_workload_fields(self):
        spec = ScenarioSpec(name="x").scaled(nodes=7, record_count=3, operation_count=4)
        assert spec.nodes == 7
        assert spec.workload.record_count == 3
        assert spec.workload.operation_count == 4

    def test_scaled_copies_are_independent(self):
        base = ScenarioSpec(
            name="x",
            churn=ChurnSpec(kind="correlated", fraction=0.3),
            faults=[FaultSpec(kind="partition", fraction=0.3, groups=[[1], [2]])],
            config={"view_size": 10},
        )
        derived = base.scaled(nodes=9)
        derived.churn.fraction = 0.9
        derived.workload.preset = "ycsb-c"
        derived.latency.latency = 0.5
        derived.config["view_size"] = 99
        derived.faults[0].fraction = 0.8
        derived.faults[0].groups[0].append(3)
        assert base.churn.fraction == 0.3
        assert base.workload.preset == "write-only"
        assert base.latency.latency == 0.01
        assert base.config["view_size"] == 10
        assert base.faults[0].fraction == 0.3
        assert base.faults[0].groups == [[1], [2]]


class TestSpecRoundTrip:
    def full_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="round-trip",
            description="everything set",
            stack="core",
            nodes=40,
            num_slices=4,
            seed=9,
            loss_rate=0.01,
            latency=LatencySpec(kind="lognormal", median=0.05),
            churn=ChurnSpec(kind="trace", events=[[1.0, JOIN], [2.0, LEAVE]], start=3.0),
            faults=[
                FaultSpec(kind="partition", fraction=0.3, symmetric=False, start=1.0),
                FaultSpec(kind="degrade", loss=0.2, extra_latency=0.05, nodes=[1, 2]),
                FaultSpec(kind="crash_recover", fraction=0.2, duration=8.0),
            ],
            workload=WorkloadSpec(preset="ycsb-f", record_count=12, operation_count=5),
            config={"view_size": 15},
            metrics=("workload", "messages", "consistency"),
        )

    def test_dict_round_trip(self):
        spec = self.full_spec()
        assert spec_from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self.full_spec()
        assert spec_from_dict(json.loads(spec.to_json())) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = self.full_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert load_spec(str(path)) == spec

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "from-toml"',
                    "nodes = 30",
                    "[churn]",
                    'kind = "correlated"',
                    "fraction = 0.5",
                    "[[faults]]",
                    'kind = "partition"',
                    "fraction = 0.25",
                    "symmetric = false",
                    "start = 2.0",
                    "duration = 9.0",
                    "[[faults]]",
                    'kind = "burst_loss"',
                    "loss = 0.4",
                    "[workload]",
                    'preset = "ycsb-c"',
                ]
            )
        )
        spec = load_spec(str(path))
        assert spec.name == "from-toml"
        assert spec.nodes == 30
        assert spec.churn.kind == "correlated"
        assert spec.workload.preset == "ycsb-c"
        assert [f.kind for f in spec.faults] == ["partition", "burst_loss"]
        assert spec.faults[0].symmetric is False
        assert spec.faults[0].end == 11.0

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict(
                {"name": "x", "faults": [{"kind": "partition", "blast_radius": 3}]}
            )

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_spec(str(tmp_path / "spec.yaml"))


# --------------------------------------------------------------- registry


class TestRegistry:
    def test_bundled_catalogue(self):
        assert set(bundled_names()) == EXPECTED_BUNDLED

    def test_bundled_specs_parse_and_match_names(self):
        for name, spec in load_all_bundled().items():
            assert spec.name == name
            assert spec.description

    def test_unknown_bundled_name(self):
        with pytest.raises(ConfigurationError):
            load_bundled("no-such-scenario")


# ----------------------------------------------------------------- runner


class TestRunner:
    def test_same_seed_byte_identical(self):
        spec = small_spec("baseline")
        first = run_scenario(spec, seed=5)
        second = run_scenario(spec, seed=5)
        assert first.summary_json() == second.summary_json()

    def test_different_seeds_differ(self):
        spec = small_spec("baseline")
        assert (
            run_scenario(spec, seed=1).metrics != run_scenario(spec, seed=2).metrics
        )

    def test_seed_defaults_to_spec(self):
        spec = small_spec("baseline", seed=11)
        assert run_scenario(spec).seed == 11

    def test_sweep_aggregates(self):
        spec = small_spec("baseline")
        sweep = run_sweep(spec, seeds=[0, 1, 2])
        assert sweep.seeds == [0, 1, 2]
        assert len(sweep.results) == 3
        stats = sweep.aggregate["load_success_rate"]
        assert stats["n"] == 3
        assert stats["min"] <= stats["mean"] <= stats["max"]
        # Deterministic per-seed metrics aggregate deterministically.
        again = run_sweep(spec, seeds=[0, 1, 2])
        assert again.aggregate == sweep.aggregate

    def test_sweep_rows_include_seed(self):
        spec = small_spec("baseline")
        rows = run_sweep(spec, seeds=[3, 4]).rows()
        assert [row["seed"] for row in rows] == [3, 4]

    def test_parallel_sweep_byte_identical_to_serial(self):
        # The core contract of the --jobs fan-out: worker processes change
        # wall-clock only. Per-seed results arrive in seed order and the
        # aggregate (and its canonical serialisation) matches the serial
        # path byte for byte.
        spec = small_spec("baseline")
        serial = run_sweep(spec, seeds=[0, 1, 2], jobs=1)
        parallel = run_sweep(spec, seeds=[0, 1, 2], jobs=2)
        assert [r.seed for r in parallel.results] == [0, 1, 2]
        assert parallel.summary_json() == serial.summary_json()
        assert [r.summary_json() for r in parallel.results] == [
            r.summary_json() for r in serial.results
        ]

    def test_parallel_sweep_with_faults_matches_serial(self):
        # Fault schedules exercise the nemesis + network condition layers
        # inside the workers; determinism must survive pickling the spec.
        spec = small_spec("asymmetric-partition")
        serial = run_sweep(spec, seeds=[1, 2], jobs=1)
        parallel = run_sweep(spec, seeds=[1, 2], jobs=2)
        assert parallel.summary_json() == serial.summary_json()

    def test_sweep_rejects_non_positive_jobs(self):
        spec = small_spec("baseline")
        with pytest.raises(ConfigurationError):
            run_sweep(spec, seeds=[0, 1], jobs=0)

    def test_correlated_failure_kills_fraction(self):
        spec = small_spec("catastrophic-failure")
        result = run_scenario(spec, seed=2)
        expected_alive = spec.nodes - int(spec.nodes * spec.churn.fraction)
        assert result.metrics["population_alive"] == expected_alive
        assert result.metrics["churn_leaves"] == spec.nodes - expected_alive

    def test_flash_crowd_grows_population(self):
        spec = small_spec("flash-crowd", cooldown=5.0)
        result = run_scenario(spec, seed=2)
        assert result.metrics["churn_joins"] == spec.churn.joins
        assert (
            result.metrics["population_total"]
            == spec.nodes + spec.churn.joins
        )


@pytest.mark.parametrize("name", sorted(EXPECTED_BUNDLED))
def test_every_bundled_spec_runs_small(name):
    spec = small_spec(name)
    if spec.workload.mode == "open":
        # Open loop offers ops at a fixed rate: keep enough of them to
        # outlast the measurement warmup, or nothing gets measured.
        spec = spec.scaled(
            operation_count=int(spec.workload.rate * (spec.workload.warmup + 1.5))
        )
    result = run_scenario(spec, seed=1)
    metrics = result.metrics
    assert result.scenario == name
    assert metrics["converged"] == 1.0
    assert metrics["load_success_rate"] == 1.0
    assert metrics["txn_success_rate"] >= 0.8
    assert metrics["population_alive"] > 0
    assert metrics["messages_per_node"] > 0

"""Tests for overlay diagnostics."""

import networkx as nx

from repro.pss.diagnostics import (
    clustering_coefficient,
    indegree_distribution,
    indegree_stats,
    is_connected,
    overlay_graph,
    overlay_report,
)
from repro.sim.node import Node
from repro.sim.simulator import Simulation

from tests.conftest import build_overlay


def test_overlay_graph_counts_alive_only():
    sim, nodes = build_overlay(n=20, rounds=10)
    nodes[0].crash()
    graph = overlay_graph(nodes)
    assert graph.number_of_nodes() == 19
    assert nodes[0].id not in graph


def test_indegree_distribution_sums_to_node_count():
    _, nodes = build_overlay(n=30, rounds=10)
    graph = overlay_graph(nodes)
    hist = indegree_distribution(graph)
    assert sum(hist.values()) == graph.number_of_nodes()


def test_indegree_stats_of_empty_graph():
    assert indegree_stats(nx.DiGraph()) == {"mean": 0.0, "stdev": 0.0, "max": 0.0}


def test_mean_indegree_equals_mean_outdegree():
    _, nodes = build_overlay(n=30, rounds=15)
    graph = overlay_graph(nodes)
    stats = indegree_stats(graph)
    out_mean = sum(d for _, d in graph.out_degree()) / graph.number_of_nodes()
    assert abs(stats["mean"] - out_mean) < 1e-9


def test_clustering_of_empty_graph():
    assert clustering_coefficient(nx.DiGraph()) == 0.0


def test_connectivity_detects_disconnection():
    graph = nx.DiGraph()
    graph.add_edge(1, 2)
    graph.add_node(3)
    assert not is_connected(graph)
    graph.add_edge(2, 3)
    assert is_connected(graph)
    assert not is_connected(nx.DiGraph())


def test_overlay_report_keys():
    _, nodes = build_overlay(n=25, rounds=10)
    report = overlay_report(nodes)
    assert set(report) == {
        "nodes",
        "edges",
        "indegree_mean",
        "indegree_stdev",
        "indegree_max",
        "clustering",
        "connected",
    }
    assert report["nodes"] == 25
    assert report["connected"] == 1.0


def test_nodes_without_pss_contribute_no_edges():
    sim = Simulation(seed=1)
    plain = sim.add_nodes(Node, 3)
    sim.start_all()
    graph = overlay_graph(plain)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 0

"""Unit tests for the node/service framework and periodic timers."""

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.sim.node import Node, PeriodicTask, Service
from repro.sim.simulator import Simulation


@dataclass(frozen=True)
class Ping:
    body: str = "ping"


@dataclass(frozen=True)
class Pong:
    body: str = "pong"


def make_pair():
    sim = Simulation(seed=1)
    a, b = sim.add_nodes(Node, 2)
    sim.start_all()
    return sim, a, b


def test_message_dispatch_by_type():
    sim, a, b = make_pair()
    got = []
    b.register_handler(Ping, lambda msg, src: got.append((msg.body, src)))
    a.send(b.id, Ping())
    sim.run_for(1)
    assert got == [("ping", a.id)]


def test_unhandled_message_counted_not_raised():
    sim, a, b = make_pair()
    a.send(b.id, Pong())
    sim.run_for(1)
    assert sim.metrics.total("msg.unhandled.Pong") == 1


def test_unhandled_messages_counted_per_type():
    # The dead-letter counter names the message type, so a report can say
    # *which* protocol went unheard — and types the node does handle
    # never appear in the unhandled namespace.
    sim, a, b = make_pair()
    b.register_handler(Ping, lambda m, s: None)
    a.send(b.id, Ping())
    a.send(b.id, Pong())
    a.send(b.id, Pong())
    sim.run_for(1)
    assert sim.metrics.total("msg.unhandled.Pong") == 2
    assert sim.metrics.total("msg.unhandled.Ping") == 0
    unhandled = [
        name
        for name in sim.metrics.counter_names()
        if name.startswith("msg.unhandled.")
    ]
    assert unhandled == ["msg.unhandled.Pong"]


def test_duplicate_handler_registration_rejected():
    sim, a, _ = make_pair()
    a.register_handler(Ping, lambda m, s: None)
    with pytest.raises(SimulationError):
        a.register_handler(Ping, lambda m, s: None)


def test_unregister_handler():
    sim, a, b = make_pair()
    got = []
    b.register_handler(Ping, lambda m, s: got.append(m))
    b.unregister_handler(Ping)
    a.send(b.id, Ping())
    sim.run_for(1)
    assert got == []


def test_dead_node_neither_sends_nor_receives():
    sim, a, b = make_pair()
    got = []
    b.register_handler(Ping, lambda m, s: got.append(m))
    b.stop()
    assert a.send(b.id, Ping()) is True  # drops at delivery
    sim.run_for(1)
    assert got == []
    a.stop()
    assert a.send(b.id, Ping()) is False  # dead sender drops immediately


def test_stop_is_idempotent_and_start_after_stop_works():
    sim, a, b = make_pair()
    a.stop()
    a.stop()
    a.start()
    assert a.alive


def test_periodic_timer_fires_and_stops_with_node():
    sim = Simulation(seed=2)
    node = sim.add_node(Node)
    node.start()
    ticks = []
    node.every(1.0, lambda: ticks.append(sim.now), jitter=0.0)
    sim.run_for(5.5)
    assert len(ticks) == 5
    node.stop()
    sim.run_for(5)
    assert len(ticks) == 5


def test_periodic_task_jitter_desynchronises():
    sim = Simulation(seed=3)
    node = sim.add_node(Node)
    node.start()
    ticks = []
    node.every(1.0, lambda: ticks.append(sim.now))  # default 10% jitter
    sim.run_for(20)
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert any(abs(gap - 1.0) > 1e-9 for gap in gaps)
    assert all(0.8 <= gap <= 1.2 for gap in gaps)


def test_periodic_task_validation():
    sim = Simulation(seed=4)
    node = sim.add_node(Node)
    node.start()
    with pytest.raises(SimulationError):
        node.every(0.0, lambda: None)
    with pytest.raises(SimulationError):
        PeriodicTask(sim.scheduler, 1.0, lambda: None, jitter=1.0)


def test_periodic_task_stop_from_inside_callback():
    sim = Simulation(seed=5)
    node = sim.add_node(Node)
    node.start()
    ticks = []
    task_box = {}

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 2:
            task_box["t"].stop()

    task_box["t"] = node.every(1.0, tick, jitter=0.0)
    sim.run_for(10)
    assert len(ticks) == 2
    assert not task_box["t"].running


def test_after_skipped_when_node_dies():
    sim = Simulation(seed=6)
    node = sim.add_node(Node)
    node.start()
    fired = []
    node.after(2.0, fired.append, "x")
    node.stop()
    sim.run_for(5)
    assert fired == []


class Recorder(Service):
    def __init__(self):
        super().__init__()
        self.started = 0
        self.stopped = 0

    def start(self):
        self.started += 1

    def stop(self):
        self.stopped += 1


def test_service_lifecycle_follows_node():
    sim = Simulation(seed=7)
    node = sim.add_node(Node)
    service = Recorder()
    node.add_service(service)
    assert service.started == 0
    node.start()
    assert service.started == 1
    node.stop()
    assert service.stopped == 1


def test_service_added_to_running_node_starts_immediately():
    sim = Simulation(seed=8)
    node = sim.add_node(Node)
    node.start()
    service = Recorder()
    node.add_service(service)
    assert service.started == 1


def test_get_service_by_class():
    sim = Simulation(seed=9)
    node = sim.add_node(Node)
    service = Recorder()
    node.add_service(service)
    assert node.get_service(Recorder) is service
    assert node.get_service(PeriodicTask) is None  # not a service type in use

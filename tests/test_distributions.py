"""Tests for the YCSB key-choice distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    HotSpotChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    fnv64,
)

ALL_CHOOSERS = [
    lambda n: UniformChooser(n),
    lambda n: ZipfianChooser(n),
    lambda n: ScrambledZipfianChooser(n),
    lambda n: LatestChooser(n),
    lambda n: HotSpotChooser(n),
]


@pytest.mark.parametrize("make", ALL_CHOOSERS)
def test_indexes_always_in_range(make):
    chooser = make(100)
    rng = random.Random(1)
    for _ in range(2000):
        assert 0 <= chooser.next(rng) < 100


@pytest.mark.parametrize("make", ALL_CHOOSERS)
def test_item_count_validated(make):
    with pytest.raises(ConfigurationError):
        make(0)


class TestUniform:
    def test_covers_space_evenly(self):
        chooser = UniformChooser(10)
        rng = random.Random(2)
        counts = Counter(chooser.next(rng) for _ in range(10_000))
        assert min(counts.values()) > 700
        assert max(counts.values()) < 1300


class TestZipfian:
    def test_theta_validated(self):
        with pytest.raises(ConfigurationError):
            ZipfianChooser(10, theta=1.0)

    def test_item_zero_is_hottest(self):
        chooser = ZipfianChooser(1000)
        rng = random.Random(3)
        counts = Counter(chooser.next(rng) for _ in range(20_000))
        assert counts[0] == max(counts.values())

    def test_skew_matches_zipf_shape(self):
        # P(0)/P(1) should be about 2^theta for theta=0.99.
        chooser = ZipfianChooser(1000, theta=0.99)
        rng = random.Random(4)
        counts = Counter(chooser.next(rng) for _ in range(50_000))
        ratio = counts[0] / counts[1]
        assert 1.5 < ratio < 2.6

    def test_higher_theta_is_more_skewed(self):
        rng_a, rng_b = random.Random(5), random.Random(5)
        mild = ZipfianChooser(1000, theta=0.5)
        harsh = ZipfianChooser(1000, theta=0.99)
        mild_hits = sum(mild.next(rng_a) == 0 for _ in range(20_000))
        harsh_hits = sum(harsh.next(rng_b) == 0 for _ in range(20_000))
        assert harsh_hits > mild_hits


class TestScrambledZipfian:
    def test_spreads_hot_items(self):
        chooser = ScrambledZipfianChooser(1000)
        rng = random.Random(6)
        counts = Counter(chooser.next(rng) for _ in range(20_000))
        top = max(counts, key=counts.get)
        # Still skewed (one clear hot key)...
        assert counts[top] > 20_000 / 1000 * 10
        # ...but the hot key need not be index 0 (scrambling).
        hot_keys = sorted(counts, key=counts.get, reverse=True)[:10]
        assert hot_keys != list(range(10))


class TestLatest:
    def test_recent_items_hot(self):
        chooser = LatestChooser(1000)
        rng = random.Random(7)
        counts = Counter(chooser.next(rng) for _ in range(20_000))
        newest_mass = sum(counts.get(i, 0) for i in range(990, 1000))
        oldest_mass = sum(counts.get(i, 0) for i in range(0, 10))
        assert newest_mass > oldest_mass * 5

    def test_grow_shifts_hot_set(self):
        chooser = LatestChooser(100)
        for _ in range(50):
            chooser.grow()
        assert chooser.item_count == 150
        rng = random.Random(8)
        counts = Counter(chooser.next(rng) for _ in range(10_000))
        assert max(counts) >= 140  # newest items get picked


class TestHotSpot:
    def test_fractions_validated(self):
        with pytest.raises(ConfigurationError):
            HotSpotChooser(100, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotSpotChooser(100, hot_op_fraction=1.5)

    def test_hot_set_receives_hot_fraction(self):
        chooser = HotSpotChooser(1000, hot_fraction=0.1, hot_op_fraction=0.9)
        rng = random.Random(9)
        hits = sum(chooser.next(rng) < 100 for _ in range(20_000))
        assert 0.85 < hits / 20_000 < 0.95

    def test_full_hot_fraction(self):
        chooser = HotSpotChooser(10, hot_fraction=1.0, hot_op_fraction=0.5)
        rng = random.Random(10)
        for _ in range(100):
            assert 0 <= chooser.next(rng) < 10


class TestFnv:
    def test_known_stability(self):
        assert fnv64(0) == fnv64(0)
        assert fnv64(1) != fnv64(2)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    @settings(max_examples=200)
    def test_output_is_64_bit(self, value):
        assert 0 <= fnv64(value) < 2 ** 64

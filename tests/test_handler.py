"""Focused tests for the Request Handler routing logic.

These drive a single DataFlasksNode directly with crafted messages so
each routing branch (dedup, TTL, wrong slice, right slice, store
rejection) is exercised deterministically.
"""

import pytest

from repro.core.config import DataFlasksConfig
from repro.core.keyspace import slice_for_key
from repro.core.messages import GetReply, GetRequest, PutAck, PutRequest
from repro.core.node import DataFlasksNode
from repro.sim.node import Node
from repro.sim.simulator import Simulation


def make_node(num_slices=4, store_capacity=None):
    sim = Simulation(seed=1)
    config = DataFlasksConfig(
        num_slices=num_slices, store_capacity=store_capacity, ttl=5, fanout=3
    )
    node = sim.add_node(lambda nid, ctx: DataFlasksNode(nid, ctx, config=config))
    node.start()
    # A client stub records what comes back.
    client = sim.add_node(Node)
    client.start()
    inbox = []
    client.register_handler(PutAck, lambda m, s: inbox.append(m))
    client.register_handler(GetReply, lambda m, s: inbox.append(m))
    return sim, node, client, inbox


def key_in_slice(slice_id, num_slices=4):
    i = 0
    while True:
        key = f"probe{i}"
        if slice_for_key(key, num_slices) == slice_id:
            return key
        i += 1


def put_msg(key, client_id, version=1, attempt=1, ttl=5, seq=0):
    return PutRequest(key, version, b"v", (client_id, seq), attempt, client_id, ttl)


def get_msg(key, client_id, version=None, attempt=1, ttl=5, seq=0):
    return GetRequest(key, version, (client_id, seq), attempt, client_id, ttl)


def test_put_in_target_slice_stores_and_acks():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(2)
    key = key_in_slice(2)
    client.send(node.id, put_msg(key, client.id))
    sim.run_for(1)
    assert node.holds(key, 1)
    assert len(inbox) == 1
    assert isinstance(inbox[0], PutAck)
    assert inbox[0].responder_slice == 2


def test_put_outside_target_slice_not_stored():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(2)
    key = key_in_slice(1)
    client.send(node.id, put_msg(key, client.id))
    sim.run_for(1)
    assert not node.holds(key)
    assert inbox == []  # relayed, not acked


def test_duplicate_put_dropped_by_dedup():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(2)
    key = key_in_slice(2)
    client.send(node.id, put_msg(key, client.id))
    client.send(node.id, put_msg(key, client.id))  # identical msg_id
    sim.run_for(1)
    assert len(inbox) == 1
    assert sim.metrics.total("df.dedup.dropped") == 1


def test_retry_attempt_is_processed_again():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(2)
    key = key_in_slice(2)
    client.send(node.id, put_msg(key, client.id, attempt=1))
    client.send(node.id, put_msg(key, client.id, attempt=2))
    sim.run_for(1)
    assert len(inbox) == 2  # both attempts acked (storage idempotent)


def test_get_hit_replies_with_object():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(3)
    key = key_in_slice(3)
    node.store.put(key, 7, b"stored")
    client.send(node.id, get_msg(key, client.id))
    sim.run_for(1)
    assert len(inbox) == 1
    reply = inbox[0]
    assert reply.found and reply.value == b"stored" and reply.version == 7


def test_get_exact_version_miss_no_reply():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(3)
    key = key_in_slice(3)
    node.store.put(key, 1, b"v1")
    client.send(node.id, get_msg(key, client.id, version=9))
    sim.run_for(1)
    assert inbox == []  # miss: forwarded intra-slice instead
    assert sim.metrics.get("df.get.miss", node=node.id) == 1


def test_ttl_expiry_stops_forwarding():
    sim, node, client, inbox = make_node()
    node.slicing._set_slice(0)
    key = key_in_slice(1)  # not ours -> would forward
    client.send(node.id, put_msg(key, client.id, ttl=0))
    sim.run_for(1)
    assert sim.metrics.total("df.ttl.expired") == 1


def test_full_store_rejects_but_still_disseminates():
    sim, node, client, inbox = make_node(store_capacity=1)
    node.slicing._set_slice(2)
    filler = key_in_slice(2)
    node.store.put(filler, 1, b"existing")
    key = key_in_slice(2)
    if key == filler:
        key = key_in_slice(2, 4) + "x" * 0  # same helper returns first; craft another
        i = 0
        while True:
            candidate = f"other{i}"
            if slice_for_key(candidate, 4) == 2:
                key = candidate
                break
            i += 1
    client.send(node.id, put_msg(key, client.id))
    sim.run_for(1)
    assert not node.holds(key)
    assert inbox == []  # no ack for a rejected write
    assert sim.metrics.get("df.put.rejected", node=node.id) == 1


def test_unsliced_node_relays_without_storing():
    sim, node, client, inbox = make_node()
    assert node.my_slice() is None  # slicing not yet converged
    key = key_in_slice(0)
    client.send(node.id, put_msg(key, client.id))
    sim.run_for(1)
    assert not node.holds(key)
    assert inbox == []

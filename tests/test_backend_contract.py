"""The backend contract: one behavioural suite, every registered backend.

Anything registered with :func:`repro.backends.register_backend` is
automatically parametrized through the full experiment-pipeline surface:
deploy, convergence, put/get round-trips, replication reporting, churn
kill/recover, fault scheduling, and deterministic same-seed replay.
Adding a backend means passing this file — no other test changes."""

import pytest

from repro.backends import (
    BackendRegistry,
    StoreBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.errors import ConfigurationError
from repro.scenarios.spec import FaultSpec, ScenarioSpec, WorkloadSpec
from repro.scenarios.runner import run_scenario
from repro.sim.simulator import Simulation

EXPECTED_BUILTINS = {"core", "dht", "oracle"}


def contract_spec(stack: str, **overrides) -> ScenarioSpec:
    """A small, fast spec for ``stack`` (generous warmup so every stack
    converges well inside the budget)."""
    defaults = dict(
        name=f"contract-{stack}",
        stack=stack,
        nodes=24,
        num_slices=3,
        replication=3,
        warmup=10.0,
        settle=6.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def deployed(stack: str, seed: int = 3):
    spec = contract_spec(stack)
    backend = get_backend(stack).deploy(spec, Simulation(seed=seed))
    assert backend.converge(spec), f"{stack} did not converge"
    return spec, backend


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(list_backends())

    def test_lookup_returns_backend_class(self):
        for name in list_backends():
            cls = get_backend(name)
            assert issubclass(cls, StoreBackend)
            assert cls.name == name
            assert cls.description

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="registered backends"):
            get_backend("no-such-stack")

    def test_spec_rejects_unknown_stack_with_catalogue(self):
        with pytest.raises(ConfigurationError, match="core"):
            ScenarioSpec(name="x", stack="no-such-stack")

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        decorate = registry.register("dup")
        decorate(type("A", (StoreBackend,), {}))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("dup")(type("B", (StoreBackend,), {}))

    def test_alias_registration_cannot_rename_class(self):
        # `name` is shared class state: re-registering an already-named
        # backend under an alias must fail rather than silently renaming
        # it in every other registry.
        core = get_backend("core")
        registry = BackendRegistry()
        with pytest.raises(ConfigurationError, match="already named"):
            registry.register("alias")(core)
        assert core.name == "core"
        # Same name into another registry is fine (no rename involved).
        registry.register("core")(core)
        assert registry.get("core") is core

    def test_custom_registration_is_visible_everywhere(self):
        # A scratch registry mirrors the decorator flow end to end.
        registry = BackendRegistry()

        @registry.register("toy")
        class ToyBackend(StoreBackend):
            description = "toy"

        assert registry.get("toy") is ToyBackend
        assert ToyBackend.name == "toy"
        assert registry.names() == ["toy"]
        assert "toy" in registry


# ---------------------------------------------------------------- contract


@pytest.fixture(scope="module", params=sorted(EXPECTED_BUILTINS))
def stack_deployment(request):
    """One converged deployment per backend, shared across the
    read-only contract checks below."""
    return request.param, *deployed(request.param)


class TestDeployAndConverge:
    def test_deploys_requested_population(self, stack_deployment):
        _, spec, backend = stack_deployment
        assert len(backend.servers) == spec.nodes
        assert sorted(backend.directory()) == sorted(s.id for s in backend.servers)

    def test_converged_predicate_true_after_converge(self, stack_deployment):
        _, _, backend = stack_deployment
        assert backend.converged() is True


class TestRoundTrip:
    def test_put_get_round_trip(self, stack_deployment):
        stack, _, backend = stack_deployment
        client = backend.new_client()
        put = backend.put_sync(client, f"{stack}:k", b"v1", version=1)
        assert put.succeeded, f"{stack} put failed: {put.error}"
        got = backend.get_sync(client, f"{stack}:k")
        assert got.succeeded and got.value == b"v1"
        assert got.result_version == 1

    def test_replication_level_counts_alive_holders(self, stack_deployment):
        stack, _, backend = stack_deployment
        client = backend.new_client()
        backend.put_sync(client, f"{stack}:replicated", b"v", version=1)
        backend.sim.run_for(15)  # let replication settle
        assert backend.replication_level(f"{stack}:replicated") >= 1

    def test_server_message_load_counts_servers(self, stack_deployment):
        _, _, backend = stack_deployment
        load = backend.server_message_load()
        assert load["handled"] > 0


class TestChurn:
    @pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
    def test_kill_and_recover_round_trip(self, stack):
        _, backend = deployed(stack, seed=11)
        population = len(backend.servers)
        controller = backend.churn_controller()
        victim = controller.kill()
        assert victim is not None and not victim.alive
        assert len(backend.directory()) == population - 1
        recovered = controller.recover(victim.id)
        assert recovered is victim and victim.alive
        assert len(backend.directory()) == population
        assert controller.leaves == 1 and controller.recoveries == 1

    @pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
    def test_join_grows_the_directory(self, stack):
        _, backend = deployed(stack, seed=12)
        population = len(backend.directory())
        controller = backend.churn_controller()
        joiner = controller.join()
        assert joiner is not None and joiner.alive
        assert controller.joins == 1
        assert len(backend.directory()) == population + 1
        assert joiner.id in backend.directory()

    @pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
    def test_kill_fraction_scopes_to_the_alive_population(self, stack):
        _, backend = deployed(stack, seed=13)
        population = len(backend.directory())
        controller = backend.churn_controller()
        victims = controller.kill_fraction(0.25)
        assert len(victims) == int(population * 0.25)
        assert all(not v.alive for v in victims)
        assert len(backend.directory()) == population - len(victims)
        assert controller.leaves == len(victims)

    @pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
    def test_recover_of_alive_or_unknown_node_is_a_noop(self, stack):
        _, backend = deployed(stack, seed=14)
        controller = backend.churn_controller()
        alive_id = backend.directory()[0]
        assert controller.recover(alive_id) is None
        assert controller.recover(10**9) is None  # never existed
        assert controller.recoveries == 0


class TestReplicationMetrics:
    @pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
    def test_replication_block_reported_for_every_backend(self, stack):
        """The cross-stack ``replication`` metric group: every backend
        reports mean/min/lost over the loaded keys, and a fault-free run
        never loses an object."""
        spec = contract_spec(
            stack,
            workload=WorkloadSpec(preset="write-only", record_count=6),
            metrics=("workload", "replication"),
        )
        metrics = run_scenario(spec, seed=15).metrics
        for name in ("replication_mean", "replication_min", "replication_lost"):
            assert name in metrics, f"{stack} missing {name}"
        assert metrics["replication_min"] >= 1.0
        assert metrics["replication_mean"] >= metrics["replication_min"]
        assert metrics["replication_lost"] == 0.0


# ------------------------------------------------------------- determinism


@pytest.mark.parametrize("stack", sorted(EXPECTED_BUILTINS))
def test_same_seed_replay_with_faults_is_byte_identical(stack):
    """The reproducibility contract holds per backend, fault schedule
    included — the acceptance criterion for plugging in a new stack."""
    spec = contract_spec(
        stack,
        faults=[FaultSpec(kind="crash_recover", fraction=0.25, start=1.0, duration=6.0)],
        workload=WorkloadSpec(preset="ycsb-a", record_count=6, operation_count=12),
        metrics=("workload", "messages", "population", "replication", "consistency"),
    )
    first = run_scenario(spec, seed=5)
    second = run_scenario(spec, seed=5)
    assert first.summary_json() == second.summary_json()
    assert first.metrics["converged"] == 1.0
    assert first.metrics["faults_injected"] == 1.0
    assert first.metrics["faults_healed"] == 1.0


def test_oracle_is_a_consistency_ground_truth():
    """The whole point of the third backend: under faults it may lose
    availability but never consistency."""
    spec = contract_spec(
        "oracle",
        faults=[
            FaultSpec(kind="crash_recover", fraction=0.3, start=1.0, duration=8.0),
            FaultSpec(kind="burst_loss", loss=0.4, start=2.0, duration=4.0),
        ],
        workload=WorkloadSpec(preset="ycsb-a", record_count=8, operation_count=30),
        metrics=("workload", "population", "replication", "consistency"),
    )
    metrics = run_scenario(spec, seed=9).metrics
    assert metrics["stale_reads"] == 0.0
    assert metrics["lost_updates"] == 0.0
    assert metrics["lost_objects"] == 0.0
    # Full replication: every alive server holds every stored key.
    assert metrics["replication_mean"] == metrics["population_alive"]
    # No overlay to repair: heal is instantaneous.
    assert metrics["heal_converged"] == 1.0
    assert metrics["heal_time"] <= 0.5

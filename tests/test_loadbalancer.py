"""Tests for the client-side Load Balancer strategies."""

import random

from repro.core.keyspace import slice_for_key
from repro.core.loadbalancer import (
    RandomLoadBalancer,
    RoundRobinLoadBalancer,
    SliceAwareLoadBalancer,
)


def directory_of(nodes):
    return lambda: list(nodes)


class TestRandom:
    def test_pick_from_directory(self):
        lb = RandomLoadBalancer(directory_of([1, 2, 3]), random.Random(0))
        for _ in range(20):
            assert lb.pick("key", 10) in (1, 2, 3)

    def test_empty_directory_returns_none(self):
        lb = RandomLoadBalancer(directory_of([]), random.Random(0))
        assert lb.pick("key", 10) is None

    def test_spreads_over_nodes(self):
        lb = RandomLoadBalancer(directory_of(range(10)), random.Random(1))
        picks = {lb.pick("key", 10) for _ in range(200)}
        assert len(picks) == 10

    def test_directory_changes_are_visible(self):
        nodes = [1, 2]
        lb = RandomLoadBalancer(lambda: nodes, random.Random(0))
        nodes.remove(1)
        assert all(lb.pick("k", 10) == 2 for _ in range(5))


class TestRoundRobin:
    def test_cycles_in_order(self):
        lb = RoundRobinLoadBalancer(directory_of([3, 1, 2]), random.Random(0))
        picks = [lb.pick("k", 10) for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]  # sorted directory, cycled

    def test_empty_directory(self):
        lb = RoundRobinLoadBalancer(directory_of([]), random.Random(0))
        assert lb.pick("k", 10) is None


class TestSliceAware:
    def test_falls_back_to_random_without_cache(self):
        lb = SliceAwareLoadBalancer(directory_of([1, 2]), random.Random(0))
        assert lb.pick("key", 10) in (1, 2)
        assert lb.cache_misses == 1

    def test_uses_cached_slice_member(self):
        lb = SliceAwareLoadBalancer(directory_of([1, 2, 3]), random.Random(0))
        key = "user42"
        target = slice_for_key(key, 10)
        lb.note_responder(99, target)
        assert lb.pick(key, 10) == 99
        assert lb.cache_hits == 1

    def test_cache_bounded_per_slice(self):
        lb = SliceAwareLoadBalancer(directory_of([1]), random.Random(0), per_slice=2)
        for node_id in (10, 11, 12):
            lb.note_responder(node_id, 5)
        assert len(lb._slice_members[5]) == 2
        assert 10 not in lb._slice_members[5]  # FIFO eviction

    def test_failure_evicts_cached_node(self):
        lb = SliceAwareLoadBalancer(directory_of([1, 2]), random.Random(0))
        key = "user42"
        target = slice_for_key(key, 10)
        lb.note_responder(99, target)
        lb.note_failure(99)
        assert lb.pick(key, 10) in (1, 2)

    def test_node_changing_slice_moves_in_cache(self):
        lb = SliceAwareLoadBalancer(directory_of([1]), random.Random(0))
        lb.note_responder(50, 1)
        lb.note_responder(50, 2)
        assert 50 not in lb._slice_members.get(1, [])
        assert 50 in lb._slice_members[2]

    def test_none_slice_feedback_ignored(self):
        lb = SliceAwareLoadBalancer(directory_of([1]), random.Random(0))
        lb.note_responder(50, None)
        assert lb.cached_slices() == set()

    def test_cached_slices_reporting(self):
        lb = SliceAwareLoadBalancer(directory_of([1]), random.Random(0))
        lb.note_responder(10, 3)
        lb.note_responder(11, 7)
        assert lb.cached_slices() == {3, 7}

"""Tests for DataFlasksConfig validation and helpers."""

import math

import pytest

from repro.core.config import DataFlasksConfig
from repro.errors import ConfigurationError


def test_defaults_match_paper():
    config = DataFlasksConfig()
    assert config.num_slices == 10  # the paper's evaluation setting
    assert config.slicing_protocol == "dslead"  # the paper's Slice Manager


def test_effective_fanout_from_expected_n():
    config = DataFlasksConfig(expected_n=1000, fanout_c=2.0)
    assert config.effective_fanout == math.ceil(math.log(1000) + 2)


def test_explicit_fanout_wins():
    assert DataFlasksConfig(fanout=4).effective_fanout == 4


def test_scaled_to_retargets_fanout():
    base = DataFlasksConfig(expected_n=100)
    scaled = base.scaled_to(10_000)
    assert scaled.expected_n == 10_000
    assert scaled.effective_fanout > base.effective_fanout
    assert base.expected_n == 100  # original untouched


def test_scaled_to_accepts_overrides():
    scaled = DataFlasksConfig().scaled_to(500, num_slices=25)
    assert scaled.num_slices == 25


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_slices": 0},
        {"slicing_protocol": "nope"},
        {"expected_n": 0},
        {"fanout": 0},
        {"ttl": 0},
        {"intra_slice_fanout": 0},
        {"store_capacity": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        DataFlasksConfig(**kwargs)


def test_all_slicing_protocols_accepted():
    for name in ("dslead", "ordered", "sliver", "static"):
        assert DataFlasksConfig(slicing_protocol=name).slicing_protocol == name

"""Tests for the in-memory versioned store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.store import MemoryStore, StoredObject
from repro.errors import CapacityExceededError


class TestBasicOps:
    def test_put_then_get(self):
        store = MemoryStore()
        assert store.put("a", 1, b"x") is True
        obj = store.get("a", 1)
        assert obj == StoredObject("a", 1, b"x")

    def test_get_missing_returns_none(self):
        assert MemoryStore().get("nope") is None

    def test_put_duplicate_version_is_idempotent(self):
        store = MemoryStore()
        store.put("a", 1, b"x")
        assert store.put("a", 1, b"y") is False
        assert store.get("a", 1).value == b"x"  # first write wins

    def test_get_latest_version(self):
        store = MemoryStore()
        store.put("a", 1, b"v1")
        store.put("a", 3, b"v3")
        store.put("a", 2, b"v2")
        assert store.get("a").version == 3

    def test_get_exact_version(self):
        store = MemoryStore()
        store.put("a", 1, b"v1")
        store.put("a", 2, b"v2")
        assert store.get("a", 1).value == b"v1"
        assert store.get("a", 99) is None

    def test_len_counts_versions(self):
        store = MemoryStore()
        store.put("a", 1, b"")
        store.put("a", 2, b"")
        store.put("b", 1, b"")
        assert len(store) == 3

    def test_contains_checks_key_version_pair(self):
        store = MemoryStore()
        store.put("a", 1, b"")
        assert ("a", 1) in store
        assert ("a", 2) not in store


class TestDelete:
    def test_delete_specific_version(self):
        store = MemoryStore()
        store.put("a", 1, b"")
        store.put("a", 2, b"")
        assert store.delete("a", 1) == 1
        assert store.get("a", 1) is None
        assert store.get("a", 2) is not None
        assert len(store) == 1

    def test_delete_all_versions(self):
        store = MemoryStore()
        store.put("a", 1, b"")
        store.put("a", 2, b"")
        assert store.delete("a") == 2
        assert store.get("a") is None
        assert len(store) == 0

    def test_delete_missing(self):
        store = MemoryStore()
        assert store.delete("a") == 0
        store.put("a", 1, b"")
        assert store.delete("a", 9) == 0


class TestDigestAndIteration:
    def test_digest_contents(self):
        store = MemoryStore()
        store.put("a", 1, b"")
        store.put("b", 2, b"")
        assert store.digest() == frozenset({("a", 1), ("b", 2)})

    def test_keys_and_versions(self):
        store = MemoryStore()
        store.put("a", 2, b"")
        store.put("a", 1, b"")
        assert store.keys() == ["a"]
        assert store.versions("a") == [1, 2]
        assert store.versions("zz") == []

    def test_items_yields_all_versions(self):
        store = MemoryStore()
        store.put("a", 1, b"x")
        store.put("b", 1, b"y")
        items = sorted((o.key, o.version) for o in store.items())
        assert items == [("a", 1), ("b", 1)]


class TestCapacity:
    def test_capacity_enforced(self):
        store = MemoryStore(capacity=2)
        store.put("a", 1, b"")
        store.put("b", 1, b"")
        with pytest.raises(CapacityExceededError):
            store.put("c", 1, b"")

    def test_duplicate_put_does_not_consume_capacity(self):
        store = MemoryStore(capacity=1)
        store.put("a", 1, b"")
        assert store.put("a", 1, b"") is False  # no raise

    def test_delete_frees_capacity(self):
        store = MemoryStore(capacity=1)
        store.put("a", 1, b"")
        store.delete("a")
        store.put("b", 1, b"")
        assert store.get("b") is not None

    def test_invalid_capacity(self):
        with pytest.raises(CapacityExceededError):
            MemoryStore(capacity=0)


class StoreModel:
    """Reference model for the property test: a plain dict of dicts."""

    def __init__(self):
        self.data = {}

    def put(self, key, version, value):
        self.data.setdefault(key, {}).setdefault(version, value)

    def delete(self, key, version):
        if version is None:
            self.data.pop(key, None)
        elif key in self.data:
            self.data[key].pop(version, None)
            if not self.data[key]:
                del self.data[key]

    def digest(self):
        return frozenset((k, v) for k, vs in self.data.items() for v in vs)


op_st = st.one_of(
    st.tuples(
        st.just("put"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=5),
        st.binary(max_size=4),
    ),
    st.tuples(
        st.just("delete"),
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    ),
)


@given(st.lists(op_st, max_size=50))
def test_store_matches_reference_model(ops):
    store = MemoryStore()
    model = StoreModel()
    for op in ops:
        if op[0] == "put":
            _, key, version, value = op
            store.put(key, version, value)
            model.put(key, version, value)
        else:
            _, key, version = op
            store.delete(key, version)
            model.delete(key, version)
    assert store.digest() == model.digest()
    assert len(store) == len(model.digest())
    for key, version in model.digest():
        assert store.get(key, version).value == model.data[key][version]

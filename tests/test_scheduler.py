"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "c")
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    sched = Scheduler()
    fired = []
    for label in "abcde":
        sched.schedule(1.0, fired.append, label)
    sched.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sched = Scheduler()
    times = []
    sched.schedule(2.5, lambda: times.append(sched.now))
    sched.run()
    assert times == [2.5]
    assert sched.now == 2.5


def test_run_until_stops_before_later_events():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(5.0, fired.append, "late")
    sched.run(until=2.0)
    assert fired == ["early"]
    assert sched.now == 2.0  # time advances exactly to the horizon
    sched.run(until=10.0)
    assert fired == ["early", "late"]


def test_run_until_is_composable():
    sched = Scheduler()
    fired = []
    sched.schedule(4.0, fired.append, "x")
    sched.run(until=1.0)
    sched.run(until=2.0)
    assert sched.now == 2.0
    sched.run(until=4.0)
    assert fired == ["x"]


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    sched.cancel(event)
    sched.run()
    assert fired == []


def test_cancel_is_idempotent():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sched.run()
    assert sched.events_processed == 0


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-1.0, lambda: None)
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)


def test_non_finite_times_rejected():
    # NaN fails every comparison, so the old `delay < 0` guard let it
    # through and silently corrupted heap ordering; inf parked events
    # unreachably. Both must fail loudly, and the heap must stay usable.
    sched = Scheduler()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(SimulationError):
            sched.schedule(bad, lambda: None)
        with pytest.raises(SimulationError):
            sched.schedule_at(bad, lambda: None)
    fired = []
    sched.schedule(1.0, fired.append, "ok")
    sched.run()
    assert fired == ["ok"]
    assert sched.now == 1.0


def test_events_scheduled_during_run_fire_in_same_run():
    sched = Scheduler()
    fired = []

    def chain(depth: int) -> None:
        fired.append(depth)
        if depth < 3:
            sched.schedule(1.0, chain, depth + 1)

    sched.schedule(0.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 3.0


def test_step_returns_false_when_empty():
    sched = Scheduler()
    assert sched.step() is False
    sched.schedule(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_max_events_bounds_run():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i), fired.append, i)
    sched.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_run_until_with_max_events_still_advances_time():
    # Regression: hitting max_events used to return without the promised
    # advance to `until`, so composed run(until=...) callers lost time.
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.schedule(20.0, fired.append, "late")
    sched.run(until=10.0, max_events=2)
    assert fired == ["a", "b"]
    assert sched.now == 10.0  # nothing pending before the horizon
    sched.run(until=30.0)
    assert fired == ["a", "b", "late"]


def test_run_until_with_max_events_never_skips_pending_work():
    # When max_events truncates the run with events still pending before
    # `until`, time only advances to the next pending instant — virtual
    # time must never jump past (and later rewind for) unfired events.
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(3.0, fired.append, "b")
    sched.run(until=10.0, max_events=1)
    assert fired == ["a"]
    assert sched.now == 3.0
    sched.run(until=10.0)
    assert fired == ["a", "b"]
    assert sched.now == 10.0


def test_run_until_with_max_events_ignores_cancelled_prefix():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(3.0, fired.append, "skipped").cancel()
    sched.run(until=10.0, max_events=1)
    assert fired == ["a"]
    assert sched.now == 10.0  # the cancelled event cannot pin the clock


def test_run_until_idle_guards_against_runaway():
    sched = Scheduler()

    def rearm() -> None:
        sched.schedule(1.0, rearm)

    sched.schedule(1.0, rearm)
    with pytest.raises(SimulationError):
        sched.run_until_idle(max_events=100)


def test_events_processed_counter():
    sched = Scheduler()
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    sched.run()
    assert sched.events_processed == 5


def test_pending_counts_heap_entries():
    sched = Scheduler()
    events = [sched.schedule(1.0, lambda: None) for _ in range(3)]
    assert sched.pending == 3
    events[0].cancel()
    assert sched.pending == 3  # cancelled events stay until popped
    sched.run()
    assert sched.pending == 0

"""Tests for the RPC layer."""

import pytest

from repro.dht.rpc import RpcService
from repro.errors import ConfigurationError
from repro.sim.node import Node
from repro.sim.simulator import Simulation


def make_rpc_pair():
    sim = Simulation(seed=1)
    nodes = []
    for _ in range(2):
        node = sim.add_node(Node)
        node.add_service(RpcService(timeout=1.0))
        nodes.append(node)
    sim.start_all()
    return sim, nodes[0], nodes[1]


def rpc_of(node) -> RpcService:
    return node.get_service(RpcService)


def test_call_and_reply():
    sim, a, b = make_rpc_pair()
    rpc_of(b).register("add", lambda args, src: args[0] + args[1])
    results = []
    rpc_of(a).call(b.id, "add", (2, 3), on_reply=lambda ok, r: results.append((ok, r)))
    sim.run_for(1)
    assert results == [(True, 5)]


def test_unknown_method_errors():
    sim, a, b = make_rpc_pair()
    results = []
    rpc_of(a).call(b.id, "nope", (), on_reply=lambda ok, r: results.append((ok, r)))
    sim.run_for(1)
    assert results[0][0] is False
    assert "nope" in results[0][1]


def test_handler_exception_becomes_error_reply():
    sim, a, b = make_rpc_pair()

    def boom(args, src):
        raise ValueError("kaput")

    rpc_of(b).register("boom", boom)
    results = []
    rpc_of(a).call(b.id, "boom", (), on_reply=lambda ok, r: results.append((ok, r)))
    sim.run_for(1)
    assert results == [(False, "kaput")]


def test_timeout_fires_once():
    sim, a, b = make_rpc_pair()
    b.stop()  # silent peer
    results = []
    rpc_of(a).call(b.id, "add", (1, 2), on_reply=lambda ok, r: results.append((ok, r)))
    sim.run_for(5)
    assert results == [(False, "timeout")]


def test_late_reply_after_timeout_is_ignored():
    sim, a, b = make_rpc_pair()
    # Handler that exists, but latency exceeds the 1.0s rpc timeout.
    sim.network.latency_model.latency = 2.0
    rpc_of(b).register("slow", lambda args, src: "done")
    results = []
    rpc_of(a).call(b.id, "slow", (), on_reply=lambda ok, r: results.append((ok, r)))
    sim.run_for(10)
    assert results == [(False, "timeout")]  # the real reply was dropped


def test_fire_and_forget_without_callback():
    sim, a, b = make_rpc_pair()
    got = []
    rpc_of(b).register("note", lambda args, src: got.append(args))
    rpc_of(a).call(b.id, "note", ("hi",))
    sim.run_for(1)
    assert got == [("hi",)]


def test_duplicate_method_registration_rejected():
    service = RpcService()
    service.register("x", lambda a, s: None)
    with pytest.raises(ConfigurationError):
        service.register("x", lambda a, s: None)


def test_invalid_timeout_rejected():
    with pytest.raises(ConfigurationError):
        RpcService(timeout=0)


def test_concurrent_calls_correlated_correctly():
    sim, a, b = make_rpc_pair()
    rpc_of(b).register("echo", lambda args, src: args[0])
    results = []
    for i in range(10):
        rpc_of(a).call(b.id, "echo", (i,), on_reply=lambda ok, r: results.append(r))
    sim.run_for(2)
    assert sorted(results) == list(range(10))

"""Integration tests for the Chord DHT baseline."""

import pytest

from repro.dht import DhtCluster
from repro.dht.node import ChordNode
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def ring():
    cluster = DhtCluster(n=30, seed=13)
    cluster.stabilize(15)
    return cluster


def test_size_validated():
    with pytest.raises(ConfigurationError):
        DhtCluster(n=0)


def test_provisioned_ring_is_consistent(ring):
    assert ring.ring_is_consistent()


def test_put_get_roundtrip(ring):
    client = ring.new_client()
    op = ring.put_sync(client, "dht:1", b"value", 1)
    assert op.succeeded
    result = ring.get_sync(client, "dht:1")
    assert result.succeeded
    assert result.value == b"value"


def test_versions_supported(ring):
    client = ring.new_client()
    ring.put_sync(client, "dht:ver", b"v1", 1)
    ring.put_sync(client, "dht:ver", b"v2", 2)
    assert ring.get_sync(client, "dht:ver", version=1).value == b"v1"
    assert ring.get_sync(client, "dht:ver").value == b"v2"


def test_replication_reaches_factor(ring):
    client = ring.new_client()
    ring.put_sync(client, "dht:rep", b"x", 1)
    ring.sim.run_for(10)
    assert ring.replication_level("dht:rep") >= 3


def test_data_lands_at_ring_owner(ring):
    from repro.dht.ring import in_interval, key_position

    client = ring.new_client()
    ring.put_sync(client, "dht:owner", b"x", 1)
    position = key_position("dht:owner")
    owners = sorted(
        (s for s in ring.servers if s.alive), key=lambda s: s.pos
    )
    # The owner is the first node clockwise from the key.
    owner = next((s for s in owners if s.pos >= position), owners[0])
    assert owner.store.get("dht:owner", 1) is not None


def test_ring_heals_after_churn():
    cluster = DhtCluster(n=30, seed=17)
    cluster.stabilize(10)
    controller = cluster.churn_controller()
    controller.kill_fraction(0.2)
    cluster.sim.run_for(40)
    assert cluster.ring_is_consistent()


def test_reads_survive_moderate_churn_after_repair():
    cluster = DhtCluster(n=30, seed=19)
    cluster.stabilize(10)
    client = cluster.new_client(timeout=4.0, retries=3)
    keys = [f"churn:{i}" for i in range(6)]
    for key in keys:
        cluster.put_sync(client, key, b"x", 1)
    cluster.sim.run_for(15)  # repair rounds replicate

    controller = cluster.churn_controller()
    controller.kill_fraction(0.2)
    cluster.sim.run_for(30)

    ok = 0
    for key in keys:
        op = client.get(key)
        cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        ok += op.succeeded
    assert ok >= len(keys) - 1  # successor replication covers most losses


def test_joiner_integrates_into_ring():
    cluster = DhtCluster(n=20, seed=23)
    cluster.stabilize(10)
    factory = cluster.server_factory()
    joiner = cluster.sim.add_node(factory)
    joiner.start()
    cluster.sim.run_for(40)
    assert cluster.ring_is_consistent()
    assert isinstance(joiner, ChordNode)
    assert joiner.predecessor is not None


def test_lookup_hops_logarithmic(ring):
    # With fingers fixed, iterative lookups should take far fewer hops
    # than a linear walk around 30 nodes.
    from repro.dht.node import iterative_lookup
    from repro.dht.ring import key_position

    ring.sim.run_for(30)  # plenty of fix_fingers rounds
    client = ring.new_client()
    hops = []

    for i in range(10):
        target = key_position(f"hop-probe:{i}")
        outcome = []
        start = ring.directory()[0]
        iterative_lookup(client, client.rpc, start, target, outcome.append,
                         max_hops=30, hop_counter=hops)
        ring.sim.run_until_condition(lambda: bool(outcome), timeout=30)
        assert outcome and outcome[0] is not None
    # Finger routing: average hops well under a linear walk of N/2 = 15.
    assert sum(hops) / len(hops) < 10

"""Tests for the log-structured FileStore, including crash recovery."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filestore import FileStore
from repro.core.store import MemoryStore
from repro.errors import CapacityExceededError, StoreError


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "data.log")


def test_put_get_roundtrip(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"hello")
    assert store.get("a", 1).value == b"hello"
    store.close()


def test_values_must_be_bytes(store_path):
    store = FileStore(store_path)
    with pytest.raises(StoreError):
        store.put("a", 1, "not-bytes")
    store.close()


def test_latest_version(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"v1")
    store.put("a", 5, b"v5")
    assert store.get("a").version == 5
    store.close()


def test_duplicate_put_idempotent(store_path):
    store = FileStore(store_path)
    assert store.put("a", 1, b"x") is True
    assert store.put("a", 1, b"y") is False
    assert store.get("a", 1).value == b"x"
    store.close()


def test_recovery_after_reopen(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"one")
    store.put("b", 2, b"two")
    store.delete("a", 1)
    store.close()

    recovered = FileStore(store_path)
    assert recovered.get("a", 1) is None
    assert recovered.get("b", 2).value == b"two"
    assert len(recovered) == 1
    recovered.close()


def test_recovery_ignores_truncated_tail(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"full-record")
    store.close()
    # Simulate a crash mid-append: chop bytes off the end.
    size = os.path.getsize(store_path)
    with open(store_path, "r+b") as f:
        f.truncate(size - 3)
    with open(store_path, "ab") as f:
        pass

    recovered = FileStore(store_path)
    assert len(recovered) == 0  # the torn record is dropped, no crash
    recovered.put("b", 1, b"after-recovery")
    assert recovered.get("b", 1).value == b"after-recovery"
    recovered.close()


def test_capacity_enforced(store_path):
    store = FileStore(store_path, capacity=1)
    store.put("a", 1, b"")
    with pytest.raises(CapacityExceededError):
        store.put("b", 1, b"")
    store.close()


def test_digest_and_items(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"x")
    store.put("a", 2, b"y")
    assert store.digest() == frozenset({("a", 1), ("a", 2)})
    assert sorted((o.key, o.version, o.value) for o in store.items()) == [
        ("a", 1, b"x"),
        ("a", 2, b"y"),
    ]
    store.close()


def test_compact_shrinks_log_and_preserves_data(store_path):
    store = FileStore(store_path)
    for i in range(20):
        store.put("churny", i, b"data" * 10)
    for i in range(19):
        store.delete("churny", i)
    before = os.path.getsize(store_path)
    store.compact()
    after = os.path.getsize(store_path)
    assert after < before
    assert store.get("churny", 19).value == b"data" * 10
    assert len(store) == 1
    store.close()

    reopened = FileStore(store_path)
    assert reopened.get("churny", 19).value == b"data" * 10
    reopened.close()


def test_empty_value_roundtrip(store_path):
    store = FileStore(store_path)
    store.put("a", 1, b"")
    assert store.get("a", 1).value == b""
    store.close()


def test_unicode_keys(store_path):
    store = FileStore(store_path)
    store.put("clé-日本語", 1, b"v")
    assert store.get("clé-日本語", 1).value == b"v"
    store.close()


def test_negative_versions_roundtrip(store_path):
    store = FileStore(store_path)
    store.put("a", -5, b"v")
    assert store.get("a", -5).value == b"v"
    store.close()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["k1", "k2", "k3"]),
            st.integers(min_value=0, max_value=6),
            st.binary(max_size=16),
        ),
        max_size=30,
    )
)
def test_filestore_equivalent_to_memorystore(tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("fs") / "log")
    file_store = FileStore(path)
    mem_store = MemoryStore()
    for key, version, value in ops:
        assert file_store.put(key, version, value) == mem_store.put(key, version, value)
    assert file_store.digest() == mem_store.digest()
    file_store.close()
    recovered = FileStore(path)
    assert recovered.digest() == mem_store.digest()
    recovered.close()

"""Tests for epidemic dissemination and the ln(N)+c fanout maths."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gossip.dissemination import (
    DedupCache,
    DisseminationService,
    atomic_infection_probability,
    fanout_for_probability,
    recommended_fanout,
)
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation


class TestFanoutMaths:
    def test_recommended_fanout_formula(self):
        assert recommended_fanout(1000, c=2.0) == math.ceil(math.log(1000) + 2)

    def test_recommended_fanout_small_systems(self):
        assert recommended_fanout(1) == 1
        assert recommended_fanout(2, c=0.0) >= 1

    def test_atomic_infection_probability_known_values(self):
        # e^{-e^{-c}}: c=0 -> 1/e, large c -> 1.
        assert atomic_infection_probability(0.0) == pytest.approx(math.exp(-1))
        assert atomic_infection_probability(10.0) == pytest.approx(1.0, abs=1e-4)

    def test_probability_monotone_in_c(self):
        values = [atomic_infection_probability(c) for c in (-1, 0, 1, 2, 4)]
        assert values == sorted(values)

    def test_fanout_for_probability_inverts(self):
        n = 500
        for p in (0.5, 0.9, 0.99):
            f = fanout_for_probability(n, p)
            c = f - math.log(n)
            assert atomic_infection_probability(c) >= p - 1e-9

    def test_fanout_for_probability_validates(self):
        with pytest.raises(ConfigurationError):
            fanout_for_probability(100, 1.0)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_fanout_scales_logarithmically(self, n):
        assert recommended_fanout(n) <= math.log(n) + 3.01


class TestDedupCache:
    def test_first_sighting_false_then_true(self):
        cache = DedupCache(capacity=10)
        assert cache.seen("a") is False
        assert cache.seen("a") is True

    def test_capacity_evicts_fifo(self):
        cache = DedupCache(capacity=2)
        cache.seen("a")
        cache.seen("b")
        cache.seen("c")  # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            DedupCache(capacity=0)

    def test_len(self):
        cache = DedupCache(capacity=10)
        cache.seen(1)
        cache.seen(2)
        assert len(cache) == 2


def build_broadcast_overlay(n=60, fanout=None, seed=4, rounds=15.0):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=12, shuffle_length=6))
        node.add_service(
            DisseminationService(fanout=fanout, expected_n=n if fanout is None else None)
        )
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=5, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(rounds)
    return sim, nodes


class TestDisseminationService:
    def test_config_requires_fanout_or_n(self):
        with pytest.raises(ConfigurationError):
            DisseminationService()

    def test_broadcast_reaches_everyone_with_recommended_fanout(self):
        sim, nodes = build_broadcast_overlay(n=60)
        received = set()
        for node in nodes:
            node.get_service(DisseminationService).subscribe(
                lambda payload, msg_id, hops, i=node.id: received.add(i)
            )
        nodes[0].get_service(DisseminationService).broadcast("hello")
        sim.run_for(5)
        assert len(received) == 60

    def test_each_node_delivers_exactly_once(self):
        sim, nodes = build_broadcast_overlay(n=40)
        deliveries = []
        for node in nodes:
            node.get_service(DisseminationService).subscribe(
                lambda payload, msg_id, hops, i=node.id: deliveries.append(i)
            )
        nodes[0].get_service(DisseminationService).broadcast("x")
        sim.run_for(5)
        assert len(deliveries) == len(set(deliveries))

    def test_originator_delivers_synchronously(self):
        sim, nodes = build_broadcast_overlay(n=20)
        got = []
        service = nodes[0].get_service(DisseminationService)
        service.subscribe(lambda payload, msg_id, hops: got.append(payload))
        msg_id = service.broadcast("local")
        assert got == ["local"]
        assert msg_id[0] == nodes[0].id

    def test_message_ids_unique_per_origin(self):
        sim, nodes = build_broadcast_overlay(n=20)
        service = nodes[0].get_service(DisseminationService)
        ids = {service.broadcast(i) for i in range(5)}
        assert len(ids) == 5

    def test_fanout_one_reaches_few(self):
        sim, nodes = build_broadcast_overlay(n=60, fanout=1)
        received = set()
        for node in nodes:
            node.get_service(DisseminationService).subscribe(
                lambda payload, msg_id, hops, i=node.id: received.add(i)
            )
        nodes[0].get_service(DisseminationService).broadcast("weak")
        sim.run_for(10)
        assert len(received) < 60  # a single infect-and-die walk dies out

    def test_hops_grow_with_distance(self):
        sim, nodes = build_broadcast_overlay(n=60)
        hops_seen = []
        for node in nodes[1:]:
            node.get_service(DisseminationService).subscribe(
                lambda payload, msg_id, hops: hops_seen.append(hops)
            )
        nodes[0].get_service(DisseminationService).broadcast("x")
        sim.run_for(5)
        assert max(hops_seen) >= 2  # multi-hop epidemic, not a star
        assert max(hops_seen) <= 32  # bounded by ttl

    def test_delivery_ratio_improves_with_fanout(self):
        ratios = []
        for fanout in (1, 3, 6):
            sim, nodes = build_broadcast_overlay(n=50, fanout=fanout, seed=9)
            received = set()
            for node in nodes:
                node.get_service(DisseminationService).subscribe(
                    lambda payload, msg_id, hops, i=node.id: received.add(i)
                )
            for origin in nodes[:5]:
                origin.get_service(DisseminationService).broadcast("probe")
            sim.run_for(5)
            ratios.append(len(received) / 50)
        assert ratios[0] <= ratios[1] <= ratios[2]
        assert ratios[2] == 1.0

"""Tests for the fault-injection (nemesis) subsystem: injector
behaviour, deterministic victim selection, crash-recover semantics, and
the end-to-end fault scenarios."""

import pytest

from repro.core.cluster import DataFlasksCluster
from repro.churn.models import TraceChurn, ChurnEvent, LEAVE
from repro.errors import ConfigurationError, SimulationError
from repro.faults import (
    BurstLossFault,
    ChurnFault,
    CrashRecoverFault,
    DegradeFault,
    FaultContext,
    FaultSpec,
    Nemesis,
    PartitionFault,
)
from repro.scenarios import load_bundled, run_scenario
from repro.sim.simulator import Simulation

from tests.conftest import build_cluster, small_config


def build_nemesis(n: int = 30, seed: int = 21):
    cluster = build_cluster(n=n, seed=seed)
    controller = cluster.churn_controller()
    nemesis = Nemesis(cluster.sim, cluster=cluster, controller=controller)
    return cluster, controller, nemesis


# ------------------------------------------------------------- fault specs


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor")

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="partition", start=-1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="partition", duration=0.0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="partition", fraction=1.5)

    def test_degrade_needs_a_degradation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="degrade", loss=0.0, extra_latency=0.0)

    def test_degrade_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="degrade", fraction=0.0, loss=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="degrade", fraction=1.5, loss=0.5)

    def test_burst_loss_needs_loss(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="burst_loss", loss=0.0)

    def test_build_maps_kinds(self):
        assert isinstance(
            FaultSpec(kind="partition", fraction=0.3).build(), PartitionFault
        )
        assert isinstance(FaultSpec(kind="degrade", loss=0.1).build(), DegradeFault)
        assert isinstance(FaultSpec(kind="burst_loss", loss=0.5).build(), BurstLossFault)
        assert isinstance(
            FaultSpec(kind="crash_recover", fraction=0.2).build(), CrashRecoverFault
        )

    def test_explicit_nodes_skip_fraction_check(self):
        spec = FaultSpec(kind="crash_recover", fraction=0.0, nodes=[1, 2])
        assert spec.build().nodes == [1, 2]


# -------------------------------------------------------- victim selection


class TestFaultContext:
    def test_population_is_sorted_alive_servers(self):
        cluster = build_cluster(n=20, seed=22)
        cluster.new_client()  # clients must never be fault victims
        cluster.servers[3].crash()
        ctx = FaultContext(cluster.sim, cluster=cluster)
        population = ctx.population()
        assert population == sorted(population)
        assert cluster.servers[3].id not in population
        assert all(i in {s.id for s in cluster.servers} for i in population)

    def test_pick_is_deterministic_per_seed(self):
        picks = []
        for _ in range(2):
            cluster = build_cluster(n=20, seed=23)
            ctx = FaultContext(cluster.sim, cluster=cluster)
            picks.append(ctx.pick(0.25, ()))
        assert picks[0] == picks[1]
        assert len(picks[0]) == 5

    def test_pick_explicit_wins(self):
        cluster = build_cluster(n=20, seed=23)
        ctx = FaultContext(cluster.sim, cluster=cluster)
        assert ctx.pick(0.5, (1, 2, 3)) == [1, 2, 3]


# -------------------------------------------------------------- injectors


class TestPartitionFault:
    def test_symmetric_partition_blocks_both_ways_until_heal(self):
        cluster, _, nemesis = build_nemesis(seed=24)
        ids = sorted(s.id for s in cluster.alive_servers())
        a, b = ids[: len(ids) // 2], ids[len(ids) // 2 :]
        fault = PartitionFault(start=1.0, duration=5.0, groups=[a, b])
        nemesis.schedule([fault])
        cluster.sim.run_for(2.0)  # inside the window
        net = cluster.sim.network
        assert net.send(a[0], b[0], object()) is False
        assert net.send(b[0], a[0], object()) is False
        before = cluster.sim.metrics.total("msg.dropped.partition")
        assert before >= 2
        cluster.sim.run_for(5.0)  # past the heal
        assert net.send(a[0], b[0], object()) is True
        assert net.send(b[0], a[0], object()) is True

    def test_asymmetric_partition_is_one_way(self):
        cluster, _, nemesis = build_nemesis(seed=25)
        ids = sorted(s.id for s in cluster.alive_servers())
        isolated, rest = ids[:5], ids[5:]
        nemesis.schedule(
            [PartitionFault(start=0.5, duration=5.0, groups=[isolated, rest], symmetric=False)]
        )
        cluster.sim.run_for(1.0)
        net = cluster.sim.network
        assert net.send(isolated[0], rest[0], object()) is False  # cannot speak
        assert net.send(rest[0], isolated[0], object()) is True  # still hears

    def test_single_explicit_group_is_isolated_from_rest(self):
        cluster, _, nemesis = build_nemesis(seed=35)
        ids = sorted(s.id for s in cluster.alive_servers())
        nemesis.schedule([PartitionFault(start=0.5, duration=4.0, groups=[ids[:3]])])
        cluster.sim.run_for(1.0)
        net = cluster.sim.network
        assert net.send(ids[0], ids[-1], object()) is False
        assert net.send(ids[-1], ids[0], object()) is False
        assert net.send(ids[0], ids[1], object()) is True  # same group

    def test_random_fraction_isolates_some_servers(self):
        cluster, _, nemesis = build_nemesis(seed=26)
        nemesis.schedule([PartitionFault(start=0.0, duration=3.0, fraction=0.3)])
        cluster.sim.run_for(1.0)
        assert nemesis.injected == 1
        # Some cross-cut traffic must have been dropped by protocol gossip.
        cluster.sim.run_for(1.0)
        assert cluster.sim.metrics.total("msg.dropped.partition") > 0


class TestDegradeAndBurstLoss:
    def test_degrade_applies_and_clears_node_conditions(self):
        cluster, _, nemesis = build_nemesis(seed=27)
        fault = DegradeFault(start=0.0, duration=4.0, fraction=0.25, loss=0.3, extra_latency=0.05)
        nemesis.schedule([fault])
        cluster.sim.run_for(1.0)
        victims = set(fault._victims[0])
        victim = fault._victims[0][0]
        clean = next(s.id for s in cluster.alive_servers() if s.id not in victims)
        net = cluster.sim.network
        assert net._loss_for(victim, clean) > 0.0
        assert net._extra_latency_for(victim, clean) == 0.05
        cluster.sim.run_for(4.0)
        assert net._loss_for(victim, clean) == 0.0
        assert net._extra_latency_for(victim, clean) == 0.0

    def test_burst_loss_window_drops_and_heals(self):
        cluster, _, nemesis = build_nemesis(seed=28)
        nemesis.schedule([BurstLossFault(start=0.0, duration=3.0, loss=0.9)])
        cluster.sim.run_for(1.5)
        dropped_during = cluster.sim.metrics.total("msg.dropped.loss")
        assert dropped_during > 0
        cluster.sim.run_for(2.0)  # healed at t=3
        assert cluster.sim.network._burst_layers == {}

    def test_overlapping_bursts_do_not_cancel_each_other(self):
        cluster, _, nemesis = build_nemesis(seed=32)
        nemesis.schedule(
            [
                BurstLossFault(start=0.0, duration=4.0, loss=0.3),
                BurstLossFault(start=2.0, duration=6.0, loss=0.6),
            ]
        )
        cluster.sim.run_for(5.0)  # first healed at t=4, second still open
        net = cluster.sim.network
        assert net._loss_for(1, 2) == pytest.approx(0.6)
        cluster.sim.run_for(4.0)  # second healed at t=8
        assert net._loss_for(1, 2) == 0.0

    def test_overlapping_degrades_keep_shared_victims(self):
        cluster, _, nemesis = build_nemesis(seed=33)
        ids = sorted(s.id for s in cluster.alive_servers())
        shared = ids[0]
        nemesis.schedule(
            [
                DegradeFault(start=0.0, duration=4.0, nodes=[shared], loss=0.2),
                DegradeFault(start=2.0, duration=6.0, nodes=[shared], loss=0.5),
            ]
        )
        cluster.sim.run_for(3.0)  # both active
        net = cluster.sim.network
        assert net._loss_for(shared, ids[-1]) == pytest.approx(1 - 0.8 * 0.5)
        cluster.sim.run_for(2.0)  # first healed at t=4
        assert net._loss_for(shared, ids[-1]) == pytest.approx(0.5)
        cluster.sim.run_for(4.0)  # second healed at t=8
        assert net._loss_for(shared, ids[-1]) == 0.0


class TestCrashRecover:
    def test_node_recovers_with_retained_store(self):
        cluster = build_cluster(n=30, seed=29)
        client = cluster.new_client(timeout=4.0, retries=3)
        op = client.put("retained:key", b"survives", 1)
        cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        assert op.succeeded
        cluster.sim.run_for(10)  # let replication spread
        holders = [s for s in cluster.alive_servers() if s.holds("retained:key")]
        assert holders
        victim = holders[0]

        controller = cluster.churn_controller()
        nemesis = Nemesis(cluster.sim, cluster=cluster, controller=controller)
        nemesis.schedule(
            [CrashRecoverFault(start=1.0, duration=5.0, nodes=[victim.id])]
        )
        cluster.sim.run_for(2.0)
        assert not victim.alive
        cluster.sim.run_for(5.0)  # recovery fired at t=6
        assert victim.alive
        assert victim.holds("retained:key")  # store retained, not fresh
        assert controller.leaves == 1
        assert controller.recoveries == 1
        assert controller.joins == 0  # recover is not a fresh join

    def test_recover_unknown_or_alive_node_is_noop(self):
        cluster = build_cluster(n=10, seed=30)
        controller = cluster.churn_controller()
        assert controller.recover(99999) is None
        assert controller.recover(cluster.servers[0].id) is None
        assert controller.recoveries == 0


class TestChurnFault:
    def test_wraps_a_churn_model(self):
        cluster, controller, nemesis = build_nemesis(n=20, seed=31)
        model = TraceChurn([ChurnEvent(0.5, LEAVE), ChurnEvent(1.0, LEAVE)])
        nemesis.schedule([ChurnFault(model, start=1.0, duration=5.0)])
        cluster.sim.run_for(3.0)
        assert controller.leaves == 2
        assert nemesis.injected == 1
        assert nemesis.healed == 0  # churn has nothing to heal

    def test_requires_controller(self):
        sim = Simulation(seed=1)
        nemesis = Nemesis(sim)  # no controller
        nemesis.schedule([ChurnFault(TraceChurn([ChurnEvent(0.0, LEAVE)]), duration=1.0)])
        with pytest.raises(SimulationError):
            sim.run_for(1.0)


# ---------------------------------------------------------------- nemesis


class TestNemesis:
    def test_schedule_tracks_horizon_and_counts(self):
        sim = Simulation(seed=2)
        nemesis = Nemesis(sim)
        count = nemesis.schedule(
            [
                BurstLossFault(start=1.0, duration=2.0, loss=0.5),
                BurstLossFault(start=5.0, duration=4.0, loss=0.5),
            ]
        )
        assert count == 2
        assert nemesis.end_time == 9.0
        sim.run_until(9.0)
        assert nemesis.injected == 2
        assert nemesis.healed == 2
        assert nemesis.last_heal_time == 9.0
        assert sim.metrics.total("fault.injected.burst_loss") == 2
        assert sim.metrics.total("fault.healed.burst_loss") == 2


# ---------------------------------------------------- end-to-end scenarios

FAULT_SCENARIOS = (
    "asymmetric-partition",
    "slow-quartile",
    "crash-recover-wave",
    "burst-loss",
)

SMALL = dict(
    nodes=25,
    num_slices=3,
    warmup=8.0,
    settle=6.0,
    record_count=6,
    operation_count=12,
)


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_fault_scenarios_are_byte_identical_per_seed(name):
    spec = load_bundled(name).scaled(**SMALL)
    first = run_scenario(spec, seed=5)
    second = run_scenario(spec, seed=5)
    assert first.summary_json() == second.summary_json()


def test_fault_scenario_reports_consistency_metrics():
    spec = load_bundled("crash-recover-wave").scaled(**SMALL)
    metrics = run_scenario(spec, seed=3).metrics
    for name in (
        "stale_reads",
        "lost_updates",
        "lost_objects",
        "unavail_keys",
        "unavail_windows",
        "unavail_window_mean",
        "unavail_window_max",
        "heal_time",
        "heal_converged",
        "faults_injected",
        "faults_healed",
        "churn_recoveries",
    ):
        assert name in metrics, name
    assert metrics["faults_injected"] == 1.0
    assert metrics["faults_healed"] == 1.0
    assert metrics["churn_recoveries"] > 0
    # Everyone recovered: the full population is back up.
    assert metrics["population_alive"] == metrics["population_total"]


def test_crash_recover_keeps_acked_data():
    spec = load_bundled("crash-recover-wave").scaled(**SMALL)
    metrics = run_scenario(spec, seed=4).metrics
    assert metrics["lost_objects"] == 0.0


def test_heal_time_not_inflated_by_workload_runtime():
    # The burst-loss fault never breaks slice assignment, so the overlay
    # is whole the moment the burst heals: heal_time must be ~0 even
    # though the transaction phase keeps running long past the heal.
    spec = load_bundled("burst-loss").scaled(**dict(SMALL, operation_count=40))
    metrics = run_scenario(spec, seed=6).metrics
    assert metrics["heal_converged"] == 1.0
    assert metrics["heal_time"] <= 1.0

"""Tests for wire-message identities and immutability."""

import dataclasses

import pytest

from repro.core.messages import (
    GetReply,
    GetRequest,
    PutAck,
    PutRequest,
    SliceAdvert,
    SyncDigest,
)


def make_put(attempt=1, ttl=5):
    return PutRequest(
        key="k",
        version=1,
        value=b"v",
        req_id=(7, 3),
        attempt=attempt,
        client_id=7,
        ttl=ttl,
    )


def test_put_msg_id_includes_attempt():
    first = make_put(attempt=1)
    retry = make_put(attempt=2)
    assert first.req_id == retry.req_id  # same logical operation
    assert first.msg_id != retry.msg_id  # but re-disseminated afresh


def test_get_msg_id_includes_attempt():
    a = GetRequest("k", None, (7, 3), attempt=1, client_id=7, ttl=5)
    b = GetRequest("k", None, (7, 3), attempt=2, client_id=7, ttl=5)
    assert a.msg_id != b.msg_id
    assert a.msg_id == (7, 3, 1)


def test_messages_are_frozen():
    msg = make_put()
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.ttl = 0


def test_messages_hashable_for_dedup():
    advert = SliceAdvert(slice_id=1, members=((1, 0), (2, 3)))
    assert hash(advert) == hash(SliceAdvert(slice_id=1, members=((1, 0), (2, 3))))


def test_sync_digest_carries_frozenset():
    digest = SyncDigest(slice_id=0, digest=frozenset({("k", 1)}))
    assert ("k", 1) in digest.digest


def test_reply_equality():
    a = GetReply("k", 1, b"v", True, (7, 3), responder_slice=2)
    b = GetReply("k", 1, b"v", True, (7, 3), responder_slice=2)
    assert a == b


def test_ack_fields():
    ack = PutAck("k", 4, (9, 1), responder_slice=3)
    assert ack.version == 4
    assert ack.responder_slice == 3

"""Focused tests for the client library: retries, timeouts, dedup."""

import pytest

from repro.core.client import FAILED, SUCCEEDED, DataFlasksClient, PendingOp
from repro.core.config import DataFlasksConfig
from repro.core.loadbalancer import RandomLoadBalancer
from repro.errors import OperationTimeoutError
from repro.sim.simulator import Simulation

from tests.conftest import build_cluster


def make_lone_client(directory=lambda: [], timeout=1.0, retries=1):
    """A client wired to an arbitrary directory, with no servers."""
    sim = Simulation(seed=3)
    lb = RandomLoadBalancer(directory, sim.rng_registry.stream("lb"))

    def factory(node_id, ctx):
        return DataFlasksClient(
            node_id, ctx, lb, config=DataFlasksConfig(), timeout=timeout, retries=retries
        )

    client = sim.add_node(factory)
    client.start()
    return sim, client


class TestPendingOp:
    def test_initial_state(self):
        op = PendingOp("put", "k", 1, (1, 0), acks_required=1, started_at=0.0)
        assert not op.done
        assert op.latency is None
        assert op.attempts == 1

    def test_complete_fires_callbacks_once(self):
        op = PendingOp("put", "k", 1, (1, 0), 1, 0.0)
        calls = []
        op.on_complete(calls.append)
        op._complete(SUCCEEDED, now=2.5)
        op._complete(FAILED, now=3.0)  # ignored: already done
        assert op.status == SUCCEEDED
        assert op.latency == 2.5
        assert calls == [op]

    def test_on_complete_after_done_fires_immediately(self):
        op = PendingOp("get", "k", None, (1, 0), 1, 0.0)
        op._complete(SUCCEEDED, now=1.0)
        calls = []
        op.on_complete(calls.append)
        assert calls == [op]


class TestClientFailureModes:
    def test_no_contact_node_fails_immediately(self):
        sim, client = make_lone_client(directory=lambda: [])
        op = client.put("k", b"v", 1)
        assert op.status == FAILED
        assert "no contact" in op.error

    def test_timeout_then_final_failure(self):
        # Directory points at a node id that does not exist: requests are
        # dropped by the network, so every attempt times out.
        sim, client = make_lone_client(directory=lambda: [99_999], timeout=1.0, retries=2)
        op = client.get("k")
        sim.run_for(10)
        assert op.status == FAILED
        assert op.attempts == 3  # original + 2 retries
        assert "timed out" in op.error

    def test_failed_contact_reported_to_lb(self):
        failures = []
        sim, client = make_lone_client(directory=lambda: [99_999], retries=0)
        client.load_balancer.note_failure = failures.append
        op = client.put("k", b"v", 1)
        sim.run_for(5)
        assert op.status == FAILED
        assert failures == [99_999]

    def test_pending_ops_bookkeeping(self):
        sim, client = make_lone_client(directory=lambda: [99_999], retries=0)
        op = client.get("k")
        assert client.pending_ops == 1
        sim.run_for(5)
        assert op.done
        assert client.pending_ops == 0


class TestClientRetrySucceeds:
    def test_retry_reaches_living_server(self):
        # First contact is dead; the retry's fresh pick must succeed.
        cluster = build_cluster(n=30, seed=33)
        dead = cluster.servers[0]
        dead.crash()
        always_dead_then_alive = [dead.id]

        client = cluster.new_client(timeout=2.0, retries=2)
        original_pick = client.load_balancer.pick

        def biased_pick(key, num_slices):
            if always_dead_then_alive:
                return always_dead_then_alive.pop()
            return original_pick(key, num_slices)

        client.load_balancer.pick = biased_pick
        op = client.put("retry-key", b"v", 1)
        cluster.sim.run_until_condition(lambda: op.done, timeout=30)
        assert op.status == SUCCEEDED
        assert op.attempts == 2


class TestRunOpTimeout:
    def test_run_op_raises_on_timeout(self):
        cluster = build_cluster(n=20, seed=34)
        client = cluster.new_client(timeout=50.0, retries=0)  # never expires
        op = client.get("missing-key")
        with pytest.raises(OperationTimeoutError):
            cluster.run_op(op, timeout=2.0)

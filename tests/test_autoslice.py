"""Tests for autonomous replication management (Section IV-C)."""

import pytest

from repro.core.autoslice import ReplicationManager, quantize_slices
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.errors import ConfigurationError


class TestUnit:
    def test_parameters_validated(self):
        config = DataFlasksConfig()
        with pytest.raises(ConfigurationError):
            ReplicationManager(config, target_replication=0)
        with pytest.raises(ConfigurationError):
            ReplicationManager(config, boundary_margin=0.7)
        with pytest.raises(ConfigurationError):
            ReplicationManager(config, stability_checks=0)

    def test_desired_slices_tracks_size(self):
        manager = ReplicationManager(DataFlasksConfig(), target_replication=10)
        assert manager.desired_slices(100) == 8  # 100/10 -> nearest pow2
        assert manager.desired_slices(700) == 64
        assert manager.desired_slices(5) == 1

    def test_margin_blocks_boundary_hover(self):
        config = DataFlasksConfig(num_slices=8)
        manager = ReplicationManager(config, target_replication=10)
        # ideal k exactly at the 8->16 octave boundary (log2 = 3.5):
        size = 10 * (2 ** 3.5)
        assert manager.desired_slices(size) in (8, 16)
        assert not manager._clears_margin(size, 16)
        # Deep inside the 16 octave, the margin clears.
        assert manager._clears_margin(10 * 16, 16)


class TestIntegration:
    def build(self, n, target, seed=77):
        config = DataFlasksConfig(
            num_slices=4,
            auto_replication_target=target,
            auto_replication_period=5.0,
            view_size=12,
        )
        cluster = DataFlasksCluster(n=n, config=config, seed=seed)
        cluster.warm_up(10)
        return cluster

    def test_nodes_own_config_copies(self):
        cluster = self.build(n=20, target=10)
        a, b = cluster.servers[0], cluster.servers[1]
        assert a.config is not b.config
        a.config.num_slices = 99
        assert b.config.num_slices != 99

    def test_reconfigures_towards_target(self):
        # 60 nodes, target replication 10 -> ideal k = 6 -> quantised 8,
        # starting from a deliberately wrong k = 4... wait, 4 -> 8 is one
        # octave; the estimator noise matters, so assert the outcome set.
        cluster = self.build(n=60, target=10)
        cluster.sim.run_for(120)  # epochs + controller periods
        ks = {s.config.num_slices for s in cluster.alive_servers()}
        # Every node must have landed on a power of two near 6.
        assert ks <= {4, 8}
        reconfigured = sum(
            1
            for s in cluster.alive_servers()
            if s.replication_manager is not None
            and s.replication_manager.reconfigurations > 0
        )
        assert reconfigured > 0  # the controller actually acted

    def test_k_agreement_across_nodes(self):
        cluster = self.build(n=60, target=10)
        cluster.sim.run_for(160)
        ks = [s.config.num_slices for s in cluster.alive_servers()]
        most_common = max(set(ks), key=ks.count)
        agreement = ks.count(most_common) / len(ks)
        assert agreement >= 0.9  # octave quantisation keeps nodes aligned

    def test_data_survives_reconfiguration(self):
        cluster = self.build(n=60, target=10)
        client = cluster.new_client(timeout=4.0, retries=3)
        keys = [f"resize:{i}" for i in range(6)]
        for key in keys:
            op = client.put(key, b"v", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            assert op.succeeded
        cluster.sim.run_for(150)  # reconfiguration + re-homing
        ok = 0
        for key in keys:
            op = client.get(key)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        assert ok == len(keys)

    def test_disabled_by_default(self):
        cluster = DataFlasksCluster(n=10, config=DataFlasksConfig(), seed=1)
        assert all(s.replication_manager is None for s in cluster.servers)

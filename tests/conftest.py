"""Shared fixtures for the test suite.

Clusters are expensive to converge, so the slow end-to-end fixtures are
module-scoped where tests only read from them; tests that mutate cluster
state build their own.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation


def small_config(**overrides) -> DataFlasksConfig:
    """A config tuned for small, fast test clusters."""
    defaults = dict(
        num_slices=4,
        view_size=12,
        shuffle_length=6,
        slice_view_size=10,
        ttl=10,
        antientropy_period=1.0,
    )
    defaults.update(overrides)
    return DataFlasksConfig(**defaults)


def build_cluster(n: int = 40, seed: int = 7, **config_overrides) -> DataFlasksCluster:
    """A converged small cluster ready for requests."""
    cluster = DataFlasksCluster(n=n, config=small_config(**config_overrides), seed=seed)
    cluster.warm_up(10)
    assert cluster.wait_for_slices(timeout=120), "slicing failed to converge"
    return cluster


def build_overlay(n: int = 50, seed: int = 3, rounds: float = 20.0) -> tuple:
    """(sim, nodes) with a converged Cyclon overlay and nothing else."""
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=10, shuffle_length=5, period=1.0))
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=4, rng=sim.rng_registry.stream("boot"))
    sim.start_all()
    sim.run_for(rounds)
    return sim, nodes


@pytest.fixture(scope="module")
def converged_cluster() -> DataFlasksCluster:
    """A shared read-mostly cluster for end-to-end tests."""
    return build_cluster(n=40, seed=11)

"""Fault-injector edge cases: overlapping windows, heal/inject ordering
at coincident instants, reused injector instances, and recovery of nodes
that are already alive (or already dead).

These pin down the composition semantics the adversarial hunter
(:mod:`repro.search`) relies on: overlapping schedules must compose and
unwind without one fault reverting — or leaking — another's state.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BurstLossFault,
    CrashRecoverFault,
    DegradeFault,
    FaultSpec,
    Nemesis,
    PartitionFault,
)

from tests.conftest import build_cluster


def build_nemesis(n: int = 24, seed: int = 91):
    cluster = build_cluster(n=n, seed=seed)
    controller = cluster.churn_controller()
    nemesis = Nemesis(cluster.sim, cluster=cluster, controller=controller)
    return cluster, controller, nemesis


def fault_free(sim) -> bool:
    return sim.network._fault_free


# ------------------------------------------------- overlapping partitions


class TestOverlappingPartitions:
    def test_same_links_compose_and_unwind_in_order(self):
        """Two partitions cutting the *same* links on staggered windows:
        the first heal must not reconnect links the second still cuts."""
        cluster, _, nemesis = build_nemesis()
        ids = sorted(s.id for s in cluster.servers)
        group = ids[:6]
        first = PartitionFault(start=0.0, duration=6.0, groups=[group])
        second = PartitionFault(start=3.0, duration=6.0, groups=[group])
        nemesis.schedule([first, second])
        sim = cluster.sim

        sim.run_for(4.0)  # both active
        assert sim.network._crosses_partition(group[0], ids[-1])
        sim.run_for(3.0)  # t=7: first healed, second still active
        assert nemesis.healed == 1
        assert sim.network._crosses_partition(group[0], ids[-1])
        sim.run_for(3.0)  # t=10: both healed
        assert nemesis.healed == 2
        assert not sim.network._crosses_partition(group[0], ids[-1])
        assert fault_free(sim)

    def test_reused_injector_instance_keeps_windows_separate(self):
        """One injector object scheduled for two windows (the nemesis
        composes schedules): the first window's heal must revert only the
        first window's block rules."""
        cluster, _, nemesis = build_nemesis(seed=92)
        ids = sorted(s.id for s in cluster.servers)
        fault = PartitionFault(start=0.0, duration=5.0, groups=[ids[:5]])
        nemesis.schedule([fault])
        nemesis.schedule([fault], base=cluster.sim.now + 2.0)  # window [2, 7)
        sim = cluster.sim

        sim.run_for(6.0)  # t=6: first window healed, second still open
        assert nemesis.injected == 2 and nemesis.healed == 1
        assert sim.network._crosses_partition(ids[0], ids[-1])
        sim.run_for(2.0)  # t=8: both healed
        assert nemesis.healed == 2
        assert not sim.network._crosses_partition(ids[0], ids[-1])
        assert fault_free(sim)


# ------------------------------------------- heal/inject at one instant


class TestHealInjectOrdering:
    def test_back_to_back_windows_on_same_links(self):
        """Fault B starts exactly when fault A heals. Scheduler ties break
        by scheduling order (A's heal was scheduled before B's inject), so
        the cut is continuous across the boundary and fully reverts at
        B's end."""
        cluster, _, nemesis = build_nemesis(seed=93)
        ids = sorted(s.id for s in cluster.servers)
        a = PartitionFault(start=0.0, duration=4.0, groups=[ids[:4]])
        b = PartitionFault(start=4.0, duration=4.0, groups=[ids[:4]])
        nemesis.schedule([a, b])
        sim = cluster.sim

        sim.run_for(5.0)  # past the boundary
        assert nemesis.injected == 2 and nemesis.healed == 1
        assert sim.network._crosses_partition(ids[0], ids[-1])
        sim.run_for(4.0)
        assert nemesis.healed == 2
        assert fault_free(sim)

    def test_spec_order_decides_ties_deterministically(self):
        """B listed *before* A but starting at A's end: B's inject is
        scheduled first, so at the shared instant B injects before A
        heals. Either order must leave a consistent final state."""
        cluster, _, nemesis = build_nemesis(seed=94)
        ids = sorted(s.id for s in cluster.servers)
        b = PartitionFault(start=4.0, duration=4.0, groups=[ids[:4]])
        a = PartitionFault(start=0.0, duration=4.0, groups=[ids[:4]])
        nemesis.schedule([b, a])
        sim = cluster.sim
        sim.run_for(9.0)
        assert nemesis.injected == 2 and nemesis.healed == 2
        assert fault_free(sim)


# -------------------------------------------------- crash-recover edges


class TestCrashRecoverEdges:
    def test_recover_of_already_alive_node_is_a_noop(self):
        cluster, controller, _ = build_nemesis(seed=95)
        alive_id = next(s.id for s in cluster.servers if s.alive)
        assert controller.recover(alive_id) is None
        assert controller.recoveries == 0

    def test_manual_recovery_before_heal_does_not_double_recover(self):
        """A victim revived out of band (operator intervention) before the
        fault's heal: heal must not crash, double-count, or re-bootstrap
        the node a second time."""
        cluster, controller, nemesis = build_nemesis(seed=96)
        victim_id = sorted(s.id for s in cluster.servers)[0]
        fault = CrashRecoverFault(start=0.0, duration=6.0, nodes=[victim_id])
        nemesis.schedule([fault])
        sim = cluster.sim

        sim.run_for(2.0)
        victim = sim.nodes[victim_id]
        assert not victim.alive
        assert controller.recover(victim_id) is victim  # manual revival
        assert victim.alive and controller.recoveries == 1
        sim.run_for(6.0)  # heal fires at t=6 against an alive node
        assert nemesis.healed == 1
        assert victim.alive
        assert controller.recoveries == 1  # heal's recover was a no-op

    def test_already_dead_node_is_not_claimed_as_victim(self):
        """An explicit victim that is already crashed belongs to whoever
        crashed it: the fault must not adopt it, and must not revive it
        at heal time."""
        cluster, controller, nemesis = build_nemesis(seed=97)
        victim_id = sorted(s.id for s in cluster.servers)[0]
        controller.kill(victim_id)
        fault = CrashRecoverFault(start=0.0, duration=4.0, nodes=[victim_id])
        nemesis.schedule([fault])
        sim = cluster.sim

        sim.run_for(5.0)  # inject and heal both fired
        assert nemesis.injected == 1 and nemesis.healed == 1
        assert fault._victims == []
        assert not sim.nodes[victim_id].alive  # still owned by the killer
        assert controller.recoveries == 0

    def test_overlapping_explicit_windows_share_no_victims(self):
        """Two crash-recover faults naming the same node on overlapping
        windows: the second finds it already dead, so only the first
        window's heal revives it — once."""
        cluster, controller, nemesis = build_nemesis(seed=98)
        victim_id = sorted(s.id for s in cluster.servers)[0]
        first = CrashRecoverFault(start=0.0, duration=6.0, nodes=[victim_id])
        second = CrashRecoverFault(start=2.0, duration=6.0, nodes=[victim_id])
        nemesis.schedule([first, second])
        sim = cluster.sim

        sim.run_for(7.0)  # first healed at t=6
        assert sim.nodes[victim_id].alive
        assert controller.leaves == 1 and controller.recoveries == 1
        sim.run_for(2.0)  # second heals at t=8: nothing left to revive
        assert nemesis.healed == 2
        assert controller.recoveries == 1


# ------------------------------------------------ degradation and bursts


class TestDegradeAndBurstEdges:
    def test_reused_degrade_injector_unwinds_fifo(self):
        cluster, _, nemesis = build_nemesis(seed=99)
        fault = DegradeFault(start=0.0, duration=5.0, fraction=0.2, loss=0.4)
        nemesis.schedule([fault])
        nemesis.schedule([fault], base=cluster.sim.now + 2.0)
        sim = cluster.sim

        sim.run_for(6.0)  # first window healed, second still degrading
        assert len(sim.network._condition_layers) == 1
        sim.run_for(2.0)
        assert sim.network._condition_layers == {}
        assert fault_free(sim)

    def test_reused_burst_injector_unwinds_fifo(self):
        cluster, _, nemesis = build_nemesis(seed=100)
        fault = BurstLossFault(start=0.0, duration=4.0, loss=0.5)
        nemesis.schedule([fault])
        nemesis.schedule([fault], base=cluster.sim.now + 2.0)
        sim = cluster.sim

        sim.run_for(5.0)  # t=5: first window closed, second open
        assert len(sim.network._burst_layers) == 1
        sim.run_for(2.0)
        assert sim.network._burst_layers == {}
        assert fault_free(sim)

    def test_double_heal_is_idempotent(self):
        cluster, _, _ = build_nemesis(seed=101)
        from repro.faults import FaultContext

        ctx = FaultContext(cluster.sim, cluster=cluster)
        fault = DegradeFault(start=0.0, duration=2.0, fraction=0.2, loss=0.3)
        fault.inject(ctx)
        fault.heal(ctx)
        fault.heal(ctx)  # nothing queued: must not raise or pop a stranger
        assert fault_free(cluster.sim)


# ------------------------------------------------------- spec validation


class TestFaultSpecTargets:
    def test_empty_target_group_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            FaultSpec(kind="partition", groups=[[1, 2], []])

    def test_single_empty_group_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            FaultSpec(kind="partition", groups=[[]])

"""Focused tests for the anti-entropy replication service."""

from repro.core.config import DataFlasksConfig
from repro.core.keyspace import slice_for_key
from repro.core.messages import SyncDigest
from repro.core.node import DataFlasksNode
from repro.pss.view import NodeDescriptor
from repro.sim.simulator import Simulation


def make_pair(num_slices=4, slice_id=1, gc=False):
    """Two nodes pinned to the same slice, knowing each other."""
    sim = Simulation(seed=2)
    config = DataFlasksConfig(
        num_slices=num_slices, antientropy_period=1.0, gc_foreign_data=gc, ttl=5
    )
    nodes = [
        sim.add_node(lambda nid, ctx: DataFlasksNode(nid, ctx, config=config))
        for _ in range(2)
    ]
    for node in nodes:
        node.start()
        node.slicing._set_slice(slice_id)
    a, b = nodes
    a.slice_view.view.add(NodeDescriptor(b.id, 0))
    b.slice_view.view.add(NodeDescriptor(a.id, 0))
    return sim, a, b


def key_in_slice(slice_id, num_slices=4, prefix="ae"):
    i = 0
    while True:
        key = f"{prefix}{i}"
        if slice_for_key(key, num_slices) == slice_id:
            return key
        i += 1


def test_push_pull_converges_both_ways():
    sim, a, b = make_pair()
    key_a = key_in_slice(1, prefix="onlya")
    key_b = key_in_slice(1, prefix="onlyb")
    a.store.put(key_a, 1, b"from-a")
    b.store.put(key_b, 1, b"from-b")
    sim.run_for(6)
    assert a.holds(key_b) and a.store.get(key_b, 1).value == b"from-b"
    assert b.holds(key_a) and b.store.get(key_a, 1).value == b"from-a"


def test_all_versions_are_synced():
    sim, a, b = make_pair()
    key = key_in_slice(1)
    a.store.put(key, 1, b"v1")
    a.store.put(key, 2, b"v2")
    sim.run_for(6)
    assert b.store.versions(key) == [1, 2]


def test_foreign_keys_not_offered():
    # Objects whose key belongs to another slice are excluded from the
    # digest: anti-entropy replicates only what the slice owns.
    sim, a, b = make_pair(slice_id=1)
    foreign = key_in_slice(2, prefix="foreign")
    a.store.put(foreign, 1, b"stray")
    sim.run_for(6)
    assert not b.holds(foreign)


def test_digest_from_other_slice_ignored():
    sim, a, b = make_pair(slice_id=1)
    key = key_in_slice(3, prefix="wrongslice")
    a.store.put(key, 1, b"x")
    # Hand-deliver a digest claiming slice 3; b (slice 1) must ignore it.
    b.deliver(SyncDigest(3, frozenset({(key, 1)})), a.id)
    sim.run_for(2)
    assert not b.holds(key)


def test_gc_removes_foreign_data_after_grace():
    sim, a, b = make_pair(slice_id=1, gc=True)
    foreign = key_in_slice(2, prefix="gcme")
    owned = key_in_slice(1, prefix="keepme")
    a.store.put(foreign, 1, b"stray")
    a.store.put(owned, 1, b"mine")
    # Trigger the slice-change hook (as if a just migrated into slice 1).
    a.antientropy._on_slice_change(2, 1)
    sim.run_for(10)  # grace = 3 * period = 3s, plus rounds
    assert not a.holds(foreign)
    assert a.holds(owned)


def test_gc_disabled_keeps_foreign_data():
    sim, a, b = make_pair(slice_id=1, gc=False)
    foreign = key_in_slice(2, prefix="keepforeign")
    a.store.put(foreign, 1, b"stray")
    a.antientropy._on_slice_change(2, 1)
    sim.run_for(10)
    assert a.holds(foreign)


def test_stranded_object_is_rehomed_to_owning_slice():
    # Regression: a node that stored an object and then migrated out of
    # the object's slice must re-inject it so the owning slice gets a
    # copy — otherwise the object is invisible to anti-entropy and dies
    # with its lone holder.
    from tests.conftest import build_cluster

    cluster = build_cluster(n=40, seed=61)
    client = cluster.new_client()
    cluster.put_sync(client, "stranded", b"payload", 1)
    cluster.sim.run_for(10)

    target = cluster.target_slice("stranded")
    holders = [s for s in cluster.alive_servers() if s.holds("stranded")]
    # Force every current holder out of the owning slice (simulates the
    # migration race), leaving the object stranded.
    for holder in holders:
        holder.slicing._set_slice((target + 1) % cluster.config.num_slices)
    in_slice = [
        s
        for s in cluster.alive_servers()
        if s.holds("stranded") and s.my_slice() == target
    ]
    assert not in_slice  # precondition: object is stranded

    cluster.sim.run_for(40)  # re-home rounds + intra-slice spread
    in_slice = [
        s
        for s in cluster.alive_servers()
        if s.holds("stranded") and s.my_slice() == target
    ]
    assert in_slice  # the owning slice recovered a copy

    # And reads still work throughout.
    result = cluster.get_sync(client, "stranded")
    assert result.succeeded and result.value == b"payload"


def test_holder_outside_slice_still_serves_reads():
    from tests.conftest import build_cluster

    cluster = build_cluster(n=30, seed=62)
    client = cluster.new_client()
    cluster.put_sync(client, "misplaced", b"v", 1)
    target = cluster.target_slice("misplaced")
    for server in cluster.alive_servers():
        if server.holds("misplaced"):
            server.slicing._set_slice((target + 1) % cluster.config.num_slices)
    result = cluster.get_sync(client, "misplaced")
    assert result.succeeded and result.value == b"v"


def test_sync_counts_repairs_metric():
    sim, a, b = make_pair()
    key = key_in_slice(1, prefix="metric")
    a.store.put(key, 1, b"x")
    sim.run_for(6)
    assert sim.metrics.total("df.ae.repaired") >= 1

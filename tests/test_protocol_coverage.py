"""The runtime protocol-coverage accountant: per-(node class, message
type) delivered/handled edge counts, the static-vs-runtime edge diff,
guard restoration and re-entrancy, and the trajectory-neutrality
contract — a covered scenario run is byte-identical to a plain one."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint import (
    build_protocol_graph,
    coverage_snapshot,
    protocol_coverage,
    protocol_coverage_active,
    unexercised_edges,
)
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario, run_sweep
from repro.sim.node import Node
from repro.sim.simulator import Simulation

SMALL = dict(
    nodes=20,
    warmup=8.0,
    settle=6.0,
    cooldown=0.0,
    record_count=5,
    operation_count=8,
)


def small_spec(name: str = "baseline"):
    spec = load_bundled(name)
    overrides = dict(SMALL)
    if spec.stack == "core":
        overrides["num_slices"] = 3
    return spec.scaled(**overrides)


# ----------------------------------------------------------- guard fixtures


@dataclass(frozen=True)
class Ping:
    body: str


@dataclass(frozen=True)
class Stray:
    body: str


class Chatty(Node):
    """Sends one handled type and one dead-letter type."""

    def on_start(self) -> None:
        self.after(0.1, self._fire)

    def _fire(self) -> None:
        self.send(1, Ping("hi"))
        self.send(1, Stray("lost"))


class Sink(Node):
    def on_start(self) -> None:
        self.register_handler(Ping, self._on_ping)

    def _on_ping(self, msg, src) -> None:
        self.last = msg.body


def _sim() -> Simulation:
    sim = Simulation(seed=7)
    sender = sim.add_node(Chatty, 0)
    sink = sim.add_node(Sink, 1)
    sender.start()
    sink.start()
    return sim


# ------------------------------------------------------------------- guard


class TestCoverageGuard:
    def test_inactive_by_default(self):
        assert not protocol_coverage_active()

    def test_delivered_and_handled_are_keyed_by_class_and_type(self):
        sim = _sim()
        with protocol_coverage():
            assert protocol_coverage_active()
            sim.run_for(1.0)
        snapshot = coverage_snapshot()
        assert snapshot["delivered"]["Sink/Ping"] == 1
        assert snapshot["delivered"]["Sink/Stray"] == 1
        assert snapshot["handled"] == {"Sink/Ping": 1}

    def test_counters_survive_guard_exit_and_reset_on_entry(self):
        sim = _sim()
        with protocol_coverage():
            sim.run_for(1.0)
        assert coverage_snapshot()["handled"]  # readable after exit
        with protocol_coverage():
            pass  # outermost entry clears the previous run's counters
        assert coverage_snapshot() == {"delivered": {}, "handled": {}}

    def test_dead_destination_is_not_counted(self):
        sim = Simulation(seed=7)
        sender = sim.add_node(Chatty, 0)
        sink = sim.add_node(Sink, 1)
        sender.start()
        sink.start()
        sink.stop()
        with protocol_coverage():
            sim.run_for(1.0)
        # Unregistered destination: the network drops the message before
        # any node class can be attributed.
        assert coverage_snapshot() == {"delivered": {}, "handled": {}}

    def test_restores_on_exit(self):
        from repro.sim.network import Network

        before = Network._deliver
        with protocol_coverage():
            assert Network._deliver is not before
        assert Network._deliver is before
        assert not protocol_coverage_active()

    def test_reentrant(self):
        from repro.sim.network import Network

        before = Network._deliver
        with protocol_coverage():
            with protocol_coverage():
                assert protocol_coverage_active()
            # Inner exit must not disarm the outer guard.
            assert protocol_coverage_active()
            assert Network._deliver is not before
        assert not protocol_coverage_active()
        assert Network._deliver is before


# ------------------------------------------------- static-vs-runtime diff


class TestEdgeDiff:
    def test_scenario_exercises_core_edges(self):
        import os

        import repro

        run_scenario(small_spec(), seed=11, protocol_coverage=True)
        graph = build_protocol_graph(
            [os.path.dirname(os.path.abspath(repro.__file__))]
        )
        missing = unexercised_edges(graph)
        missing_keys = {(endpoint, message) for endpoint, message, _ in missing}
        # The baseline core stack drives the put/get protocol…
        assert ("RequestHandler", "PutRequest") not in missing_keys
        assert ("RequestHandler", "GetRequest") not in missing_keys
        # …and never touches the oracle stack's wiring.
        assert ("OracleNode", "OraclePut") in missing_keys

    def test_all_edges_missing_without_a_covered_run(self):
        import os

        import repro

        with protocol_coverage():
            pass  # clear counters; nothing runs
        graph = build_protocol_graph(
            [os.path.dirname(os.path.abspath(repro.__file__))]
        )
        assert len(unexercised_edges(graph)) == len(graph.handle_edges())


# ---------------------------------------------------- trajectory neutrality


class TestTrajectoryNeutrality:
    def test_covered_run_is_byte_identical(self):
        spec = small_spec()
        plain = run_scenario(spec, seed=11)
        covered = run_scenario(spec, seed=11, protocol_coverage=True)
        assert covered.summary_json() == plain.summary_json()
        assert not protocol_coverage_active()

    def test_covered_fault_spec_is_byte_identical(self):
        spec = small_spec("asymmetric-partition")
        plain = run_scenario(spec, seed=3)
        covered = run_scenario(spec, seed=3, protocol_coverage=True)
        assert covered.summary_json() == plain.summary_json()

    def test_covered_sweep_is_byte_identical(self):
        spec = small_spec()
        plain = run_sweep(spec, seeds=[0, 1])
        covered = run_sweep(spec, seeds=[0, 1], protocol_coverage=True)
        assert covered.summary_json() == plain.summary_json()

    def test_stacks_with_sanitizer_and_isolation_checker(self):
        # scenarios run --sanitize --isolation-check --protocol-coverage:
        # all three guards armed at once, restored in LIFO order.
        spec = small_spec("dht-crash-recover")
        result = run_scenario(
            spec,
            seed=5,
            sanitize=True,
            isolation_check=True,
            protocol_coverage=True,
        )
        assert result.metrics["events_processed"] > 0
        assert coverage_snapshot()["handled"]

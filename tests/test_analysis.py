"""Tests for tables and the experiment drivers (tiny scale)."""

import pytest

from repro.analysis.experiments import (
    default_node_counts,
    run_constant_slices,
    run_proportional_slices,
    run_write_workload_point,
)
from repro.analysis.tables import format_series, format_table, rows_to_table


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "n"], [["alpha", 1], ["b", 20]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert len(lines) == 4

    def test_format_table_floats_rounded(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out
        assert "1.2345" not in out

    def test_format_series(self):
        out = format_series("Figure 3", "nodes", "msgs", [(100, 5.0), (200, 6.0)])
        assert "Figure 3" in out
        assert "100" in out and "5.00" in out

    def test_rows_to_table_selects_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = rows_to_table(rows, ["c", "a"])
        header = out.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header


class TestDrivers:
    def test_default_counts_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert default_node_counts() == (100, 200, 300, 400, 500, 600)
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert default_node_counts() == (500, 1000, 1500, 2000, 2500, 3000)

    def test_single_point_row_shape(self):
        row = run_write_workload_point(n=30, num_slices=3, record_count=10, seed=2)
        assert row["n"] == 30
        assert row["num_slices"] == 3
        assert row["ops"] == 10
        assert row["success_rate"] == 1.0
        assert row["messages_per_node"] > 0
        assert row["request_messages_per_node"] > 0

    def test_constant_slices_sweep(self):
        rows = run_constant_slices(node_counts=[20, 40], num_slices=2, record_count=8)
        assert [r["n"] for r in rows] == [20, 40]
        assert all(r["num_slices"] == 2 for r in rows)

    def test_proportional_slices_sweep(self):
        rows = run_proportional_slices(
            node_counts=[20, 40], nodes_per_slice=10, records_per_slice=4
        )
        assert [r["num_slices"] for r in rows] == [2, 4]
        assert [r["ops"] for r in rows] == [8, 16]

"""Tests for the pure anti-entropy reconciliation primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gossip.antientropy import diff, make_digest, merge_digests, missing_from

entry_st = st.tuples(st.text(max_size=5), st.integers(min_value=0, max_value=9))
digest_st = st.frozensets(entry_st, max_size=20)


def test_missing_from_basic():
    local = {("a", 1)}
    remote = {("a", 1), ("b", 2)}
    assert missing_from(local, remote) == {("b", 2)}


def test_missing_from_empty_local():
    remote = {("a", 1)}
    assert missing_from(set(), remote) == remote


def test_diff_both_directions():
    a = {("a", 1), ("c", 3)}
    b = {("a", 1), ("b", 2)}
    a_missing, b_missing = diff(a, b)
    assert a_missing == {("b", 2)}
    assert b_missing == {("c", 3)}


def test_merge_digests():
    assert merge_digests({("a", 1)}, {("b", 2)}, set()) == frozenset(
        {("a", 1), ("b", 2)}
    )


def test_make_digest_normalises():
    digest = make_digest([("a", 1), ("a", 1), ("b", 2)])
    assert digest == frozenset({("a", 1), ("b", 2)})


@given(digest_st, digest_st)
def test_exchanging_differences_converges(a, b):
    # The fundamental anti-entropy property: after one push-pull round
    # both replicas hold the union.
    a_missing, b_missing = diff(a, b)
    new_a = set(a) | a_missing
    new_b = set(b) | b_missing
    assert new_a == new_b == set(a) | set(b)


@given(digest_st, digest_st)
def test_diff_disjointness(a, b):
    a_missing, b_missing = diff(a, b)
    assert a_missing.isdisjoint(set(a))
    assert b_missing.isdisjoint(set(b))
    assert a_missing.isdisjoint(b_missing) or (a_missing & b_missing) == set()


@given(digest_st)
def test_diff_with_self_is_empty(a):
    assert diff(a, a) == (set(), set())

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.command == "fig3"
    assert args.slices == 10
    args = build_parser().parse_args(["fig4", "--nodes", "50", "60"])
    assert args.nodes == [50, 60]


def test_demo_command_runs(capsys):
    assert main(["demo", "--nodes", "25", "--slices", "3", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "slicing converged: True" in out
    assert "hello dataflasks" in out


def test_fig3_command_runs(capsys):
    assert main(["fig3", "--nodes", "20", "30", "--slices", "2", "--records", "6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "20" in out and "30" in out


def test_fig4_command_runs(capsys):
    code = main(
        [
            "fig4",
            "--nodes", "20", "30",
            "--nodes-per-slice", "10",
            "--records-per-slice", "3",
        ]
    )
    assert code == 0
    assert "Figure 4" in capsys.readouterr().out


def test_check_command_healthy(capsys):
    assert main(["check", "--nodes", "25", "--slices", "3", "--keys", "4"]) == 0
    out = capsys.readouterr().out
    assert "healthy: True" in out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.command == "fig3"
    assert args.slices == 10
    args = build_parser().parse_args(["fig4", "--nodes", "50", "60"])
    assert args.nodes == [50, 60]


def test_demo_command_runs(capsys):
    assert main(["demo", "--nodes", "25", "--slices", "3", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "slicing converged: True" in out
    assert "hello dataflasks" in out


def test_fig3_command_runs(capsys):
    assert main(["fig3", "--nodes", "20", "30", "--slices", "2", "--records", "6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "20" in out and "30" in out


def test_fig4_command_runs(capsys):
    code = main(
        [
            "fig4",
            "--nodes", "20", "30",
            "--nodes-per-slice", "10",
            "--records-per-slice", "3",
        ]
    )
    assert code == 0
    assert "Figure 4" in capsys.readouterr().out


def test_check_command_healthy(capsys):
    assert main(["check", "--nodes", "25", "--slices", "3", "--keys", "4"]) == 0
    out = capsys.readouterr().out
    assert "healthy: True" in out


SMALL_RUN = ["--nodes", "20", "--records", "5", "--ops", "8"]


def test_backends_list(capsys):
    assert main(["backends", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("core", "dht", "oracle"):
        assert name in out
    assert "ground-truth" in out  # descriptions shown


def test_backends_requires_action():
    with pytest.raises(SystemExit):
        main(["backends"])


def test_scenarios_list(capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "catastrophic-failure", "scale-5k"):
        assert name in out


def test_scenarios_run_table(capsys):
    assert main(["scenarios", "run", "baseline", "--seed", "3"] + SMALL_RUN) == 0
    out = capsys.readouterr().out
    assert "scenario: baseline (seed 3)" in out
    assert "load_success_rate" in out


def test_scenarios_run_summary_deterministic(capsys):
    argv = ["scenarios", "run", "baseline", "--seed", "3", "--summary"] + SMALL_RUN
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    assert '"seed": 3' in first


def test_scenarios_run_custom_spec_file(tmp_path, capsys):
    path = tmp_path / "mini.json"
    path.write_text(
        '{"name": "mini", "nodes": 15, "num_slices": 3, "warmup": 8.0,'
        ' "settle": 5.0, "workload": {"record_count": 4}}'
    )
    assert main(["scenarios", "run", "--spec", str(path)]) == 0
    assert "scenario: mini" in capsys.readouterr().out


def test_scenarios_run_requires_name_or_spec():
    with pytest.raises(SystemExit):
        main(["scenarios", "run"])


def test_scenarios_run_rejects_name_and_spec(tmp_path):
    path = tmp_path / "mini.json"
    path.write_text('{"name": "mini"}')
    with pytest.raises(SystemExit, match="not both"):
        main(["scenarios", "run", "baseline", "--spec", str(path)])


def test_scenarios_unknown_name_reports_error(capsys):
    assert main(["scenarios", "run", "no-such-thing"]) == 2
    out = capsys.readouterr().out
    assert "error:" in out and "no-such-thing" in out


def test_scenarios_validate_bundled_name(capsys):
    assert main(["scenarios", "validate", "asymmetric-partition"]) == 0
    out = capsys.readouterr().out
    assert "spec OK: asymmetric-partition" in out
    assert "backend: core" in out
    assert "partition" in out
    assert "heals_at" in out


def test_scenarios_validate_rejects_unregistered_stack(tmp_path, capsys):
    path = tmp_path / "badstack.toml"
    path.write_text('name = "badstack"\nstack = "cloud"\n')
    assert main(["scenarios", "validate", str(path)]) == 2
    out = capsys.readouterr().out
    assert "invalid spec" in out
    # The error names what *is* registered.
    for name in ("core", "dht", "oracle"):
        assert name in out


def test_scenarios_run_oracle_stack(capsys):
    argv = ["scenarios", "run", "oracle-baseline", "--seed", "2"] + SMALL_RUN
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "scenario: oracle-baseline (seed 2)" in out
    assert "stale_reads" in out


def test_scenarios_validate_spec_file_with_faults(tmp_path, capsys):
    path = tmp_path / "faulty.toml"
    path.write_text(
        "\n".join(
            [
                'name = "faulty"',
                "nodes = 20",
                "[[faults]]",
                'kind = "burst_loss"',
                "loss = 0.5",
                "start = 1.0",
                "duration = 4.0",
            ]
        )
    )
    assert main(["scenarios", "validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "spec OK: faulty" in out
    assert "burst_loss" in out


def test_scenarios_validate_rejects_bad_fault(tmp_path, capsys):
    path = tmp_path / "bad.toml"
    path.write_text(
        "\n".join(
            [
                'name = "bad"',
                "[[faults]]",
                'kind = "meteor"',
            ]
        )
    )
    assert main(["scenarios", "validate", str(path)]) == 2
    assert "invalid spec" in capsys.readouterr().out


def test_scenarios_validate_rejects_malformed_toml(tmp_path, capsys):
    path = tmp_path / "broken.toml"
    path.write_text("name = ")
    assert main(["scenarios", "validate", str(path)]) == 2
    assert "invalid spec" in capsys.readouterr().out


def test_scenarios_validate_missing_file(capsys):
    assert main(["scenarios", "validate", "/no/such/spec.toml"]) == 2
    assert "error:" in capsys.readouterr().out


def test_scenarios_validate_unknown_bundled_name(capsys):
    assert main(["scenarios", "validate", "no-such-scenario"]) == 2
    assert "error:" in capsys.readouterr().out


def test_scenarios_sweep(capsys):
    argv = ["scenarios", "sweep", "baseline", "--seeds", "0", "1"] + SMALL_RUN
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "over seeds [0, 1]" in out
    assert "load_success_rate" in out
    assert "stdev" in out


SMALL_FR = ["--nodes", "15", "--records", "5", "--ops", "15"]


def test_scenarios_run_brief(capsys):
    argv = ["scenarios", "run", "baseline", "--seed", "3", "--brief"] + SMALL_RUN
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "baseline: core stack" in out
    assert "ops:" in out and "sim:" in out


def test_scenarios_run_obs_artifacts_and_stdout_purity(tmp_path, capsys):
    # The CI obs-smoke check in CLI form: --summary stdout must be
    # byte-identical with and without the recorder (artifact chatter
    # goes to stderr), and the artifact files must exist.
    obs_dir = str(tmp_path / "obs")
    base = ["scenarios", "run", "flight-recorder", "--summary"] + SMALL_FR
    assert main(base + ["--no-obs"]) == 0
    off = capsys.readouterr()
    assert main(base + ["--timeline", "--trace", "--profile", "--obs-dir", obs_dir]) == 0
    on = capsys.readouterr()
    assert on.out == off.out
    assert "obs artifacts" in on.err and "obs artifacts" not in off.err
    for name in ("manifest.json", "timeline.json", "trace.json", "hotspots.json"):
        assert (tmp_path / "obs" / name).is_file()


def test_spec_observability_block_enables_recorder(tmp_path, capsys):
    # flight-recorder's own [observability] turns pillars on without flags.
    obs_dir = str(tmp_path / "obs")
    argv = ["scenarios", "run", "flight-recorder", "--summary",
            "--obs-dir", obs_dir] + SMALL_FR
    assert main(argv) == 0
    capsys.readouterr()
    assert (tmp_path / "obs" / "timeline.json").is_file()
    assert (tmp_path / "obs" / "trace.json").is_file()
    assert not (tmp_path / "obs" / "hotspots.json").exists()  # profile off in spec


def test_report_command(tmp_path, capsys):
    obs_dir = str(tmp_path / "obs")
    argv = ["scenarios", "run", "flight-recorder", "--summary", "--timeline",
            "--trace", "--profile", "--obs-dir", obs_dir] + SMALL_FR
    assert main(argv) == 0
    capsys.readouterr()
    assert main(["report", obs_dir]) == 0
    out = capsys.readouterr().out
    assert "run: flight-recorder" in out
    assert "timeline (" in out
    assert "Perfetto" in out
    assert "hotspots (" in out


def test_report_missing_directory(capsys):
    assert main(["report", "/no/such/dir"]) == 2
    assert "error:" in capsys.readouterr().out


def test_scenarios_sweep_jobs_summary_matches_serial(capsys):
    # The CI parallel-vs-serial determinism check in CLI form: the
    # canonical aggregate JSON must be byte-identical for any --jobs.
    argv = ["scenarios", "sweep", "baseline", "--seeds", "0", "1", "--summary"]
    assert main(argv + SMALL_RUN + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + SMALL_RUN + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    payload = json.loads(serial)
    assert payload["scenario"] == "baseline"
    assert payload["seeds"] == [0, 1]
    assert "load_success_rate" in payload["aggregate"]

"""Tests for the four slicing protocols and their shared contract."""

import pytest

from repro.errors import ConfigurationError
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation
from repro.slicing import (
    DSleadSlicing,
    OrderedSlicing,
    SliverSlicing,
    StaticSlicing,
    assignment_accuracy,
    hash_slice,
    slice_histogram,
    unassigned_fraction,
)
from repro.slicing.base import SlicingService

ADAPTIVE_PROTOCOLS = [
    ("dslead", DSleadSlicing),
    ("ordered", OrderedSlicing),
    ("sliver", SliverSlicing),
]


def build_sliced(cls, n=80, k=4, rounds=60.0, seed=3, **kwargs):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=12, shuffle_length=6))
        # Attribute: a permutation-ish spread so ranks are unambiguous.
        node.add_service(cls(num_slices=k, attribute=float((node_id * 13) % 101), **kwargs))
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=5, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(rounds)
    return sim, nodes


class TestContract:
    def test_num_slices_validated(self):
        with pytest.raises(ConfigurationError):
            StaticSlicing(num_slices=0, attribute=1.0)

    def test_set_num_slices_validated(self):
        service = StaticSlicing(num_slices=4, attribute=1.0)
        with pytest.raises(ConfigurationError):
            service.set_num_slices(-1)

    def test_slice_none_before_start(self):
        assert DSleadSlicing(num_slices=4, attribute=1.0).my_slice() is None

    def test_callbacks_fire_on_change(self):
        sim = Simulation(seed=1)
        node = sim.add_node(Node)
        service = StaticSlicing(num_slices=4, attribute=1.0)
        node.add_service(service)
        changes = []
        service.on_slice_change(lambda old, new: changes.append((old, new)))
        node.start()
        assert len(changes) == 1
        assert changes[0][0] == -1  # first assignment reported as old=-1


class TestStaticSlicing:
    def test_hash_slice_in_range(self):
        for node_id in range(200):
            assert 0 <= hash_slice(node_id, 7) < 7

    def test_hash_slice_roughly_uniform(self):
        counts = {}
        for node_id in range(1000):
            s = hash_slice(node_id, 5)
            counts[s] = counts.get(s, 0) + 1
        assert min(counts.values()) > 120  # expected 200 each

    def test_assignment_fixed_at_start(self):
        sim = Simulation(seed=1)
        node = sim.add_node(Node)
        service = StaticSlicing(num_slices=4, attribute=123.0)
        node.add_service(service)
        node.start()
        assert service.my_slice() == hash_slice(node.id, 4)

    def test_never_adapts_to_correlated_failure(self):
        # The Section IV-A argument: hash slicing cannot rebalance.
        sim = Simulation(seed=2)
        nodes = []
        for _ in range(40):
            node = sim.add_node(Node)
            node.add_service(StaticSlicing(num_slices=4, attribute=1.0))
            nodes.append(node)
        sim.start_all()
        before = slice_histogram(nodes)
        victims = [n for n in nodes if n.get_service(SlicingService).my_slice() == 0]
        for v in victims:
            v.crash()
        sim.run_for(30)
        after = slice_histogram([n for n in nodes if n.alive])
        assert after.get(0, 0) == 0  # the hole is never refilled

    def test_recompute_on_reconfigure(self):
        sim = Simulation(seed=3)
        node = sim.add_node(Node)
        service = StaticSlicing(num_slices=4, attribute=1.0)
        node.add_service(service)
        node.start()
        service.set_num_slices(2)
        assert service.my_slice() == hash_slice(node.id, 2)


@pytest.mark.parametrize("name,cls", ADAPTIVE_PROTOCOLS)
class TestAdaptiveProtocols:
    def test_everyone_gets_assigned(self, name, cls):
        _, nodes = build_sliced(cls)
        assert unassigned_fraction(nodes) == 0.0

    def test_assignments_in_range(self, name, cls):
        _, nodes = build_sliced(cls, k=4)
        for node in nodes:
            assert 0 <= node.get_service(SlicingService).my_slice() < 4

    def test_converges_towards_ideal_partition(self, name, cls):
        _, nodes = build_sliced(cls, rounds=80)
        assert assignment_accuracy(nodes) > 0.55

    def test_every_slice_populated(self, name, cls):
        _, nodes = build_sliced(cls, rounds=80)
        hist = slice_histogram(nodes)
        assert all(hist.get(i, 0) > 0 for i in range(4))

    def test_rebalances_after_correlated_failure(self, name, cls):
        if cls is OrderedSlicing:
            pytest.skip(
                "JK ordered slicing keeps a fixed multiset of random values, "
                "so an emptied slice is never refilled — the known limitation "
                "rank-estimation protocols (Sliver, DSlead) fix; asserted in "
                "TestOrderedSlicingInvariant::test_cannot_refill_emptied_slice"
            )
        sim, nodes = build_sliced(cls, n=80, k=4, rounds=80)
        victims = [
            n for n in nodes if n.get_service(SlicingService).my_slice() == 0
        ]
        assert victims  # sanity
        for v in victims:
            v.crash()
        sim.run_for(120)
        survivors = [n for n in nodes if n.alive]
        hist = slice_histogram(survivors)
        # Adaptive slicing refills the dead slice from the survivors.
        assert hist.get(0, 0) > 0


class TestOrderedSlicingInvariant:
    def test_x_multiset_preserved(self):
        # Swaps must permute, never duplicate, the random values.
        sim, nodes = build_sliced(OrderedSlicing, n=40, rounds=50)
        xs = sorted(n.get_service(OrderedSlicing).x for n in nodes)
        assert len(set(f"{x:.12f}" for x in xs)) == len(xs)

    def test_cannot_refill_emptied_slice(self):
        # Documented limitation: x values are a fixed multiset, so killing
        # every node of the lowest slice removes its x range for good.
        sim, nodes = build_sliced(OrderedSlicing, n=80, k=4, rounds=80)
        victims = [n for n in nodes if n.get_service(SlicingService).my_slice() == 0]
        for v in victims:
            v.crash()
        sim.run_for(120)
        hist = slice_histogram([n for n in nodes if n.alive])
        assert hist.get(0, 0) == 0

    def test_sorted_by_attribute_after_convergence(self):
        _, nodes = build_sliced(OrderedSlicing, n=40, k=2, rounds=100)
        pairs = sorted(
            (n.get_service(OrderedSlicing).attribute, n.get_service(OrderedSlicing).x)
            for n in nodes
        )
        xs = [x for _, x in pairs]
        # Count adjacent inversions; convergence makes them rare.
        inversions = sum(1 for a, b in zip(xs, xs[1:]) if a > b)
        assert inversions < len(xs) * 0.25


class TestSliverDetails:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SliverSlicing(num_slices=4, attribute=1.0, sample_size=0)
        with pytest.raises(ConfigurationError):
            SliverSlicing(num_slices=4, attribute=1.0, table_size=0)

    def test_rank_fraction_empty(self):
        assert SliverSlicing(num_slices=4, attribute=1.0).rank_fraction() == 0.0

    def test_observation_table_bounded(self):
        service = SliverSlicing(num_slices=4, attribute=50.0, table_size=5)
        for i in range(20):
            service.observe(i, (float(i), i))
        assert service.observations == 5

    def test_rank_fraction_computation(self):
        service = SliverSlicing(num_slices=4, attribute=50.0)
        service.node = type("N", (), {"id": 999})()
        for i, attr in enumerate([10.0, 20.0, 60.0, 70.0]):
            service.observe(i, (attr, i))
        assert service.rank_fraction() == 0.5


class TestDSleadDetails:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DSleadSlicing(num_slices=4, attribute=1.0, reservoir_size=0)
        with pytest.raises(ConfigurationError):
            DSleadSlicing(num_slices=4, attribute=1.0, boundary_margin_fraction=0.7)
        with pytest.raises(ConfigurationError):
            DSleadSlicing(num_slices=4, attribute=1.0, stability_rounds=0)

    def test_reservoir_bounded(self):
        service = DSleadSlicing(num_slices=4, attribute=1.0, reservoir_size=8)
        for i in range(50):
            service._reservoir.append((float(i), i))
        assert service.observations == 8

    def test_estimate_none_when_empty(self):
        assert DSleadSlicing(num_slices=4, attribute=1.0).estimate is None

    def test_hysteresis_limits_flapping(self):
        # Count slice changes per node; the steady protocol should change
        # slice only a handful of times over a long run.
        sim, nodes = build_sliced(DSleadSlicing, n=60, rounds=100)
        changes = {n.id: 0 for n in nodes}
        for node in nodes:
            node.get_service(SlicingService).on_slice_change(
                lambda old, new, i=node.id: changes.__setitem__(i, changes[i] + 1)
            )
        sim.run_for(100)
        flappers = sum(1 for c in changes.values() if c > 5)
        assert flappers <= len(nodes) * 0.1

"""Tests for the DATADROPLETS-lite session layer."""

import pytest

from repro.droplets import DropletsSession
from repro.errors import ClientError, ConfigurationError

from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(n=30, seed=71)


def test_cache_capacity_validated(cluster):
    with pytest.raises(ConfigurationError):
        DropletsSession(cluster, cache_capacity=0)


def test_put_assigns_monotonic_versions(cluster):
    session = DropletsSession(cluster)
    v1 = session.put("droplet:mono", b"a")
    v2 = session.put("droplet:mono", b"b")
    v3 = session.put("droplet:mono", b"c")
    assert (v1, v2, v3) == (1, 2, 3)
    assert session.current_version("droplet:mono") == 3


def test_read_your_writes_from_cache(cluster):
    session = DropletsSession(cluster)
    session.put("droplet:ryw", b"mine")
    before = cluster.sim.metrics.get("msg.sent", node=session.client.id)
    assert session.get("droplet:ryw") == b"mine"
    after = cluster.sim.metrics.get("msg.sent", node=session.client.id)
    assert after == before  # pure cache hit, no network traffic
    assert session.cache_hits >= 1


def test_get_unknown_key_returns_none(cluster):
    session = DropletsSession(cluster)
    assert session.get("droplet:never") is None


def test_historical_version_read(cluster):
    session = DropletsSession(cluster)
    session.put("droplet:hist", b"old")
    session.put("droplet:hist", b"new")
    assert session.get_version("droplet:hist", 1) == b"old"
    assert session.get("droplet:hist") == b"new"


def test_key_handover_between_sessions(cluster):
    writer = DropletsSession(cluster)
    writer.put("droplet:handover", b"first")
    writer.put("droplet:handover", b"second")
    # Handover is defined on a converged substrate: a replica that has
    # not yet received the second write would report version 1 (the
    # substrate is eventually consistent; serialising *concurrent*
    # sessions is DATADROPLETS' broker job, out of scope for a session).
    cluster.sim.run_for(15)

    # A fresh session (no local counter) must continue the sequence, not
    # restart it — it learns the current version from the substrate.
    successor = DropletsSession(cluster)
    v = successor.put("droplet:handover", b"third")
    assert v == 3
    assert successor.get("droplet:handover") == b"third"


def test_rebuild_restores_soft_state(cluster):
    session = DropletsSession(cluster)
    keys = [f"droplet:re{i}" for i in range(4)]
    for i, key in enumerate(keys):
        session.put(key, f"v{i}".encode())
    cluster.sim.run_for(10)

    # Catastrophic soft-state loss: a brand-new session rebuilds counters
    # and cache purely from the persistent layer.
    replacement = DropletsSession(cluster)
    recovered = replacement.rebuild(keys + ["droplet:ghost"])
    assert recovered == len(keys)
    for i, key in enumerate(keys):
        assert replacement.current_version(key) == 1
        assert replacement.get(key) == f"v{i}".encode()
    next_version = replacement.put(keys[0], b"post-recovery")
    assert next_version == 2


def test_failed_put_rolls_version_back():
    # An empty cluster directory makes the substrate put fail immediately.
    cluster = build_cluster(n=10, seed=72)
    session = DropletsSession(cluster)
    session.put("droplet:fail", b"ok")
    for server in cluster.servers:
        server.crash()
    with pytest.raises(ClientError):
        session.put("droplet:fail", b"doomed")
    # Version 2 was not consumed by the failure.
    assert session.current_version("droplet:fail") == 1


def test_cache_evicts_lru(cluster):
    session = DropletsSession(cluster, cache_capacity=2)
    session.put("droplet:lru1", b"1")
    session.put("droplet:lru2", b"2")
    session.put("droplet:lru3", b"3")  # evicts lru1
    assert "droplet:lru1" not in session._cache
    assert "droplet:lru3" in session._cache

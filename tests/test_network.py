"""Unit tests for the simulated network."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import (
    FixedLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


class Probe:
    """A message type used by the tests."""

    def __init__(self, body="x"):
        self.body = body


def make_network(**kwargs):
    sched = Scheduler()
    metrics = MetricsRegistry()
    rng = RngRegistry(seed=1).stream("net")
    return Network(sched, rng, metrics, **kwargs), sched, metrics


def test_delivery_with_fixed_latency():
    net, sched, _ = make_network(latency_model=FixedLatency(0.25))
    inbox = []
    net.register(2, lambda msg, src: inbox.append((msg.body, src, sched.now)))
    net.send(1, 2, Probe("hello"))
    sched.run()
    assert inbox == [("hello", 1, 0.25)]


def test_message_to_unregistered_node_is_dropped():
    net, sched, metrics = make_network()
    assert net.send(1, 99, Probe()) is True  # on the wire
    sched.run()
    assert metrics.total("msg.dropped.dead") == 1


def test_unregister_drops_in_flight_messages():
    net, sched, metrics = make_network(latency_model=FixedLatency(1.0))
    inbox = []
    net.register(2, lambda msg, src: inbox.append(msg))
    net.send(1, 2, Probe())
    net.unregister(2)
    sched.run()
    assert inbox == []
    assert metrics.total("msg.dropped.dead") == 1


def test_send_and_receive_counters():
    net, sched, metrics = make_network()
    net.register(2, lambda msg, src: None)
    net.send(1, 2, Probe())
    sched.run()
    assert metrics.get("msg.sent", node=1) == 1
    assert metrics.get("msg.received", node=2) == 1
    assert metrics.total("msg.sent.Probe") == 1
    assert metrics.total("msg.received.Probe") == 1


def test_loss_rate_drops_messages():
    net, sched, metrics = make_network(loss_rate=0.5)
    received = []
    net.register(2, lambda msg, src: received.append(msg))
    for _ in range(200):
        net.send(1, 2, Probe())
    sched.run()
    dropped = metrics.total("msg.dropped.loss")
    assert dropped > 0
    assert len(received) + dropped == 200
    # Bernoulli(0.5) over 200 trials: overwhelmingly inside [60, 140].
    assert 60 <= dropped <= 140


def test_invalid_loss_rate_rejected():
    with pytest.raises(ConfigurationError):
        make_network(loss_rate=1.0)


def test_partition_blocks_cross_group_traffic():
    net, sched, metrics = make_network()
    inbox = []
    for node_id in (1, 2, 3):
        net.register(node_id, lambda msg, src: inbox.append(src))
    net.set_partitions([[1], [2, 3]])
    assert net.send(1, 2, Probe()) is False
    assert net.send(2, 3, Probe()) is True
    sched.run()
    assert inbox == [2]
    assert metrics.total("msg.dropped.partition") == 1


def test_heal_partitions_restores_connectivity():
    net, sched, _ = make_network()
    inbox = []
    net.register(1, lambda msg, src: inbox.append(src))
    net.register(2, lambda msg, src: inbox.append(src))
    net.set_partitions([[1], [2]])
    net.heal_partitions()
    net.send(1, 2, Probe())
    sched.run()
    assert inbox == [1]


def test_unmentioned_nodes_form_implicit_group():
    net, sched, _ = make_network()
    inbox = []
    for node_id in (1, 2, 3):
        net.register(node_id, lambda msg, src: inbox.append(src))
    net.set_partitions([[1]])
    net.send(2, 3, Probe())  # both in the implicit group
    assert net.send(1, 3, Probe()) is False
    sched.run()
    assert inbox == [2]


def test_self_send_is_delivered():
    net, sched, _ = make_network()
    inbox = []
    net.register(1, lambda msg, src: inbox.append(src))
    net.send(1, 1, Probe())
    sched.run()
    assert inbox == [1]


def test_registered_ids():
    net, _, _ = make_network()
    net.register(5, lambda m, s: None)
    net.register(6, lambda m, s: None)
    assert sorted(net.registered_ids) == [5, 6]
    assert net.is_registered(5)
    net.unregister(5)
    assert not net.is_registered(5)


class TestLatencyModels:
    def test_fixed_constant(self):
        model = FixedLatency(0.1)
        rng = RngRegistry(0).stream("x")
        assert model.sample(rng, 1, 2) == 0.1

    def test_fixed_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-0.1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = RngRegistry(0).stream("x")
        for _ in range(100):
            assert 0.01 <= model.sample(rng, 1, 2) <= 0.05

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_positive_and_capped(self):
        model = LogNormalLatency(median=0.02, sigma=1.0, cap=0.5)
        rng = RngRegistry(0).stream("x")
        samples = [model.sample(rng, 1, 2) for _ in range(200)]
        assert all(0 < s <= 0.5 for s in samples)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median=0.0)

"""Unit tests for the simulated network."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import (
    FixedLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


class Probe:
    """A message type used by the tests."""

    def __init__(self, body="x"):
        self.body = body


def make_network(**kwargs):
    sched = Scheduler()
    metrics = MetricsRegistry()
    rng = RngRegistry(seed=1).stream("net")
    return Network(sched, rng, metrics, **kwargs), sched, metrics


def test_delivery_with_fixed_latency():
    net, sched, _ = make_network(latency_model=FixedLatency(0.25))
    inbox = []
    net.register(2, lambda msg, src: inbox.append((msg.body, src, sched.now)))
    net.send(1, 2, Probe("hello"))
    sched.run()
    assert inbox == [("hello", 1, 0.25)]


def test_message_to_unregistered_node_is_dropped():
    net, sched, metrics = make_network()
    assert net.send(1, 99, Probe()) is True  # on the wire
    sched.run()
    assert metrics.total("msg.dropped.dead") == 1


def test_unregister_drops_in_flight_messages():
    net, sched, metrics = make_network(latency_model=FixedLatency(1.0))
    inbox = []
    net.register(2, lambda msg, src: inbox.append(msg))
    net.send(1, 2, Probe())
    net.unregister(2)
    sched.run()
    assert inbox == []
    assert metrics.total("msg.dropped.dead") == 1


def test_send_and_receive_counters():
    net, sched, metrics = make_network()
    net.register(2, lambda msg, src: None)
    net.send(1, 2, Probe())
    sched.run()
    assert metrics.get("msg.sent", node=1) == 1
    assert metrics.get("msg.received", node=2) == 1
    assert metrics.total("msg.sent.Probe") == 1
    assert metrics.total("msg.received.Probe") == 1


def test_loss_rate_drops_messages():
    net, sched, metrics = make_network(loss_rate=0.5)
    received = []
    net.register(2, lambda msg, src: received.append(msg))
    for _ in range(200):
        net.send(1, 2, Probe())
    sched.run()
    dropped = metrics.total("msg.dropped.loss")
    assert dropped > 0
    assert len(received) + dropped == 200
    # Bernoulli(0.5) over 200 trials: overwhelmingly inside [60, 140].
    assert 60 <= dropped <= 140


def test_invalid_loss_rate_rejected():
    with pytest.raises(ConfigurationError):
        make_network(loss_rate=1.0)


def test_partition_blocks_cross_group_traffic():
    net, sched, metrics = make_network()
    inbox = []
    for node_id in (1, 2, 3):
        net.register(node_id, lambda msg, src: inbox.append(src))
    net.set_partitions([[1], [2, 3]])
    assert net.send(1, 2, Probe()) is False
    assert net.send(2, 3, Probe()) is True
    sched.run()
    assert inbox == [2]
    assert metrics.total("msg.dropped.partition") == 1


def test_heal_partitions_restores_connectivity():
    net, sched, _ = make_network()
    inbox = []
    net.register(1, lambda msg, src: inbox.append(src))
    net.register(2, lambda msg, src: inbox.append(src))
    net.set_partitions([[1], [2]])
    net.heal_partitions()
    net.send(1, 2, Probe())
    sched.run()
    assert inbox == [1]


def test_partition_rejects_node_in_multiple_groups():
    # A node on both sides of a cut is a contradiction; the old last-wins
    # behaviour let fault specs express impossible partitions silently.
    net, _, _ = make_network()
    with pytest.raises(ConfigurationError):
        net.set_partitions([[1, 2], [2, 3]])
    # The failed call must not leave a half-built partition behind.
    assert net.send(1, 3, Probe()) is True
    # Duplicates within one group are harmless.
    net.set_partitions([[1, 1, 2], [3]])
    assert net.send(1, 2, Probe()) is True
    assert net.send(1, 3, Probe()) is False


def test_failed_partition_keeps_previous_partition():
    net, _, _ = make_network()
    net.set_partitions([[1], [2]])
    with pytest.raises(ConfigurationError):
        net.set_partitions([[1, 2], [2]])
    assert net.send(1, 2, Probe()) is False  # old cut still in force


def test_unmentioned_nodes_form_implicit_group():
    net, sched, _ = make_network()
    inbox = []
    for node_id in (1, 2, 3):
        net.register(node_id, lambda msg, src: inbox.append(src))
    net.set_partitions([[1]])
    net.send(2, 3, Probe())  # both in the implicit group
    assert net.send(1, 3, Probe()) is False
    sched.run()
    assert inbox == [2]


def test_self_send_is_delivered():
    net, sched, _ = make_network()
    inbox = []
    net.register(1, lambda msg, src: inbox.append(src))
    net.send(1, 1, Probe())
    sched.run()
    assert inbox == [1]


def test_registered_ids():
    net, _, _ = make_network()
    net.register(5, lambda m, s: None)
    net.register(6, lambda m, s: None)
    assert sorted(net.registered_ids) == [5, 6]
    assert net.is_registered(5)
    net.unregister(5)
    assert not net.is_registered(5)


class TestDirectedBlocks:
    def test_block_is_directional(self):
        net, sched, metrics = make_network()
        inbox = []
        net.register(1, lambda msg, src: inbox.append(src))
        net.register(2, lambda msg, src: inbox.append(src))
        rule = net.block([1], [2])
        assert net.send(1, 2, Probe()) is False
        assert net.send(2, 1, Probe()) is True
        sched.run()
        assert inbox == [2]
        assert metrics.total("msg.dropped.partition") == 1
        net.unblock(rule)
        assert net.send(1, 2, Probe()) is True

    def test_unblock_is_idempotent(self):
        net, _, _ = make_network()
        rule = net.block([1], [2])
        net.unblock(rule)
        net.unblock(rule)
        assert net.send(1, 2, Probe()) is True

    def test_rules_compose_with_partition_groups(self):
        net, _, _ = make_network()
        net.set_partitions([[1], [2, 3]])
        net.block([2], [3])
        assert net.send(1, 2, Probe()) is False  # group cut
        assert net.send(2, 3, Probe()) is False  # directed rule
        assert net.send(3, 2, Probe()) is True  # other direction open

    def test_heal_partitions_clears_groups_and_blocks(self):
        net, sched, metrics = make_network()
        inbox = []
        for node_id in (1, 2):
            net.register(node_id, lambda msg, src: inbox.append(src))
        net.set_partitions([[1], [2]])
        net.block([2], [1])
        net.send(1, 2, Probe())
        net.send(2, 1, Probe())
        assert metrics.total("msg.dropped.partition") == 2
        net.heal_partitions()
        # Post-heal delivery: both directions flow again.
        net.send(1, 2, Probe())
        net.send(2, 1, Probe())
        sched.run()
        assert sorted(inbox) == [1, 2]
        assert metrics.total("msg.dropped.partition") == 2  # no new drops


class TestPerTypeDropAccounting:
    def test_partition_drops_are_counted_per_type(self):
        net, _, metrics = make_network()
        net.set_partitions([[1], [2]])
        net.send(1, 2, Probe())
        assert metrics.total("msg.dropped.partition.Probe") == 1
        assert metrics.total("msg.dropped.partition") == 1

    def test_loss_drops_are_counted_per_type(self):
        net, _, metrics = make_network(loss_rate=0.5)
        for _ in range(100):
            net.send(1, 2, Probe())
        dropped = metrics.total("msg.dropped.loss")
        assert dropped > 0
        assert metrics.total("msg.dropped.loss.Probe") == dropped


class TestLinkConditions:
    def test_node_loss_combines_with_global_loss(self):
        net, _, _ = make_network(loss_rate=0.1)
        net.set_node_conditions(2, loss=0.5)
        assert net._loss_for(1, 3) == pytest.approx(0.1)
        assert net._loss_for(1, 2) == pytest.approx(1 - 0.9 * 0.5)
        assert net._loss_for(2, 1) == pytest.approx(1 - 0.9 * 0.5)

    def test_link_loss_is_directional(self):
        net, _, _ = make_network()
        net.set_link_conditions(1, 2, loss=1.0)  # blackhole link allowed
        assert net._loss_for(1, 2) == 1.0
        assert net._loss_for(2, 1) == 0.0
        assert net.send(1, 2, Probe()) is False

    def test_extra_latency_sums_over_conditions(self):
        net, sched, _ = make_network(latency_model=FixedLatency(0.1))
        net.set_node_conditions(1, extra_latency=0.2)
        net.set_node_conditions(2, extra_latency=0.3)
        net.set_link_conditions(1, 2, extra_latency=0.4)
        arrivals = []
        net.register(2, lambda msg, src: arrivals.append(sched.now))
        net.send(1, 2, Probe())
        sched.run()
        assert arrivals == [pytest.approx(1.0)]

    def test_zero_conditions_clear_the_entry(self):
        net, _, _ = make_network()
        net.set_node_conditions(1, loss=0.5)
        net.set_node_conditions(1)
        assert net._loss_for(1, 2) == 0.0
        net.set_link_conditions(1, 2, loss=0.5)
        net.set_link_conditions(1, 2)
        assert net._loss_for(1, 2) == 0.0

    def test_clear_conditions_removes_everything(self):
        net, _, _ = make_network()
        net.set_node_conditions(1, loss=0.5, extra_latency=0.1)
        net.set_link_conditions(2, 3, loss=0.5)
        net.clear_conditions()
        assert net._loss_for(1, 2) == 0.0
        assert net._loss_for(2, 3) == 0.0
        assert net._extra_latency_for(1, 2) == 0.0

    def test_burst_loss_window(self):
        net, _, metrics = make_network()
        token = net.add_burst_loss(1.0)
        assert net.send(1, 2, Probe()) is False
        assert metrics.total("msg.dropped.loss") == 1
        net.remove_burst_loss(token)
        assert net.send(1, 2, Probe()) is True

    def test_overlapping_burst_windows_stack(self):
        net, _, _ = make_network()
        first = net.add_burst_loss(0.5)
        second = net.add_burst_loss(0.5)
        assert net._loss_for(1, 2) == pytest.approx(0.75)
        net.remove_burst_loss(first)
        # The second window survives the first one's heal.
        assert net._loss_for(1, 2) == pytest.approx(0.5)
        net.remove_burst_loss(second)
        assert net._loss_for(1, 2) == 0.0

    def test_condition_layers_compose_on_shared_victims(self):
        net, _, _ = make_network()
        first = net.add_conditions([1, 2], loss=0.5, extra_latency=0.1)
        second = net.add_conditions([2, 3], loss=0.5, extra_latency=0.2)
        assert net._loss_for(2, 9) == pytest.approx(0.75)  # both layers
        assert net._extra_latency_for(2, 9) == pytest.approx(0.3)
        net.remove_conditions(first)
        # Node 2 stays degraded by the still-open second layer.
        assert net._loss_for(2, 9) == pytest.approx(0.5)
        assert net._extra_latency_for(2, 9) == pytest.approx(0.2)
        net.remove_conditions(second)
        assert net._loss_for(2, 9) == 0.0

    def test_invalid_conditions_rejected(self):
        net, _, _ = make_network()
        with pytest.raises(ConfigurationError):
            net.set_node_conditions(1, loss=1.5)
        with pytest.raises(ConfigurationError):
            net.set_link_conditions(1, 2, extra_latency=-0.1)
        with pytest.raises(ConfigurationError):
            net.add_burst_loss(2.0)
        with pytest.raises(ConfigurationError):
            net.add_conditions([1], loss=-0.5)


class TestFastSlowPathEquivalence:
    """The fast path (no fault machinery) must be a pure optimisation:
    identical drop/latency decisions *and* identical RNG stream
    consumption to the slow path with only zero-impact layers active."""

    @staticmethod
    def _traffic(net, sched, n_nodes=6, n_msgs=400):
        """Drive a deterministic message pattern; returns the observable
        outcome: per-send verdicts, arrival (time, src, dst) triples, and
        the network RNG state afterwards."""
        arrivals = []
        for node_id in range(n_nodes):
            net.register(
                node_id,
                lambda msg, src, _dst=node_id: arrivals.append((sched.now, src, _dst)),
            )
        verdicts = []
        for i in range(n_msgs):
            src = i % n_nodes
            dst = (i * 7 + 3) % n_nodes
            verdicts.append(net.send(src, dst, Probe(str(i))))
        sched.run()
        return verdicts, arrivals, net.rng.getstate()

    @pytest.mark.parametrize("loss_rate", [0.0, 0.3])
    def test_zero_impact_layers_change_nothing(self, loss_rate):
        fast, fast_sched, fast_metrics = make_network(
            latency_model=UniformLatency(0.01, 0.05), loss_rate=loss_rate
        )
        slow, slow_sched, slow_metrics = make_network(
            latency_model=UniformLatency(0.01, 0.05), loss_rate=loss_rate
        )
        # Arm every kind of fault machinery at zero impact: the slow path
        # runs its partition/condition lookups but must decide identically.
        slow.add_conditions([0, 1, 2], loss=0.0, extra_latency=0.0)
        slow.add_burst_loss(0.0)
        slow.block([], [])
        slow.set_link_conditions(0, 1, loss=0.0, extra_latency=0.0)  # clears to empty
        assert fast._fault_free is True
        assert slow._fault_free is False

        fast_out = self._traffic(fast, fast_sched)
        slow_out = self._traffic(slow, slow_sched)
        assert fast_out[0] == slow_out[0]  # same per-send verdicts
        assert fast_out[1] == slow_out[1]  # same arrival times, exactly
        assert fast_out[2] == slow_out[2]  # same RNG stream consumption
        for name in ("msg.sent", "msg.received", "msg.dropped.loss"):
            assert fast_metrics.total(name) == slow_metrics.total(name)

    def test_fast_path_reengages_after_heal(self):
        net, _, _ = make_network()
        assert net._fault_free is True
        token = net.add_conditions([1], loss=0.5)
        net.set_partitions([[1], [2]])
        rule = net.block([1], [2])
        burst = net.add_burst_loss(0.2)
        net.set_node_conditions(3, loss=0.1)
        net.set_link_conditions(1, 2, extra_latency=0.5)
        assert net._fault_free is False
        net.remove_conditions(token)
        net.heal_partitions()
        net.unblock(rule)
        net.remove_burst_loss(burst)
        net.clear_conditions()
        assert net._fault_free is True

    def test_counters_match_pre_overhaul_semantics(self):
        # Interned keys and cached slots must land in the same counters
        # the f-string path used.
        net, sched, metrics = make_network()
        net.register(2, lambda msg, src: None)
        net.send(1, 2, Probe())
        net.send(1, 2, Probe())
        sched.run()
        assert metrics.get("msg.sent", node=1) == 2
        assert metrics.get("msg.received", node=2) == 2
        assert metrics.total("msg.sent.Probe") == 2
        assert metrics.total("msg.received.Probe") == 2


class TestLatencyModels:
    def test_fixed_constant(self):
        model = FixedLatency(0.1)
        rng = RngRegistry(0).stream("x")
        assert model.sample(rng, 1, 2) == 0.1

    def test_fixed_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-0.1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = RngRegistry(0).stream("x")
        for _ in range(100):
            assert 0.01 <= model.sample(rng, 1, 2) <= 0.05

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_positive_and_capped(self):
        model = LogNormalLatency(median=0.02, sigma=1.0, cap=0.5)
        rng = RngRegistry(0).stream("x")
        samples = [model.sample(rng, 1, 2) for _ in range(200)]
        assert all(0 < s <= 0.5 for s in samples)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median=0.0)

"""The runtime isolation checker: structural payload digests, the
copy-on-send guard (mutation-in-flight detection with full sender /
receiver / type / sim-time context), fan-out refcounting, restoration,
re-entrancy, and the trajectory-neutrality contract — a checked
scenario run is byte-identical to a plain one."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import IsolationError
from repro.lint import isolation_active, isolation_guard, payload_digest
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario, run_sweep
from repro.sim.node import Node
from repro.sim.simulator import Simulation

SMALL = dict(
    nodes=20,
    warmup=8.0,
    settle=6.0,
    cooldown=0.0,
    record_count=5,
    operation_count=8,
)


def small_spec(name: str = "baseline"):
    spec = load_bundled(name)
    overrides = dict(SMALL)
    if spec.stack == "core":
        overrides["num_slices"] = 3
    return spec.scaled(**overrides)


# ------------------------------------------------------------------ digest


@dataclass
class Record:
    key: str
    versions: list


class TestPayloadDigest:
    def test_equal_structure_equal_digest(self):
        assert payload_digest([1, "a", (2.5, None)]) == payload_digest(
            [1, "a", (2.5, None)]
        )

    def test_mutation_changes_digest(self):
        payload = [1, 2]
        before = payload_digest(payload)
        payload.append(3)
        assert payload_digest(payload) != before

    def test_dict_insertion_order_is_irrelevant(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_set_digest_ignores_iteration_order(self):
        # Mixed-type sets have no stable sort; digests sort by sub-digest.
        assert payload_digest({1, "one", (2,)}) == payload_digest(
            {(2,), 1, "one"}
        )

    def test_container_kinds_are_distinguished(self):
        assert payload_digest([1, 2]) != payload_digest((1, 2))
        assert payload_digest("12") != payload_digest(b"12")

    def test_dataclass_fields_feed_in_declaration_order(self):
        a = Record("k", [1])
        b = Record("k", [1])
        assert payload_digest(a) == payload_digest(b)
        b.versions.append(2)
        assert payload_digest(a) != payload_digest(b)

    def test_cycles_terminate(self):
        payload = [1]
        payload.append(payload)
        assert isinstance(payload_digest(payload), str)

    def test_nested_structures(self):
        deep = {"rows": [{"k": {1, 2}}, (Record("x", []),)]}
        same = {"rows": [{"k": {2, 1}}, (Record("x", []),)]}
        assert payload_digest(deep) == payload_digest(same)


# ---------------------------------------------------------- guard fixtures


@dataclass
class Evil:
    payload: list


class Mutator(Node):
    """Sends a message, keeps the reference, mutates it in flight."""

    def on_start(self) -> None:
        self.after(0.1, self._fire)

    def _fire(self) -> None:
        m = Evil([1, 2])
        self.send(1, m)
        # Delivery latency is 0.01s; this lands while the copy is on
        # the wire — exactly the bug the guard exists to catch.
        self.after(0.005, m.payload.append, 99)


class Polite(Node):
    """Sends and lets go — the ownership contract, followed."""

    def on_start(self) -> None:
        self.after(0.1, self._fire)

    def _fire(self) -> None:
        m = Evil([1, 2])
        self.send(1, m)


class FanOut(Node):
    """One immutable message object, many receivers (replication style)."""

    def on_start(self) -> None:
        self.after(0.1, self._fire)

    def _fire(self) -> None:
        m = Evil([1, 2])
        for dst in (1, 2, 3):
            self.send(dst, m)


class Sink(Node):
    pass


def _sim(sender, sinks: int) -> Simulation:
    sim = Simulation(seed=7)
    nodes = [sim.add_node(sender, 0)]
    for node_id in range(1, sinks + 1):
        nodes.append(sim.add_node(Sink, node_id))
    for node in nodes:
        node.start()
    return sim


# ------------------------------------------------------------------- guard


class TestIsolationGuard:
    def test_inactive_by_default(self):
        assert not isolation_active()

    def test_mutation_in_flight_raises_with_context(self):
        sim = _sim(Mutator, 1)
        with isolation_guard():
            with pytest.raises(IsolationError) as excinfo:
                sim.run_for(1.0)
        err = excinfo.value
        assert err.src == 0
        assert err.dst == 1
        assert err.kind == "Evil"
        assert err.sent_at == pytest.approx(0.1)
        assert err.now > err.sent_at
        message = str(err)
        assert "Evil" in message
        assert "node 0" in message and "node 1" in message
        assert "t=0.1" in message

    def test_unguarded_mutation_passes_silently(self):
        # The guard is opt-in: without it the buggy run completes (and
        # the receiver sees the mutated payload — the bug it would hide).
        sim = _sim(Mutator, 1)
        sim.run_for(1.0)

    def test_clean_sender_passes(self):
        sim = _sim(Polite, 1)
        with isolation_guard():
            sim.run_for(1.0)
        assert not isolation_active()

    def test_fan_out_of_one_object_passes(self):
        # Refcounted registry: the same unmutated object may be in
        # flight to several destinations at once.
        sim = _sim(FanOut, 3)
        with isolation_guard():
            sim.run_for(1.0)

    def test_send_to_dead_node_still_checked_then_released(self):
        sim = Simulation(seed=7)
        sender = sim.add_node(Polite, 0)
        sink = sim.add_node(Sink, 1)
        sender.start()
        sink.start()
        sink.stop()
        with isolation_guard():
            sim.run_for(1.0)

    def test_restores_on_exit(self):
        from repro.sim.network import Network

        before_send = Network.send
        before_deliver = Network._deliver
        with isolation_guard():
            assert Network.send is not before_send
        assert Network.send is before_send
        assert Network._deliver is before_deliver
        assert not isolation_active()

    def test_restores_after_exception(self):
        from repro.sim.network import Network

        before_send = Network.send
        with pytest.raises(RuntimeError):
            with isolation_guard():
                raise RuntimeError("boom")
        assert Network.send is before_send

    def test_reentrant(self):
        from repro.sim.network import Network

        before_send = Network.send
        with isolation_guard():
            with isolation_guard():
                assert isolation_active()
            # Inner exit must not disarm the outer guard.
            assert isolation_active()
            assert Network.send is not before_send
        assert not isolation_active()
        assert Network.send is before_send


# ---------------------------------------------------- trajectory neutrality


class TestTrajectoryNeutrality:
    def test_checked_run_is_byte_identical(self):
        spec = small_spec()
        plain = run_scenario(spec, seed=11)
        checked = run_scenario(spec, seed=11, isolation_check=True)
        assert checked.summary_json() == plain.summary_json()
        assert not isolation_active()

    def test_checked_fault_spec_is_byte_identical(self):
        spec = small_spec("asymmetric-partition")
        plain = run_scenario(spec, seed=3)
        checked = run_scenario(spec, seed=3, isolation_check=True)
        assert checked.summary_json() == plain.summary_json()

    def test_checked_sweep_is_byte_identical(self):
        spec = small_spec()
        plain = run_sweep(spec, seeds=[0, 1])
        checked = run_sweep(spec, seeds=[0, 1], isolation_check=True)
        assert checked.summary_json() == plain.summary_json()

    def test_stacks_with_sanitizer_and_checker(self):
        # scenarios run --sanitize --isolation-check: both guards armed.
        spec = small_spec("dht-crash-recover")
        result = run_scenario(spec, seed=5, sanitize=True, isolation_check=True)
        assert result.metrics["events_processed"] > 0

"""Tests for the flight recorder (:mod:`repro.obs`).

The load-bearing property throughout: observability must be *free* of
behavioural side effects. Core metrics with the recorder attached are
byte-identical to a run without it, and every artifact serialisation is
byte-identical across same-seed runs.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    FlightRecorder,
    HotspotProfiler,
    OpTracer,
    TimelineRecorder,
    load_manifest,
    sha256_file,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import (
    ObservabilitySpec,
    ScenarioSpec,
    WorkloadSpec,
    spec_from_dict,
)
from repro.sim.simulator import Simulation


class TestTimelineRecorder:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigurationError):
            TimelineRecorder(0.0)

    def test_windows_carry_counter_deltas(self):
        sim = Simulation(seed=1)
        recorder = TimelineRecorder(window=2.0)
        recorder.attach(sim)
        # 3 ticks in the first window, 1 in the second.
        for t in (0.5, 1.0, 1.5, 2.5):
            sim.scheduler.schedule(t, lambda: sim.metrics.inc("tick"))
        sim.run_for(4.0)
        recorder.stop(sim.now)
        assert [row["counters"].get("tick", 0.0) for row in recorder.rows] == [
            3.0,
            1.0,
        ]
        assert recorder.rows[0]["start"] == 0.0
        assert recorder.rows[0]["end"] == 2.0

    def test_stop_flushes_partial_window_and_is_idempotent(self):
        sim = Simulation(seed=1)
        recorder = TimelineRecorder(window=5.0)
        recorder.attach(sim)
        sim.scheduler.schedule(6.0, lambda: sim.metrics.inc("late"))
        sim.run_for(7.0)  # one full window + 2s of a partial one
        recorder.stop(sim.now)
        recorder.stop(sim.now)
        assert len(recorder.rows) == 2
        assert recorder.rows[1]["end"] == 7.0
        assert recorder.rows[1]["counters"]["late"] == 1.0

    def test_probe_events_are_counted(self):
        sim = Simulation(seed=1)
        recorder = TimelineRecorder(window=1.0)
        recorder.attach(sim)
        sim.run_for(3.5)
        recorder.stop(sim.now)
        assert recorder.probe_events == 3
        assert sim.scheduler.events_processed >= recorder.probe_events

    def test_damage_rows_aggregate_drop_causes_once(self):
        recorder = TimelineRecorder(window=1.0)
        recorder.rows = [
            {
                "start": 0.0,
                "end": 1.0,
                "counters": {
                    "msg.dropped.loss": 4.0,
                    # Per-type breakdown must not double-count.
                    "msg.dropped.loss.PutRequest": 4.0,
                    "msg.dropped.partition": 2.0,
                },
                "stale_reads": 1,
                "unavail_open": 2,
            }
        ]
        (row,) = recorder.damage_rows()
        assert row["drops"] == 6.0
        assert row["stale"] == 1.0
        assert row["unavail_open"] == 2.0


class TestOpTracer:
    def test_head_sampling_every_nth(self):
        tracer = OpTracer(sample_every=3, max_ops=100)
        ids = [tracer.sample_op("read", f"k{i}", 0, float(i)) for i in range(9)]
        sampled = [i for i in ids if i is not None]
        assert len(sampled) == 3
        assert tracer.total_ops == 9
        assert tracer.sampled_ops == 3

    def test_max_ops_caps_sampling(self):
        tracer = OpTracer(sample_every=1, max_ops=2)
        ids = [tracer.sample_op("read", "k", 0, 0.0) for _ in range(5)]
        assert sum(1 for i in ids if i is not None) == 2

    def test_span_events_balance(self):
        tracer = OpTracer(sample_every=1)
        trace = tracer.sample_op("update", "key", 7, 1.0)
        tracer.hop(trace, 7, 3, "PutRequest", 1.0, 1.01)
        tracer.drop(trace, 3, 5, "PutForward", "loss", 1.02)
        tracer.op_end(trace, True, 1.5)
        kinds = [e["ph"] for e in tracer._events]
        assert kinds.count("b") == kinds.count("e") == 1
        assert kinds.count("X") == 1 and kinds.count("i") == 1

    def test_activated_restores_previous_context(self):
        tracer = OpTracer(sample_every=1)
        assert tracer.active is None
        with tracer.activated(42):
            assert tracer.active == 42
            with tracer.activated(None):
                assert tracer.active is None
            assert tracer.active == 42
        assert tracer.active is None

    def test_chrome_export_is_valid_json_with_metadata(self):
        tracer = OpTracer(sample_every=1)
        trace = tracer.sample_op("read", "k", 2, 0.5)
        tracer.op_end(trace, True, 0.9)
        doc = json.loads(tracer.to_chrome_json())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "b" in phases and "e" in phases
        names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert "node-2" in names


class TestHotspotProfiler:
    def test_scheduler_hook_records_handlers(self):
        sim = Simulation(seed=1)
        profiler = HotspotProfiler()
        sim.scheduler.profiler = profiler

        def tick():
            sim.metrics.inc("tick")

        for t in (0.1, 0.2, 0.3):
            sim.scheduler.schedule(t, tick)
        sim.run_for(1.0)
        rows = profiler.rows()
        assert profiler.total_events == 3
        assert rows[0]["events"] == 3
        assert "tick" in rows[0]["handler"]
        assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-6

    def test_table_renders(self):
        profiler = HotspotProfiler()
        assert profiler.table() == "(no events profiled)"
        profiler.record(TestHotspotProfiler.test_table_renders, (), 0.001)
        assert "handler" in profiler.table()


class TestObservabilitySpec:
    def test_defaults_are_off(self):
        obs = ObservabilitySpec()
        assert not obs.enabled
        assert not obs.build().enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilitySpec(window=0.0)
        with pytest.raises(ConfigurationError):
            ObservabilitySpec(trace_sample=0)
        with pytest.raises(ConfigurationError):
            ObservabilitySpec(trace_max_ops=0)

    def test_default_block_is_omitted_from_dict(self):
        spec = ScenarioSpec(name="plain")
        assert "observability" not in spec.to_dict()
        assert spec_from_dict(spec.to_dict()) == spec

    def test_round_trip_with_block_set(self):
        spec = ScenarioSpec(
            name="observed",
            observability=ObservabilitySpec(
                timeline=True, window=2.5, trace=True, trace_sample=4
            ),
        )
        data = spec.to_dict()
        assert data["observability"]["timeline"] is True
        assert spec_from_dict(data) == spec

    def test_toml_round_trip(self):
        import tomllib

        from repro.search import scenario_to_toml

        spec = ScenarioSpec(
            name="observed",
            observability=ObservabilitySpec(timeline=True, profile=True),
        )
        recovered = spec_from_dict(tomllib.loads(scenario_to_toml(spec)))
        assert recovered == spec

    def test_scaled_copies_observability(self):
        spec = ScenarioSpec(
            name="observed", observability=ObservabilitySpec(timeline=True)
        )
        copy = spec.scaled(nodes=10)
        assert copy.observability == spec.observability
        assert copy.observability is not spec.observability

    def test_build_honours_pillars(self):
        recorder = ObservabilitySpec(timeline=True, trace=True).build()
        assert recorder.timeline is not None
        assert recorder.tracer is not None
        assert recorder.profiler is None


def _small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="obs-mini",
        stack="core",
        nodes=15,
        num_slices=3,
        seed=5,
        warmup=8.0,
        settle=5.0,
        workload=WorkloadSpec(record_count=5, operation_count=20),
        metrics=("workload", "consistency"),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _full_recorder() -> FlightRecorder:
    return FlightRecorder(
        timeline=True, window=5.0, trace=True, trace_sample=3, profile=True
    )


class TestRecorderNeutrality:
    """The acceptance property: obs-on == obs-off, byte for byte."""

    def test_closed_loop_metrics_identical(self):
        spec = _small_spec()
        plain = run_scenario(spec)
        recorder = _full_recorder()
        observed = run_scenario(spec, recorder=recorder)
        assert observed.summary_json() == plain.summary_json()
        assert recorder.timeline.rows
        assert recorder.tracer.sampled_ops > 0

    def test_open_loop_metrics_identical(self):
        spec = _small_spec(
            name="obs-open",
            workload=WorkloadSpec(
                record_count=5,
                operation_count=25,
                mode="open",
                clients=2,
                rate=4.0,
            ),
        )
        plain = run_scenario(spec)
        recorder = _full_recorder()
        observed = run_scenario(spec, recorder=recorder)
        assert observed.summary_json() == plain.summary_json()
        assert recorder.tracer.sampled_ops > 0

    def test_same_seed_artifacts_byte_identical(self):
        spec = _small_spec()
        first = _full_recorder()
        run_scenario(spec, recorder=first)
        second = _full_recorder()
        run_scenario(spec, recorder=second)
        assert first.timeline.to_json() == second.timeline.to_json()
        assert first.tracer.to_chrome_json() == second.tracer.to_chrome_json()

    def test_phases_and_profile_recorded(self):
        recorder = _full_recorder()
        run_scenario(_small_spec(), recorder=recorder)
        phases = recorder.phase_wall()
        for name in ("deploy", "converge", "load", "settle", "transactions"):
            assert name in phases
        assert recorder.total_wall > 0
        labels = {row["handler"] for row in recorder.profiler.rows()}
        assert any(label.startswith("Network._deliver[") for label in labels)

    def test_trace_spans_balance_in_real_run(self):
        recorder = _full_recorder()
        run_scenario(_small_spec(), recorder=recorder)
        events = recorder.tracer._events
        begins = sum(1 for e in events if e["ph"] == "b")
        ends = sum(1 for e in events if e["ph"] == "e")
        assert begins == ends == recorder.tracer.sampled_ops


class TestManifest:
    def test_write_artifacts_hashes_match_files(self, tmp_path):
        spec = _small_spec()
        recorder = _full_recorder()
        result = run_scenario(spec, recorder=recorder)
        path = recorder.write_artifacts(str(tmp_path), spec, result)
        manifest = load_manifest(path)
        assert manifest["scenario"] == "obs-mini"
        assert manifest["seed"] == 5
        names = {entry["name"] for entry in manifest["artifacts"]}
        assert names == {
            "timeline.json",
            "trace.json",
            "hotspots.json",
            "metrics.json",
        }
        for entry in manifest["artifacts"]:
            target = os.path.join(str(tmp_path), entry["name"])
            assert sha256_file(target) == entry["sha256"]
            assert os.path.getsize(target) == entry["bytes"]

    def test_load_manifest_accepts_directory(self, tmp_path):
        spec = _small_spec()
        recorder = FlightRecorder(timeline=True)
        result = run_scenario(spec, recorder=recorder)
        recorder.write_artifacts(str(tmp_path), spec, result)
        manifest = load_manifest(str(tmp_path))
        assert manifest["observability"]["timeline"] is True
        assert manifest["observability"]["trace"] is False


class TestHuntTimeline:
    def test_timeline_window_attaches_damage_rows(self):
        from repro.search import HuntConfig, run_hunt

        config = HuntConfig(
            search_seed=1,
            budget=1,
            nodes=12,
            records=4,
            operations=10,
            timeline_window=5.0,
        )
        result = run_hunt(config)
        (candidate,) = result.candidates
        assert candidate.score.timeline is not None
        assert all("drops" in row for row in candidate.score.timeline)
        assert "timeline" in json.loads(result.log_json())["candidates"][0]

    def test_default_hunt_log_has_no_timeline_key(self):
        from repro.search import HuntConfig, run_hunt

        config = HuntConfig(
            search_seed=1, budget=1, nodes=12, records=4, operations=10
        )
        result = run_hunt(config)
        assert "timeline" not in json.loads(result.log_json())["candidates"][0]

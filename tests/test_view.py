"""Unit and property tests for partial views."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pss.view import NodeDescriptor, PartialView

descriptor_st = st.builds(
    NodeDescriptor,
    node_id=st.integers(min_value=0, max_value=40),
    age=st.integers(min_value=0, max_value=20),
)


class TestNodeDescriptor:
    def test_aged_copy(self):
        d = NodeDescriptor(1, age=2)
        assert d.aged().age == 3
        assert d.age == 2  # immutable

    def test_fresh_copy(self):
        assert NodeDescriptor(1, age=9).fresh().age == 0

    def test_equality_and_hash(self):
        assert NodeDescriptor(1, 0) == NodeDescriptor(1, 0)
        assert len({NodeDescriptor(1, 0), NodeDescriptor(1, 0)}) == 1


class TestPartialView:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            PartialView(0)

    def test_add_and_contains(self):
        view = PartialView(4)
        view.add(NodeDescriptor(7))
        assert 7 in view
        assert len(view) == 1

    def test_add_keeps_youngest_duplicate(self):
        view = PartialView(4)
        view.add(NodeDescriptor(1, age=5))
        view.add(NodeDescriptor(1, age=2))
        assert view.get(1).age == 2
        view.add(NodeDescriptor(1, age=9))
        assert view.get(1).age == 2

    def test_overflow_evicts_oldest(self):
        view = PartialView(2)
        view.add(NodeDescriptor(1, age=5))
        view.add(NodeDescriptor(2, age=1))
        view.add(NodeDescriptor(3, age=0))
        assert len(view) == 2
        assert 1 not in view

    def test_oldest_tie_breaks_by_id(self):
        view = PartialView(3)
        view.add(NodeDescriptor(2, age=4))
        view.add(NodeDescriptor(9, age=4))
        assert view.oldest().node_id == 9

    def test_remove(self):
        view = PartialView(2)
        view.add(NodeDescriptor(1))
        assert view.remove(1) is True
        assert view.remove(1) is False

    def test_increase_ages(self):
        view = PartialView(3)
        view.add(NodeDescriptor(1, age=0))
        view.add(NodeDescriptor(2, age=3))
        view.increase_ages()
        assert view.get(1).age == 1
        assert view.get(2).age == 4

    def test_random_id_none_when_empty(self):
        assert PartialView(2).random_id(random.Random(0)) is None

    def test_sample_ids_distinct(self):
        view = PartialView(10)
        for i in range(10):
            view.add(NodeDescriptor(i))
        sample = view.sample_ids(random.Random(1), 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_more_than_available_returns_all(self):
        view = PartialView(10)
        for i in range(3):
            view.add(NodeDescriptor(i))
        assert sorted(view.sample_ids(random.Random(1), 99)) == [0, 1, 2]

    def test_merge_skips_self(self):
        view = PartialView(4)
        view.merge([NodeDescriptor(5, 0)], self_id=5)
        assert len(view) == 0

    def test_merge_prefers_younger_entry(self):
        view = PartialView(4)
        view.add(NodeDescriptor(1, age=7))
        view.merge([NodeDescriptor(1, age=1)], self_id=99)
        assert view.get(1).age == 1

    def test_merge_evicts_sent_entries_first(self):
        view = PartialView(2)
        view.add(NodeDescriptor(1, age=0))
        view.add(NodeDescriptor(2, age=9))
        sent = [NodeDescriptor(1, age=0)]
        view.merge([NodeDescriptor(3, age=0)], self_id=99, sent=sent)
        # Node 1 was offered away, so it is evicted before old node 2.
        assert 1 not in view
        assert 2 in view and 3 in view

    @given(st.lists(descriptor_st, max_size=60), st.integers(min_value=1, max_value=8))
    def test_never_exceeds_capacity(self, descriptors, capacity):
        view = PartialView(capacity)
        for d in descriptors:
            view.add(d)
        assert len(view) <= capacity

    @given(st.lists(descriptor_st, max_size=60), st.integers(min_value=1, max_value=8))
    def test_at_most_one_entry_per_id(self, descriptors, capacity):
        view = PartialView(capacity)
        for d in descriptors:
            view.add(d)
        ids = view.ids()
        assert len(ids) == len(set(ids))

    @given(
        st.lists(descriptor_st, max_size=30),
        st.lists(descriptor_st, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    def test_merge_never_exceeds_capacity_nor_contains_self(self, initial, received, capacity):
        view = PartialView(capacity)
        for d in initial:
            view.add(d)
        view.merge(received, self_id=3)
        assert len(view) <= capacity
        assert 3 not in view or any(d.node_id == 3 for d in initial)

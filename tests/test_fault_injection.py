"""Fault-injection tests: message loss and network partitions.

Epidemic protocols' redundancy is supposed to absorb lossy links, and a
healed partition must reconcile via anti-entropy — both claims are
exercised here end to end.
"""

from repro.core.cluster import DataFlasksCluster
from repro.sim.simulator import Simulation

from tests.conftest import small_config


def build_lossy_cluster(loss_rate: float, n: int = 40, seed: int = 55):
    sim = Simulation(seed=seed, loss_rate=loss_rate)
    cluster = DataFlasksCluster(n=n, config=small_config(), sim=sim)
    cluster.warm_up(15)
    assert cluster.wait_for_slices(timeout=150)
    return cluster


class TestMessageLoss:
    def test_operations_succeed_at_five_percent_loss(self):
        cluster = build_lossy_cluster(0.05)
        client = cluster.new_client(timeout=4.0, retries=3)
        ok = 0
        for i in range(10):
            op = client.put(f"lossy:{i}", b"v", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        assert ok == 10

    def test_reads_succeed_at_ten_percent_loss(self):
        cluster = build_lossy_cluster(0.10, seed=56)
        client = cluster.new_client(timeout=4.0, retries=3)
        for i in range(5):
            op = client.put(f"lossy:{i}", b"v", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        cluster.sim.run_for(20)
        ok = 0
        for i in range(5):
            op = client.get(f"lossy:{i}")
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        assert ok >= 4

    def test_loss_is_counted(self):
        cluster = build_lossy_cluster(0.05, seed=57)
        assert cluster.sim.metrics.total("msg.dropped.loss") > 0


class TestPartition:
    def test_majority_side_keeps_serving(self):
        cluster = build_lossy_cluster(0.0, n=40, seed=58)
        client = cluster.new_client(timeout=4.0, retries=3)
        # Replicate a key set before the split.
        for i in range(5):
            op = client.put(f"split:{i}", b"v", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        cluster.sim.run_for(20)

        servers = [s.id for s in cluster.alive_servers()]
        minority = servers[: len(servers) // 4]
        majority = [i for i in servers if i not in minority] + [client.id]
        cluster.sim.network.set_partitions([minority, majority])

        ok = 0
        for i in range(5):
            op = client.get(f"split:{i}")
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        # Slice-wide replication: at least most keys still have a replica
        # on the majority side.
        assert ok >= 4
        cluster.sim.network.heal_partitions()

    def test_heal_reconciles_partitioned_writes(self):
        cluster = build_lossy_cluster(0.0, n=40, seed=59)
        client = cluster.new_client(timeout=4.0, retries=4)
        servers = [s.id for s in cluster.alive_servers()]
        minority = servers[: len(servers) // 4]
        majority = [i for i in servers if i not in minority] + [client.id]
        cluster.sim.network.set_partitions([minority, majority])

        op = client.put("healed:key", b"written-during-split", 1)
        cluster.sim.run_until_condition(lambda: op.done, timeout=90)
        assert op.succeeded  # majority side accepted the write
        level_during = cluster.replication_level("healed:key")

        cluster.sim.network.heal_partitions()
        cluster.sim.run_for(60)  # anti-entropy crosses the healed boundary
        level_after = cluster.replication_level("healed:key")
        assert level_after >= level_during
        result = client.get("healed:key")
        cluster.sim.run_until_condition(lambda: result.done, timeout=60)
        assert result.succeeded
        assert result.value == b"written-during-split"

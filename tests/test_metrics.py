"""Unit tests for metrics collection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import (
    AvailabilityTracker,
    Histogram,
    MetricsRegistry,
    mean,
    percentile,
    stdev,
)


class TestScalarHelpers:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_values(self):
        assert mean([1, 2, 3]) == 2.0

    def test_stdev_short(self):
        assert stdev([]) == 0.0
        assert stdev([5.0]) == 0.0

    def test_stdev_known(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_percentile_single(self):
        assert percentile([42.0], 99) == 42.0

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


class TestHistogram:
    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_summary_fields(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_len(self):
        hist = Histogram()
        hist.observe(1.0)
        assert len(hist) == 1


class TestMetricsRegistry:
    def test_counter_default_zero(self):
        assert MetricsRegistry().get("nope") == 0.0

    def test_inc_and_get(self):
        reg = MetricsRegistry()
        reg.inc("msgs", node=1)
        reg.inc("msgs", node=1, by=2)
        assert reg.get("msgs", node=1) == 3.0

    def test_global_slot_is_separate(self):
        reg = MetricsRegistry()
        reg.inc("msgs")
        reg.inc("msgs", node=1)
        assert reg.get("msgs") == 1.0
        assert reg.get("msgs", node=1) == 1.0
        assert reg.total("msgs") == 2.0

    def test_per_node_excludes_global(self):
        reg = MetricsRegistry()
        reg.inc("msgs")
        reg.inc("msgs", node=3, by=5)
        assert reg.per_node("msgs") == {3: 5.0}

    def test_mean_per_node_without_population(self):
        reg = MetricsRegistry()
        reg.inc("msgs", node=1, by=10)
        reg.inc("msgs", node=2, by=20)
        assert reg.mean_per_node("msgs") == 15.0

    def test_mean_per_node_with_population_counts_zeros(self):
        # The paper's "average per node" includes idle nodes.
        reg = MetricsRegistry()
        reg.inc("msgs", node=1, by=10)
        assert reg.mean_per_node("msgs", population=[1, 2, 3, 4]) == 2.5

    def test_mean_per_node_empty_population(self):
        assert MetricsRegistry().mean_per_node("msgs", population=[]) == 0.0

    def test_message_load_shape(self):
        reg = MetricsRegistry()
        reg.inc("msg.sent", node=0, by=4)
        reg.inc("msg.received", node=0, by=6)
        load = reg.message_load(population=[0])
        assert load == {"sent": 4.0, "received": 6.0, "handled": 10.0}

    def test_histogram_is_memoised(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat") is reg.histogram("lat")

    def test_observe_routes_to_histogram(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        assert reg.histogram("lat").mean() == 0.5

    def test_counter_names_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        assert reg.counter_names() == ["a", "b"]

    def test_snapshot_totals(self):
        reg = MetricsRegistry()
        reg.inc("x", node=1)
        reg.inc("x", node=2)
        assert reg.snapshot() == {"x": 2.0}

    def test_counter_accessor_returns_live_slots(self):
        reg = MetricsRegistry()
        slots = reg.counter("hot")
        slots[7] = slots.get(7, 0.0) + 2.0
        assert reg.get("hot", node=7) == 2.0
        assert reg.counter("hot") is slots

    def test_never_incremented_counters_stay_invisible(self):
        # Hot paths pre-create inner dicts via counter(); until something
        # is actually recorded the name must not leak into the reporting
        # surface (no phantom zero counters in snapshot/counter_names).
        reg = MetricsRegistry()
        reg.counter("pre.created")
        assert reg.counter_names() == []
        assert reg.snapshot() == {}
        reg.inc("pre.created")
        assert reg.counter_names() == ["pre.created"]


class TestAvailabilityBoundaries:
    """Regressions for the open-window boundary ties in
    :meth:`AvailabilityTracker.summary`."""

    def test_window_open_at_now_counts_zero_duration(self):
        # The last probe fails at the same instant the summary is taken:
        # the window exists (count and key are visible) but contributes
        # zero seconds, never a negative duration.
        tracker = AvailabilityTracker()
        tracker.record("k", 10.0, ok=False)
        summary = tracker.summary(now=10.0)
        assert summary["windows"] == 1.0
        assert summary["keys"] == 1.0
        assert summary["total"] == 0.0
        assert summary["max"] == 0.0

    def test_now_before_open_start_is_clamped(self):
        tracker = AvailabilityTracker()
        tracker.record("k", 10.0, ok=False)
        summary = tracker.summary(now=7.0)
        assert summary["windows"] == 1.0
        assert summary["total"] == 0.0  # clamped, not -3.0

    def test_fail_then_ok_same_instant_closes_zero_window(self):
        tracker = AvailabilityTracker()
        tracker.record("k", 5.0, ok=False)
        tracker.record("k", 5.0, ok=True)
        assert tracker.closed_windows == [("k", 5.0, 5.0)]
        summary = tracker.summary(now=30.0)
        assert summary["windows"] == 1.0
        assert summary["total"] == 0.0

    def test_summary_does_not_mutate_state(self):
        tracker = AvailabilityTracker()
        tracker.record("a", 1.0, ok=False)
        tracker.record("b", 2.0, ok=False)
        tracker.record("a", 4.0, ok=True)
        first = tracker.summary(now=6.0)
        assert tracker.summary(now=6.0) == first
        assert tracker.open_count == 1
        assert tracker.closed_count == 1
        # A later `now` extends only the still-open window.
        later = tracker.summary(now=8.0)
        assert later["windows"] == first["windows"]
        assert later["total"] == pytest.approx(first["total"] + 2.0)

    def test_mixed_open_and_closed_durations(self):
        tracker = AvailabilityTracker()
        tracker.record("a", 0.0, ok=False)
        tracker.record("a", 3.0, ok=True)   # closed: 3s
        tracker.record("b", 4.0, ok=False)  # open at summary time
        summary = tracker.summary(now=10.0)
        assert summary["windows"] == 2.0
        assert summary["total"] == pytest.approx(9.0)
        assert summary["max"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(4.5)

    def test_repeated_failures_keep_original_start(self):
        tracker = AvailabilityTracker()
        tracker.record("k", 2.0, ok=False)
        tracker.record("k", 5.0, ok=False)
        tracker.record("k", 9.0, ok=True)
        assert tracker.closed_windows == [("k", 2.0, 9.0)]

"""Tests for the consistency/health reporting tools."""

from repro.analysis.health import check_cluster, missing_objects

from tests.conftest import build_cluster


def loaded(n=30, seed=91, keys=6):
    cluster = build_cluster(n=n, seed=seed)
    client = cluster.new_client()
    key_list = [f"health:{i}" for i in range(keys)]
    for key in key_list:
        cluster.put_sync(client, key, b"v", 1)
    cluster.sim.run_for(20)
    return cluster, key_list


def test_healthy_cluster_report():
    cluster, keys = loaded()
    report = check_cluster(cluster)
    assert report.total_objects == len(keys)
    assert report.mean_replication() >= 2
    assert not report.empty_slices
    assert report.healthy
    assert "objects: 6" in report.summary()


def test_under_replication_detected():
    cluster, keys = loaded(seed=92)
    target = keys[0]
    holders = [s for s in cluster.alive_servers() if s.holds(target)]
    for victim in holders[:-1]:
        victim.crash()
    report = check_cluster(cluster, min_replicas=2)
    assert (target, 1) in report.under_replicated
    assert not report.healthy


def test_missing_objects_detected():
    cluster, keys = loaded(seed=93)
    target = keys[0]
    for server in cluster.alive_servers():
        server.store.delete(target)
    expected = [(k, 1) for k in keys]
    assert missing_objects(cluster, expected) == [(target, 1)]


def test_misplaced_copies_counted():
    cluster, keys = loaded(seed=94)
    target = keys[0]
    holder = next(s for s in cluster.alive_servers() if s.holds(target))
    wrong = (cluster.target_slice(target) + 1) % cluster.config.num_slices
    holder.slicing._set_slice(wrong)
    report = check_cluster(cluster)
    assert report.misplaced_copies >= 1


def test_empty_slice_detected():
    cluster, keys = loaded(seed=95)
    victims = [
        s for s in cluster.alive_servers() if s.my_slice() == 0
    ]
    for victim in victims:
        victim.crash()
    report = check_cluster(cluster)
    assert 0 in report.empty_slices

"""The determinism linter: rule fixtures, suppressions, allowlist,
baseline round-trips, the JSON report, and the tree-level contract that
``repro lint src`` is clean against the committed policy.

The isolation families (I1xx–I4xx) are covered here too: per-rule
positive/negative fixtures, the ``--select``/``--ignore-family``
filters, and mixed-report exit codes with I-rules present."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tomllib

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    AllowEntry,
    BaselineEntry,
    CATALOG,
    FAMILIES,
    LintConfig,
    apply_baseline,
    baseline_from_violations,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    render_policy_toml,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Fixture paths: one inside the sim-path set (D3xx rules armed), one
# outside it (order hazards exempt by policy).
SIM = "repro/sim/fixture.py"
OFF = "repro/analysis/fixture.py"


def rules_of(result):
    return [v.rule for v in result.violations]


def lint(source, path=SIM, config=None):
    return lint_source(source, path=path, config=config)


# --------------------------------------------------------------- catalogue


class TestCatalog:
    def test_every_rule_belongs_to_a_family(self):
        for rule_id, rule in CATALOG.items():
            assert rule_id[:2] in FAMILIES, rule_id
            assert rule.advice and rule.title

    def test_fixture_paths_classify_as_intended(self):
        config = LintConfig()
        assert config.is_simpath(SIM)
        assert not config.is_simpath(OFF)


# ------------------------------------------------------- D1xx: randomness


class TestAmbientRandomness:
    def test_module_level_random_call(self):
        result = lint("import random\nx = random.random()\n")
        assert "D101" in rules_of(result)

    def test_module_level_shuffle(self):
        result = lint("import random\nrandom.shuffle(items)\n")
        assert "D101" in rules_of(result)

    def test_seeded_instance_is_clean(self):
        result = lint("import random\nrng = random.Random(7)\nx = rng.random()\n")
        assert rules_of(result) == []

    def test_unseeded_random_instance(self):
        result = lint("import random\nrng = random.Random()\n")
        assert rules_of(result) == ["D102"]

    def test_system_random(self):
        result = lint("import random\nrng = random.SystemRandom()\n")
        assert "D103" in rules_of(result)

    def test_secrets_and_urandom(self):
        assert "D103" in rules_of(lint("import secrets\nt = secrets.token_bytes(8)\n"))
        assert "D103" in rules_of(lint("import os\nb = os.urandom(16)\n"))
        assert "D103" in rules_of(lint("from os import urandom\n"))

    def test_uuid_entropy(self):
        assert "D103" in rules_of(lint("import uuid\nu = uuid.uuid4()\n"))
        assert "D103" in rules_of(lint("from uuid import uuid4\n"))

    def test_from_import_of_ambient_function(self):
        result = lint("from random import randint\n")
        assert "D104" in rules_of(result)

    def test_import_alias_is_tracked(self):
        result = lint("import random as rnd\nx = rnd.random()\n")
        assert "D101" in rules_of(result)


# ------------------------------------------------------- D2xx: wall clock


class TestWallClock:
    def test_time_time(self):
        result = lint("import time\nt = time.time()\n")
        assert "D201" in rules_of(result)

    def test_perf_counter(self):
        result = lint("import time\nt = time.perf_counter()\n")
        assert "D202" in rules_of(result)

    def test_datetime_now(self):
        result = lint("from datetime import datetime\nd = datetime.now()\n")
        assert "D203" in rules_of(result)

    def test_datetime_module_attribute(self):
        result = lint("import datetime\nd = datetime.datetime.utcnow()\n")
        assert "D203" in rules_of(result)

    def test_from_import_flags_import_and_call(self):
        result = lint("from time import perf_counter\nt = perf_counter()\n")
        assert rules_of(result) == ["D204", "D202"] or sorted(
            rules_of(result)
        ) == ["D202", "D204"]

    def test_aliased_from_import_call(self):
        result = lint("from time import time as now\nt = now()\n")
        rules = rules_of(result)
        assert "D204" in rules and "D201" in rules

    def test_wall_clock_flagged_off_simpath_too(self):
        # D2xx is policy everywhere: legitimate provenance sites live in
        # the committed baseline, not in a path carve-out.
        result = lint("import time\nt = time.time()\n", path=OFF)
        assert "D201" in rules_of(result)


# ---------------------------------------------------- D3xx: order hazards


class TestOrderHazards:
    def test_for_over_set_literal(self):
        result = lint("s = {1, 2, 3}\nfor x in s:\n    pass\n")
        assert "D301" in rules_of(result)

    def test_sorted_set_is_clean(self):
        result = lint("s = {1, 2, 3}\nfor x in sorted(s):\n    pass\n")
        assert rules_of(result) == []

    def test_list_of_configured_set_returning_helper(self):
        result = lint("out = list(digest())\n")
        assert "D301" in rules_of(result)

    def test_frozenset_of_digest_is_clean(self):
        # The anti-entropy idiom: set-to-set flows never leak hash order.
        result = lint("owned = frozenset(k for k in digest())\n")
        assert rules_of(result) == []

    def test_len_min_max_are_neutral(self):
        result = lint("s = {1, 2}\nn = len(s)\nm = max(s)\n")
        assert rules_of(result) == []

    def test_comprehension_over_set(self):
        result = lint("s = {1, 2}\nout = [x for x in s]\n")
        assert "D301" in rules_of(result)

    def test_set_comprehension_is_neutral(self):
        result = lint("s = {1, 2}\nout = {x + 1 for x in s}\n")
        assert rules_of(result) == []

    def test_set_union_tracks_through_binop(self):
        result = lint("a = {1}\nb = {2}\nfor x in a | b:\n    pass\n")
        assert "D301" in rules_of(result)

    def test_annotated_set_argument(self):
        source = (
            "from typing import Set\n"
            "def f(keys: Set[str]):\n"
            "    return list(keys)\n"
        )
        result = lint(source)
        assert "D301" in rules_of(result)

    def test_order_rules_gated_to_simpath(self):
        result = lint("s = {1, 2}\nfor x in s:\n    pass\n", path=OFF)
        assert rules_of(result) == []

    def test_os_listdir_without_sorted(self):
        result = lint("import os\nnames = os.listdir(p)\n")
        assert "D302" in rules_of(result)

    def test_sorted_listdir_is_clean(self):
        result = lint("import os\nnames = sorted(os.listdir(p))\n")
        assert rules_of(result) == []

    def test_glob_module(self):
        result = lint("import glob\nfiles = glob.glob(pat)\n")
        assert "D302" in rules_of(result)

    def test_id_and_hash_on_simpath(self):
        assert "D303" in rules_of(lint("k = id(obj)\n"))
        assert "D304" in rules_of(lint("h = hash(name)\n"))

    def test_id_and_hash_off_simpath_are_clean(self):
        assert rules_of(lint("k = id(obj)\n", path=OFF)) == []
        assert rules_of(lint("h = hash(name)\n", path=OFF)) == []


# -------------------------------------------------- D4xx: export hygiene


class TestExportHygiene:
    def test_all_entry_that_never_binds(self):
        result = lint('__all__ = ["missing"]\n')
        assert "D401" in rules_of(result)

    def test_duplicate_all_entry(self):
        result = lint('__all__ = ["f", "f"]\ndef f():\n    pass\n')
        assert "D402" in rules_of(result)

    def test_public_surface_without_all(self):
        result = lint("def api():\n    pass\n")
        assert "D403" in rules_of(result)

    def test_private_only_module_needs_no_all(self):
        result = lint("def _helper():\n    pass\n")
        assert rules_of(result) == []

    def test_conftest_is_exempt(self):
        result = lint(
            "def fixture_like():\n    pass\n", path="repro/sim/conftest.py"
        )
        assert rules_of(result) == []

    def test_complete_all_is_clean(self):
        source = '__all__ = ["api"]\n\ndef api():\n    pass\n'
        assert rules_of(lint(source)) == []


# ------------------------------------------- I1xx: cross-node reach-through


class TestReachThrough:
    def test_loop_over_servers_reaching_into_store(self):
        source = (
            "def replication(self, key):\n"
            "    for s in self.servers:\n"
            "        if s.store.get(key):\n"
            "            pass\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_genexp_over_servers_reaching_into_store(self):
        # The shape the dht facade used to have before ChordNode.holds().
        source = (
            "def level(self, key):\n"
            "    return sum(1 for s in self.servers if s.store.get(key))\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_facade_method_is_clean(self):
        source = (
            "def _level(self, key):\n"
            "    return sum(1 for s in self.servers if s.holds(key))\n"
        )
        assert rules_of(lint(source)) == []

    def test_own_state_is_clean(self):
        source = (
            "def _digest_size(self):\n"
            "    return len(self.store)\n"
        )
        assert rules_of(lint(source)) == []

    def test_subscript_into_collection(self):
        source = (
            "def peek(self):\n"
            "    return self.servers[0].store\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_node_returning_helper_is_tracked(self):
        source = (
            "def views(self):\n"
            "    return [s.view for s in self.alive_servers()]\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_assigned_collection_is_tracked(self):
        source = (
            "def peek(self):\n"
            "    nodes = self.servers\n"
            "    return nodes[2].scheduler\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_filtered_comprehension_stays_a_collection(self):
        source = (
            "def peek(self):\n"
            "    alive = [s for s in self.servers if s.alive]\n"
            "    return alive[0].store\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_reach_through_off_simpath_is_clean(self):
        source = (
            "def _audit(self, key):\n"
            "    return [s.store.get(key) for s in self.servers]\n"
        )
        assert rules_of(lint(source, path=OFF)) == []


# ------------------------------------------------ I2xx: payload aliasing


class TestPayloadAliasing:
    def test_mutable_local_mutated_after_send(self):
        source = (
            "def push(self, batch_size):\n"
            "    batch = []\n"
            "    self.node.send(7, Msg(batch))\n"
            "    batch.append(1)\n"
        )
        result = lint(source)
        assert "I201" in rules_of(result)

    def test_snapshot_at_send_is_clean(self):
        source = (
            "def _push(self, batch_size):\n"
            "    batch = []\n"
            "    self.node.send(7, Msg(tuple(batch)))\n"
            "    batch.append(1)\n"
        )
        assert rules_of(lint(source)) == []

    def test_mutation_before_send_is_clean(self):
        source = (
            "def _push(self):\n"
            "    batch = []\n"
            "    batch.append(1)\n"
            "    self.node.send(7, Msg(batch))\n"
        )
        assert rules_of(lint(source)) == []

    def test_mutable_default_payload(self):
        assert "I202" in rules_of(lint("def _f(self, payload=[]):\n    pass\n"))
        assert "I202" in rules_of(lint("def _f(self, opts={}):\n    pass\n"))

    def test_none_default_is_clean(self):
        assert rules_of(lint("def _f(self, payload=None):\n    pass\n")) == []

    def test_mutable_default_off_simpath_is_clean(self):
        assert rules_of(lint("def _f(x=[]):\n    pass\n", path=OFF)) == []

    def test_resend_of_received_message(self):
        source = (
            "def _on_ping(self, msg, src):\n"
            "    self.send(src, msg)\n"
        )
        assert "I203" in rules_of(lint(source))

    def test_rebuilt_reply_is_clean(self):
        source = (
            "def _on_ping(self, msg, src):\n"
            "    self.send(src, Pong(msg.seq))\n"
        )
        assert rules_of(lint(source)) == []

    def test_received_payload_aliased_into_outbound(self):
        # The gossip-relay shape — baselined in the committed policy.
        source = (
            "def _forward(self, msg):\n"
            "    self.node.send(1, Relay(msg.payload, msg.ttl - 1))\n"
        )
        assert "I204" in rules_of(lint(source))

    def test_snapshotted_payload_is_clean(self):
        source = (
            "def _forward(self, msg):\n"
            "    self.node.send(1, Relay(tuple(msg.payload), msg.ttl - 1))\n"
        )
        assert rules_of(lint(source)) == []


# ------------------------------------------ I3xx: mutation after forward


class TestMutationAfterForward:
    def test_mutation_after_forward(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    self.send(3, Fwd(msg.key, tuple(msg.payload)))\n"
            "    msg.hops = msg.hops + 1\n"
        )
        assert "I301" in rules_of(lint(source))

    def test_mutation_without_forward_is_i302(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    msg.payload.append(1)\n"
        )
        result = lint(source)
        assert "I302" in rules_of(result)
        assert "I301" not in rules_of(result)

    def test_read_only_handler_is_clean(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    self.store.put(msg.key, msg.version, msg.value)\n"
        )
        assert rules_of(lint(source)) == []

    def test_non_handler_param_not_treated_as_message(self):
        source = (
            "def _helper(self, entry, src):\n"
            "    entry.payload.append(1)\n"
        )
        assert rules_of(lint(source)) == []


# -------------------------------------------- I4xx: callback capture


class TestCallbackCapture:
    def test_lambda_captures_loop_variable(self):
        source = (
            "def anti_entropy(self, peers):\n"
            "    for peer in peers:\n"
            "        self.node.after(1.0, lambda: self.push(peer))\n"
        )
        assert "I401" in rules_of(lint(source))

    def test_default_rebinding_is_clean(self):
        source = (
            "def _anti_entropy(self, peers):\n"
            "    for peer in peers:\n"
            "        self.node.after(1.0, lambda peer=peer: self.push(peer))\n"
        )
        assert rules_of(lint(source)) == []

    def test_lambda_outside_loop_is_clean(self):
        source = (
            "def _arm(self, peer):\n"
            "    self.node.after(1.0, lambda: self.push(peer))\n"
        )
        assert rules_of(lint(source)) == []

    def test_lambda_captures_mutated_local(self):
        source = (
            "def _arm(self):\n"
            "    pending = []\n"
            "    self.node.after(1.0, lambda: self.flush(pending))\n"
            "    pending.append(1)\n"
        )
        assert "I402" in rules_of(lint(source))

    def test_local_settled_before_scheduling_is_clean(self):
        source = (
            "def _arm(self):\n"
            "    pending = []\n"
            "    pending.append(1)\n"
            "    self.node.after(1.0, lambda: self.flush(pending))\n"
        )
        assert rules_of(lint(source)) == []


# --------------------------------------------- select / ignore filters

# One D-violation and one I-violation in the same module, so scoping is
# observable in both directions.
MIXED = "import time\ndef _f(self, x=[]):\n    t = time.time()\n"


class TestSelectFilters:
    def test_select_scopes_to_family(self):
        result = lint_source(MIXED, path=SIM, select=["I2"])
        assert rules_of(result) == ["I202"]

    def test_select_multiple_families(self):
        result = lint_source(MIXED, path=SIM, select=["I2", "D2"])
        assert sorted(rules_of(result)) == ["D201", "I202"]

    def test_select_exact_rule_id(self):
        result = lint_source(MIXED, path=SIM, select=["D201"])
        assert rules_of(result) == ["D201"]

    def test_ignore_family_drops_it(self):
        result = lint_source(MIXED, path=SIM, ignore_families=["I2"])
        assert rules_of(result) == ["D201"]

    def test_unknown_selector_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule selector"):
            lint_source(MIXED, path=SIM, select=["BOGUS"])

    def test_unknown_ignore_family_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule family"):
            lint_source(MIXED, path=SIM, ignore_families=["Z9"])

    def test_cli_unknown_selector_exits_2(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--select", "NOPE"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown rule selector" in proc.stdout

    def test_cli_select_scopes_clean_run(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--select", "I2,D1"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ------------------------------------------------- mixed-report exit codes


class TestMixedExitCodes:
    def test_baselined_only_is_exit_zero(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="I202", path="fixture.py", max_count=1, justification="t"
                ),
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                ),
            ]
        )
        result = lint(MIXED, config=config)
        assert result.exit_code == 0
        assert sorted(v.rule for v in result.baselined) == ["D201", "I202"]

    def test_fresh_violation_is_exit_one(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        result = lint(MIXED, config=config)
        assert result.exit_code == 1
        assert rules_of(result) == ["I202"]

    def test_json_report_with_i_rules_is_byte_stable(self):
        assert format_json(lint(MIXED)) == format_json(lint(MIXED))
        payload = json.loads(format_json(lint(MIXED)))
        assert payload["counts"]["by_rule"] == {"D201": 1, "I202": 1}

    def test_i_rule_suppression_needs_reason(self):
        source = (
            "def _f(self, msg, src):\n"
            "    self.send(src, msg)  # repro-lint: ignore[I203]\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)
        assert "I203" not in rules_of(result)

    def test_i_rule_suppression_with_reason_is_clean(self):
        source = (
            "def _f(self, msg, src):\n"
            "    self.send(src, msg)  # repro-lint: ignore[I203] echo test rig\n"
        )
        result = lint(source)
        assert rules_of(result) == []
        assert [v.rule for v in result.suppressed] == ["I203"]


# ---------------------------------------------------------- suppressions


class TestSuppressions:
    def test_inline_suppression_with_reason(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301] order-neutral fold\n"
            "    pass\n"
        )
        result = lint(source)
        assert rules_of(result) == []
        assert [v.rule for v in result.suppressed] == ["D301"]

    def test_family_prefix_suppression(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D3] audited by hand\n"
            "    pass\n"
        )
        result = lint(source)
        assert rules_of(result) == []

    def test_star_suppression(self):
        source = "import time\nt = time.time()  # repro-lint: ignore[*] test rig\n"
        result = lint(source)
        assert rules_of(result) == []

    def test_suppression_without_reason_is_d002(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301]\n"
            "    pass\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)

    def test_suppression_of_unknown_rule_is_d002(self):
        source = "x = 1  # repro-lint: ignore[D999] no such rule\n"
        result = lint(source)
        assert rules_of(result) == ["D002"]

    def test_d002_cannot_suppress_itself(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301, D002]\n"
            "    pass\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)


# ------------------------------------------------------------- allowlist


class TestAllowlist:
    def test_allow_entry_diverts_violation(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D2", path="fixture.py", justification="test")]
        )
        result = lint("import time\nt = time.time()\n", config=config)
        assert rules_of(result) == []
        assert [v.rule for v in result.allowed] == ["D201"]

    def test_allow_is_scoped_by_path(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D2", path="elsewhere/", justification="test")]
        )
        result = lint("import time\nt = time.time()\n", config=config)
        assert "D201" in rules_of(result)

    def test_unknown_rule_in_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict(
                {"allow": [{"rule": "D9", "path": "x", "justification": "y"}]}
            )

    def test_entry_without_justification_rejected(self):
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict({"baseline": [{"rule": "D2", "path": "x"}]})


# --------------------------------------------------------------- baseline


class TestBaseline:
    def test_budget_absorbs_up_to_max(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        result = lint(
            "import time\na = time.time()\nb = time.time()\n", config=config
        )
        assert rules_of(result) == ["D201"]  # second hit overflows the budget
        assert [v.rule for v in result.baselined] == ["D201"]

    def test_stale_entry_is_reported(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D101", path="nowhere.py", max_count=3, justification="t"
                )
            ]
        )
        result = lint("x = 1\n", config=config)
        assert result.clean  # stale entries warn, they do not fail
        assert [e.path for e in result.stale_baseline] == ["nowhere.py"]
        assert "stale baseline entry" in format_text(result)

    def test_apply_baseline_counts_are_fresh_per_call(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D2", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        source = "import time\nt = time.time()\n"
        first = lint(source, config=config)
        second = lint(source, config=config)
        assert rules_of(first) == rules_of(second) == []

    def test_baseline_from_violations_collapses_by_rule_and_path(self):
        result = lint("import time\na = time.time()\nb = time.time()\n")
        entries = baseline_from_violations(result.violations)
        assert len(entries) == 1
        assert entries[0].rule == "D201"
        assert entries[0].max_count == 2

    def test_policy_toml_round_trip(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D3", path="repro/x.py", justification="why")],
        )
        baseline = [
            BaselineEntry(
                rule="D2", path="repro/obs/", max_count=5, justification="prov"
            )
        ]
        text = render_policy_toml(config, baseline)
        doc = tomllib.loads(text)
        loaded = LintConfig.from_dict(doc)
        assert loaded.simpath == config.simpath
        assert loaded.set_returning == config.set_returning
        assert loaded.allow == config.allow
        assert loaded.baseline == baseline

    def test_rendered_policy_is_byte_stable(self):
        config = LintConfig()
        baseline = [
            BaselineEntry(rule="D2", path="a/", max_count=1, justification="j")
        ]
        assert render_policy_toml(config, baseline) == render_policy_toml(
            config, baseline
        )


# ------------------------------------------------------------ JSON report


class TestJsonReport:
    def test_schema_and_keys(self):
        result = lint("import time\nt = time.time()\n")
        payload = json.loads(format_json(result))
        assert payload["schema"] == 1
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"]["violations"] == 1
        assert payload["counts"]["by_rule"] == {"D201": 1}
        violation = payload["violations"][0]
        assert set(violation) >= {"rule", "path", "line", "col", "message"}

    def test_json_is_byte_stable(self):
        source = "import time\nt = time.time()\n"
        assert format_json(lint(source)) == format_json(lint(source))


# ------------------------------------------------------ tree-level contract


class TestTreeContract:
    def test_src_is_clean_against_committed_policy(self):
        """The acceptance bar: `repro lint src` exits 0 with the
        committed .repro-lint.toml, and every baseline entry is live."""
        config = LintConfig.load(os.path.join(REPO_ROOT, ".repro-lint.toml"))
        result = lint_paths([os.path.join(REPO_ROOT, "src")], config)
        assert result.violations == [], format_text(result)
        assert result.errors == []
        assert result.stale_baseline == [], "baseline carries dead entries"

    def test_committed_baseline_is_small_and_justified(self):
        config = LintConfig.load(os.path.join(REPO_ROOT, ".repro-lint.toml"))
        assert len(config.baseline) <= 5
        for entry in config.baseline:
            assert len(entry.justification.split()) >= 5, entry
            assert "TODO" not in entry.justification, entry

    def test_cli_lint_json_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--format", "json"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True

    def test_cli_lint_fails_on_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "lint", str(bad),
                "--config", os.path.join(REPO_ROOT, ".repro-lint.toml"),
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "D201" in proc.stdout

    def test_syntax_error_is_reported_not_raised(self):
        result = lint("def broken(:\n")
        assert result.errors and not result.clean

    def test_missing_target_fails_instead_of_vacuous_clean(self):
        result = lint_paths(["no/such/dir"], LintConfig())
        assert not result.clean
        assert result.exit_code == 1
        assert "no such file" in result.errors[0]

    def test_missing_config_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot read lint config"):
            LintConfig.load("/no/such/.repro-lint.toml")

"""The determinism linter: rule fixtures, suppressions, allowlist,
baseline round-trips, the JSON report, and the tree-level contract that
``repro lint src`` is clean against the committed policy.

The isolation families (I1xx–I4xx) are covered here too: per-rule
positive/negative fixtures, the ``--select``/``--ignore-family``
filters, and mixed-report exit codes with I-rules present.

The protocol families (P1xx–P4xx) close the file out: per-rule
positive/negative fixtures, whole-program cross-module linking (and the
subtree-lint caveat), the request/reply policy round-trip, and the
byte-stability of the ``repro protocol graph`` artifact."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tomllib

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    AllowEntry,
    BaselineEntry,
    CATALOG,
    FAMILIES,
    LintConfig,
    apply_baseline,
    baseline_from_violations,
    build_protocol_graph,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    render_policy_toml,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Fixture paths: one inside the sim-path set (D3xx rules armed), one
# outside it (order hazards exempt by policy).
SIM = "repro/sim/fixture.py"
OFF = "repro/analysis/fixture.py"


def rules_of(result):
    return [v.rule for v in result.violations]


def lint(source, path=SIM, config=None):
    return lint_source(source, path=path, config=config)


# --------------------------------------------------------------- catalogue


class TestCatalog:
    def test_every_rule_belongs_to_a_family(self):
        for rule_id, rule in CATALOG.items():
            assert rule_id[:2] in FAMILIES, rule_id
            assert rule.advice and rule.title

    def test_fixture_paths_classify_as_intended(self):
        config = LintConfig()
        assert config.is_simpath(SIM)
        assert not config.is_simpath(OFF)


# ------------------------------------------------------- D1xx: randomness


class TestAmbientRandomness:
    def test_module_level_random_call(self):
        result = lint("import random\nx = random.random()\n")
        assert "D101" in rules_of(result)

    def test_module_level_shuffle(self):
        result = lint("import random\nrandom.shuffle(items)\n")
        assert "D101" in rules_of(result)

    def test_seeded_instance_is_clean(self):
        result = lint("import random\nrng = random.Random(7)\nx = rng.random()\n")
        assert rules_of(result) == []

    def test_unseeded_random_instance(self):
        result = lint("import random\nrng = random.Random()\n")
        assert rules_of(result) == ["D102"]

    def test_system_random(self):
        result = lint("import random\nrng = random.SystemRandom()\n")
        assert "D103" in rules_of(result)

    def test_secrets_and_urandom(self):
        assert "D103" in rules_of(lint("import secrets\nt = secrets.token_bytes(8)\n"))
        assert "D103" in rules_of(lint("import os\nb = os.urandom(16)\n"))
        assert "D103" in rules_of(lint("from os import urandom\n"))

    def test_uuid_entropy(self):
        assert "D103" in rules_of(lint("import uuid\nu = uuid.uuid4()\n"))
        assert "D103" in rules_of(lint("from uuid import uuid4\n"))

    def test_from_import_of_ambient_function(self):
        result = lint("from random import randint\n")
        assert "D104" in rules_of(result)

    def test_import_alias_is_tracked(self):
        result = lint("import random as rnd\nx = rnd.random()\n")
        assert "D101" in rules_of(result)


# ------------------------------------------------------- D2xx: wall clock


class TestWallClock:
    def test_time_time(self):
        result = lint("import time\nt = time.time()\n")
        assert "D201" in rules_of(result)

    def test_perf_counter(self):
        result = lint("import time\nt = time.perf_counter()\n")
        assert "D202" in rules_of(result)

    def test_datetime_now(self):
        result = lint("from datetime import datetime\nd = datetime.now()\n")
        assert "D203" in rules_of(result)

    def test_datetime_module_attribute(self):
        result = lint("import datetime\nd = datetime.datetime.utcnow()\n")
        assert "D203" in rules_of(result)

    def test_from_import_flags_import_and_call(self):
        result = lint("from time import perf_counter\nt = perf_counter()\n")
        assert rules_of(result) == ["D204", "D202"] or sorted(
            rules_of(result)
        ) == ["D202", "D204"]

    def test_aliased_from_import_call(self):
        result = lint("from time import time as now\nt = now()\n")
        rules = rules_of(result)
        assert "D204" in rules and "D201" in rules

    def test_wall_clock_flagged_off_simpath_too(self):
        # D2xx is policy everywhere: legitimate provenance sites live in
        # the committed baseline, not in a path carve-out.
        result = lint("import time\nt = time.time()\n", path=OFF)
        assert "D201" in rules_of(result)


# ---------------------------------------------------- D3xx: order hazards


class TestOrderHazards:
    def test_for_over_set_literal(self):
        result = lint("s = {1, 2, 3}\nfor x in s:\n    pass\n")
        assert "D301" in rules_of(result)

    def test_sorted_set_is_clean(self):
        result = lint("s = {1, 2, 3}\nfor x in sorted(s):\n    pass\n")
        assert rules_of(result) == []

    def test_list_of_configured_set_returning_helper(self):
        result = lint("out = list(digest())\n")
        assert "D301" in rules_of(result)

    def test_frozenset_of_digest_is_clean(self):
        # The anti-entropy idiom: set-to-set flows never leak hash order.
        result = lint("owned = frozenset(k for k in digest())\n")
        assert rules_of(result) == []

    def test_len_min_max_are_neutral(self):
        result = lint("s = {1, 2}\nn = len(s)\nm = max(s)\n")
        assert rules_of(result) == []

    def test_comprehension_over_set(self):
        result = lint("s = {1, 2}\nout = [x for x in s]\n")
        assert "D301" in rules_of(result)

    def test_set_comprehension_is_neutral(self):
        result = lint("s = {1, 2}\nout = {x + 1 for x in s}\n")
        assert rules_of(result) == []

    def test_set_union_tracks_through_binop(self):
        result = lint("a = {1}\nb = {2}\nfor x in a | b:\n    pass\n")
        assert "D301" in rules_of(result)

    def test_annotated_set_argument(self):
        source = (
            "from typing import Set\n"
            "def f(keys: Set[str]):\n"
            "    return list(keys)\n"
        )
        result = lint(source)
        assert "D301" in rules_of(result)

    def test_order_rules_gated_to_simpath(self):
        result = lint("s = {1, 2}\nfor x in s:\n    pass\n", path=OFF)
        assert rules_of(result) == []

    def test_os_listdir_without_sorted(self):
        result = lint("import os\nnames = os.listdir(p)\n")
        assert "D302" in rules_of(result)

    def test_sorted_listdir_is_clean(self):
        result = lint("import os\nnames = sorted(os.listdir(p))\n")
        assert rules_of(result) == []

    def test_glob_module(self):
        result = lint("import glob\nfiles = glob.glob(pat)\n")
        assert "D302" in rules_of(result)

    def test_id_and_hash_on_simpath(self):
        assert "D303" in rules_of(lint("k = id(obj)\n"))
        assert "D304" in rules_of(lint("h = hash(name)\n"))

    def test_id_and_hash_off_simpath_are_clean(self):
        assert rules_of(lint("k = id(obj)\n", path=OFF)) == []
        assert rules_of(lint("h = hash(name)\n", path=OFF)) == []


# -------------------------------------------------- D4xx: export hygiene


class TestExportHygiene:
    def test_all_entry_that_never_binds(self):
        result = lint('__all__ = ["missing"]\n')
        assert "D401" in rules_of(result)

    def test_duplicate_all_entry(self):
        result = lint('__all__ = ["f", "f"]\ndef f():\n    pass\n')
        assert "D402" in rules_of(result)

    def test_public_surface_without_all(self):
        result = lint("def api():\n    pass\n")
        assert "D403" in rules_of(result)

    def test_private_only_module_needs_no_all(self):
        result = lint("def _helper():\n    pass\n")
        assert rules_of(result) == []

    def test_conftest_is_exempt(self):
        result = lint(
            "def fixture_like():\n    pass\n", path="repro/sim/conftest.py"
        )
        assert rules_of(result) == []

    def test_complete_all_is_clean(self):
        source = '__all__ = ["api"]\n\ndef api():\n    pass\n'
        assert rules_of(lint(source)) == []


# ------------------------------------------- I1xx: cross-node reach-through


class TestReachThrough:
    def test_loop_over_servers_reaching_into_store(self):
        source = (
            "def replication(self, key):\n"
            "    for s in self.servers:\n"
            "        if s.store.get(key):\n"
            "            pass\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_genexp_over_servers_reaching_into_store(self):
        # The shape the dht facade used to have before ChordNode.holds().
        source = (
            "def level(self, key):\n"
            "    return sum(1 for s in self.servers if s.store.get(key))\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_facade_method_is_clean(self):
        source = (
            "def _level(self, key):\n"
            "    return sum(1 for s in self.servers if s.holds(key))\n"
        )
        assert rules_of(lint(source)) == []

    def test_own_state_is_clean(self):
        source = (
            "def _digest_size(self):\n"
            "    return len(self.store)\n"
        )
        assert rules_of(lint(source)) == []

    def test_subscript_into_collection(self):
        source = (
            "def peek(self):\n"
            "    return self.servers[0].store\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_node_returning_helper_is_tracked(self):
        source = (
            "def views(self):\n"
            "    return [s.view for s in self.alive_servers()]\n"
        )
        assert "I101" in rules_of(lint(source))

    def test_assigned_collection_is_tracked(self):
        source = (
            "def peek(self):\n"
            "    nodes = self.servers\n"
            "    return nodes[2].scheduler\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_filtered_comprehension_stays_a_collection(self):
        source = (
            "def peek(self):\n"
            "    alive = [s for s in self.servers if s.alive]\n"
            "    return alive[0].store\n"
        )
        assert "I102" in rules_of(lint(source))

    def test_reach_through_off_simpath_is_clean(self):
        source = (
            "def _audit(self, key):\n"
            "    return [s.store.get(key) for s in self.servers]\n"
        )
        assert rules_of(lint(source, path=OFF)) == []


# ------------------------------------------------ I2xx: payload aliasing


class TestPayloadAliasing:
    def test_mutable_local_mutated_after_send(self):
        source = (
            "def push(self, batch_size):\n"
            "    batch = []\n"
            "    self.node.send(7, Msg(batch))\n"
            "    batch.append(1)\n"
        )
        result = lint(source)
        assert "I201" in rules_of(result)

    def test_snapshot_at_send_is_clean(self):
        source = (
            "def _push(self, batch_size):\n"
            "    batch = []\n"
            "    self.node.send(7, Msg(tuple(batch)))\n"
            "    batch.append(1)\n"
        )
        assert rules_of(lint(source)) == []

    def test_mutation_before_send_is_clean(self):
        source = (
            "def _push(self):\n"
            "    batch = []\n"
            "    batch.append(1)\n"
            "    self.node.send(7, Msg(batch))\n"
        )
        assert rules_of(lint(source)) == []

    def test_mutable_default_payload(self):
        assert "I202" in rules_of(lint("def _f(self, payload=[]):\n    pass\n"))
        assert "I202" in rules_of(lint("def _f(self, opts={}):\n    pass\n"))

    def test_none_default_is_clean(self):
        assert rules_of(lint("def _f(self, payload=None):\n    pass\n")) == []

    def test_mutable_default_off_simpath_is_clean(self):
        assert rules_of(lint("def _f(x=[]):\n    pass\n", path=OFF)) == []

    def test_resend_of_received_message(self):
        source = (
            "def _on_ping(self, msg, src):\n"
            "    self.send(src, msg)\n"
        )
        assert "I203" in rules_of(lint(source))

    def test_rebuilt_reply_is_clean(self):
        source = (
            "def _on_ping(self, msg, src):\n"
            "    self.send(src, Pong(msg.seq))\n"
        )
        assert rules_of(lint(source)) == []

    def test_received_payload_aliased_into_outbound(self):
        # The gossip-relay shape — baselined in the committed policy.
        source = (
            "def _forward(self, msg):\n"
            "    self.node.send(1, Relay(msg.payload, msg.ttl - 1))\n"
        )
        assert "I204" in rules_of(lint(source))

    def test_snapshotted_payload_is_clean(self):
        source = (
            "def _forward(self, msg):\n"
            "    self.node.send(1, Relay(tuple(msg.payload), msg.ttl - 1))\n"
        )
        assert rules_of(lint(source)) == []


# ------------------------------------------ I3xx: mutation after forward


class TestMutationAfterForward:
    def test_mutation_after_forward(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    self.send(3, Fwd(msg.key, tuple(msg.payload)))\n"
            "    msg.hops = msg.hops + 1\n"
        )
        assert "I301" in rules_of(lint(source))

    def test_mutation_without_forward_is_i302(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    msg.payload.append(1)\n"
        )
        result = lint(source)
        assert "I302" in rules_of(result)
        assert "I301" not in rules_of(result)

    def test_read_only_handler_is_clean(self):
        source = (
            "def _on_put(self, msg, src):\n"
            "    self.store.put(msg.key, msg.version, msg.value)\n"
        )
        assert rules_of(lint(source)) == []

    def test_non_handler_param_not_treated_as_message(self):
        source = (
            "def _helper(self, entry, src):\n"
            "    entry.payload.append(1)\n"
        )
        assert rules_of(lint(source)) == []


# -------------------------------------------- I4xx: callback capture


class TestCallbackCapture:
    def test_lambda_captures_loop_variable(self):
        source = (
            "def anti_entropy(self, peers):\n"
            "    for peer in peers:\n"
            "        self.node.after(1.0, lambda: self.push(peer))\n"
        )
        assert "I401" in rules_of(lint(source))

    def test_default_rebinding_is_clean(self):
        source = (
            "def _anti_entropy(self, peers):\n"
            "    for peer in peers:\n"
            "        self.node.after(1.0, lambda peer=peer: self.push(peer))\n"
        )
        assert rules_of(lint(source)) == []

    def test_lambda_outside_loop_is_clean(self):
        source = (
            "def _arm(self, peer):\n"
            "    self.node.after(1.0, lambda: self.push(peer))\n"
        )
        assert rules_of(lint(source)) == []

    def test_lambda_captures_mutated_local(self):
        source = (
            "def _arm(self):\n"
            "    pending = []\n"
            "    self.node.after(1.0, lambda: self.flush(pending))\n"
            "    pending.append(1)\n"
        )
        assert "I402" in rules_of(lint(source))

    def test_local_settled_before_scheduling_is_clean(self):
        source = (
            "def _arm(self):\n"
            "    pending = []\n"
            "    pending.append(1)\n"
            "    self.node.after(1.0, lambda: self.flush(pending))\n"
        )
        assert rules_of(lint(source)) == []


# --------------------------------------------- select / ignore filters

# One D-violation and one I-violation in the same module, so scoping is
# observable in both directions.
MIXED = "import time\ndef _f(self, x=[]):\n    t = time.time()\n"


class TestSelectFilters:
    def test_select_scopes_to_family(self):
        result = lint_source(MIXED, path=SIM, select=["I2"])
        assert rules_of(result) == ["I202"]

    def test_select_multiple_families(self):
        result = lint_source(MIXED, path=SIM, select=["I2", "D2"])
        assert sorted(rules_of(result)) == ["D201", "I202"]

    def test_select_exact_rule_id(self):
        result = lint_source(MIXED, path=SIM, select=["D201"])
        assert rules_of(result) == ["D201"]

    def test_ignore_family_drops_it(self):
        result = lint_source(MIXED, path=SIM, ignore_families=["I2"])
        assert rules_of(result) == ["D201"]

    def test_unknown_selector_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule selector"):
            lint_source(MIXED, path=SIM, select=["BOGUS"])

    def test_unknown_ignore_family_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule family"):
            lint_source(MIXED, path=SIM, ignore_families=["Z9"])

    def test_cli_unknown_selector_exits_2(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--select", "NOPE"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown rule selector" in proc.stdout

    def test_cli_select_scopes_clean_run(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--select", "I2,D1"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ------------------------------------------------- mixed-report exit codes


class TestMixedExitCodes:
    def test_baselined_only_is_exit_zero(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="I202", path="fixture.py", max_count=1, justification="t"
                ),
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                ),
            ]
        )
        result = lint(MIXED, config=config)
        assert result.exit_code == 0
        assert sorted(v.rule for v in result.baselined) == ["D201", "I202"]

    def test_fresh_violation_is_exit_one(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        result = lint(MIXED, config=config)
        assert result.exit_code == 1
        assert rules_of(result) == ["I202"]

    def test_json_report_with_i_rules_is_byte_stable(self):
        assert format_json(lint(MIXED)) == format_json(lint(MIXED))
        payload = json.loads(format_json(lint(MIXED)))
        assert payload["counts"]["by_rule"] == {"D201": 1, "I202": 1}

    def test_i_rule_suppression_needs_reason(self):
        source = (
            "def _f(self, msg, src):\n"
            "    self.send(src, msg)  # repro-lint: ignore[I203]\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)
        assert "I203" not in rules_of(result)

    def test_i_rule_suppression_with_reason_is_clean(self):
        source = (
            "def _f(self, msg, src):\n"
            "    self.send(src, msg)  # repro-lint: ignore[I203] echo test rig\n"
        )
        result = lint(source)
        assert rules_of(result) == []
        assert [v.rule for v in result.suppressed] == ["I203"]


# ---------------------------------------------------------- suppressions


class TestSuppressions:
    def test_inline_suppression_with_reason(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301] order-neutral fold\n"
            "    pass\n"
        )
        result = lint(source)
        assert rules_of(result) == []
        assert [v.rule for v in result.suppressed] == ["D301"]

    def test_family_prefix_suppression(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D3] audited by hand\n"
            "    pass\n"
        )
        result = lint(source)
        assert rules_of(result) == []

    def test_star_suppression(self):
        source = "import time\nt = time.time()  # repro-lint: ignore[*] test rig\n"
        result = lint(source)
        assert rules_of(result) == []

    def test_suppression_without_reason_is_d002(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301]\n"
            "    pass\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)

    def test_suppression_of_unknown_rule_is_d002(self):
        source = "x = 1  # repro-lint: ignore[D999] no such rule\n"
        result = lint(source)
        assert rules_of(result) == ["D002"]

    def test_d002_cannot_suppress_itself(self):
        source = (
            "s = {1, 2}\n"
            "for x in s:  # repro-lint: ignore[D301, D002]\n"
            "    pass\n"
        )
        result = lint(source)
        assert "D002" in rules_of(result)


# ------------------------------------------------------------- allowlist


class TestAllowlist:
    def test_allow_entry_diverts_violation(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D2", path="fixture.py", justification="test")]
        )
        result = lint("import time\nt = time.time()\n", config=config)
        assert rules_of(result) == []
        assert [v.rule for v in result.allowed] == ["D201"]

    def test_allow_is_scoped_by_path(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D2", path="elsewhere/", justification="test")]
        )
        result = lint("import time\nt = time.time()\n", config=config)
        assert "D201" in rules_of(result)

    def test_unknown_rule_in_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict(
                {"allow": [{"rule": "D9", "path": "x", "justification": "y"}]}
            )

    def test_entry_without_justification_rejected(self):
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict({"baseline": [{"rule": "D2", "path": "x"}]})


# --------------------------------------------------------------- baseline


class TestBaseline:
    def test_budget_absorbs_up_to_max(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D201", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        result = lint(
            "import time\na = time.time()\nb = time.time()\n", config=config
        )
        assert rules_of(result) == ["D201"]  # second hit overflows the budget
        assert [v.rule for v in result.baselined] == ["D201"]

    def test_stale_entry_is_reported(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D101", path="nowhere.py", max_count=3, justification="t"
                )
            ]
        )
        result = lint("x = 1\n", config=config)
        assert result.clean  # stale entries warn, they do not fail
        assert [e.path for e in result.stale_baseline] == ["nowhere.py"]
        assert "stale baseline entry" in format_text(result)

    def test_apply_baseline_counts_are_fresh_per_call(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="D2", path="fixture.py", max_count=1, justification="t"
                )
            ]
        )
        source = "import time\nt = time.time()\n"
        first = lint(source, config=config)
        second = lint(source, config=config)
        assert rules_of(first) == rules_of(second) == []

    def test_baseline_from_violations_collapses_by_rule_and_path(self):
        result = lint("import time\na = time.time()\nb = time.time()\n")
        entries = baseline_from_violations(result.violations)
        assert len(entries) == 1
        assert entries[0].rule == "D201"
        assert entries[0].max_count == 2

    def test_policy_toml_round_trip(self):
        config = LintConfig(
            allow=[AllowEntry(rule="D3", path="repro/x.py", justification="why")],
        )
        baseline = [
            BaselineEntry(
                rule="D2", path="repro/obs/", max_count=5, justification="prov"
            )
        ]
        text = render_policy_toml(config, baseline)
        doc = tomllib.loads(text)
        loaded = LintConfig.from_dict(doc)
        assert loaded.simpath == config.simpath
        assert loaded.set_returning == config.set_returning
        assert loaded.allow == config.allow
        assert loaded.baseline == baseline

    def test_rendered_policy_is_byte_stable(self):
        config = LintConfig()
        baseline = [
            BaselineEntry(rule="D2", path="a/", max_count=1, justification="j")
        ]
        assert render_policy_toml(config, baseline) == render_policy_toml(
            config, baseline
        )


# ------------------------------------------------------------ JSON report


class TestJsonReport:
    def test_schema_and_keys(self):
        result = lint("import time\nt = time.time()\n")
        payload = json.loads(format_json(result))
        assert payload["schema"] == 1
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"]["violations"] == 1
        assert payload["counts"]["by_rule"] == {"D201": 1}
        violation = payload["violations"][0]
        assert set(violation) >= {"rule", "path", "line", "col", "message"}

    def test_json_is_byte_stable(self):
        source = "import time\nt = time.time()\n"
        assert format_json(lint(source)) == format_json(lint(source))


# ------------------------------------------------------ tree-level contract


class TestTreeContract:
    def test_src_is_clean_against_committed_policy(self):
        """The acceptance bar: `repro lint src` exits 0 with the
        committed .repro-lint.toml, and every baseline entry is live."""
        config = LintConfig.load(os.path.join(REPO_ROOT, ".repro-lint.toml"))
        result = lint_paths([os.path.join(REPO_ROOT, "src")], config)
        assert result.violations == [], format_text(result)
        assert result.errors == []
        assert result.stale_baseline == [], "baseline carries dead entries"

    def test_committed_baseline_is_small_and_justified(self):
        config = LintConfig.load(os.path.join(REPO_ROOT, ".repro-lint.toml"))
        assert len(config.baseline) <= 5
        for entry in config.baseline:
            assert len(entry.justification.split()) >= 5, entry
            assert "TODO" not in entry.justification, entry

    def test_cli_lint_json_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--format", "json"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True

    def test_cli_lint_fails_on_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "lint", str(bad),
                "--config", os.path.join(REPO_ROOT, ".repro-lint.toml"),
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "D201" in proc.stdout

    def test_syntax_error_is_reported_not_raised(self):
        result = lint("def broken(:\n")
        assert result.errors and not result.clean

    def test_missing_target_fails_instead_of_vacuous_clean(self):
        result = lint_paths(["no/such/dir"], LintConfig())
        assert not result.clean
        assert result.exit_code == 1
        assert "no such file" in result.errors[0]

    def test_missing_config_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot read lint config"):
            LintConfig.load("/no/such/.repro-lint.toml")


# -------------------------------------------- P-rule fixtures (protocol)

# A complete, correct protocol: message defined, sent, handled through
# the normal register-in-start / unregister-in-stop lifecycle, handler
# reading only declared fields. Every P-family's negative case.
PROTO_CLEAN = """\
from dataclasses import dataclass

__all__ = ["Ping", "PingService"]


@dataclass(frozen=True)
class Ping:
    body: str


class PingService:
    def start(self):
        self.node.register_handler(Ping, self._on_ping)

    def stop(self):
        self.node.unregister_handler(Ping)

    def poke(self, dst):
        self.node.send(dst, Ping(body="hi"))

    def _on_ping(self, msg, src):
        self.last = msg.body
"""

P101_DEAD_LETTER = """\
from dataclasses import dataclass

__all__ = ["Orphan", "Sender"]


@dataclass(frozen=True)
class Orphan:
    body: str


class Sender:
    def poke(self, dst):
        self.node.send(dst, Orphan(body="x"))
"""

P102_DEAD_HANDLER = """\
from dataclasses import dataclass

__all__ = ["Quiet", "Listener"]


@dataclass(frozen=True)
class Quiet:
    body: str


class Listener:
    def start(self):
        self.node.register_handler(Quiet, self._on_quiet)

    def _on_quiet(self, msg, src):
        self.last = msg.body
"""


class TestProtocolDeadLetters:
    def test_clean_protocol_has_no_p_violations(self):
        assert rules_of(lint(PROTO_CLEAN)) == []

    def test_p101_sent_but_never_handled(self):
        assert rules_of(lint(P101_DEAD_LETTER)) == ["P101"]

    def test_p102_handled_but_never_sent(self):
        assert rules_of(lint(P102_DEAD_HANDLER)) == ["P102"]

    def test_p103_register_then_unconditional_unregister(self):
        source = PROTO_CLEAN.replace(
            "        self.node.register_handler(Ping, self._on_ping)\n",
            "        self.node.register_handler(Ping, self._on_ping)\n"
            "        self.node.unregister_handler(Ping)\n",
            1,
        )
        assert rules_of(lint(source)) == ["P103"]

    def test_start_stop_lifecycle_is_not_p103(self):
        # Register in start(), unregister in stop(): different bodies,
        # the handler lives for the node's whole lifetime.
        assert "P103" not in rules_of(lint(PROTO_CLEAN))

    def test_off_simpath_module_is_exempt(self):
        assert rules_of(lint(P101_DEAD_LETTER, path=OFF)) == []

    def test_p_violation_can_be_suppressed_inline(self):
        source = P101_DEAD_LETTER.replace(
            "self.node.send(dst, Orphan(body=\"x\"))",
            "self.node.send(dst, Orphan(body=\"x\"))"
            "  # repro-lint: ignore[P101] wired up in a later PR",
        )
        result = lint(source)
        assert rules_of(result) == []
        assert [v.rule for v in result.suppressed] == ["P101"]

    def test_p_violation_can_be_baselined(self):
        config = LintConfig(
            baseline=[
                BaselineEntry(
                    rule="P101", path="fixture.py", max_count=1,
                    justification="t",
                )
            ]
        )
        result = lint(P101_DEAD_LETTER, config=config)
        assert rules_of(result) == []
        assert [v.rule for v in result.baselined] == ["P101"]


class TestPayloadSchema:
    def test_p201_handler_reads_undefined_field(self):
        source = PROTO_CLEAN.replace("msg.body", "msg.nope")
        result = lint(source)
        assert rules_of(result) == ["P201"]
        assert "Ping.nope" in result.violations[0].message

    def test_p201_allows_properties_and_methods(self):
        source = PROTO_CLEAN.replace(
            "class Ping:\n    body: str\n",
            "class Ping:\n"
            "    body: str\n"
            "\n"
            "    @property\n"
            "    def tag(self):\n"
            "        return (self.body,)\n",
        ).replace("msg.body", "msg.tag")
        assert rules_of(lint(source)) == []

    def test_p202_too_many_positionals(self):
        source = PROTO_CLEAN.replace('Ping(body="hi")', 'Ping("hi", "extra")')
        assert rules_of(lint(source)) == ["P202"]

    def test_p202_unknown_keyword(self):
        source = PROTO_CLEAN.replace(
            'Ping(body="hi")', 'Ping(body="hi", ttl=3)'
        )
        result = lint(source)
        assert rules_of(result) == ["P202"]
        assert "'ttl'" in result.violations[0].message

    def test_p203_mutable_field_on_frozen_message(self):
        source = PROTO_CLEAN.replace("body: str", "body: list")
        result = lint(source)
        assert rules_of(result) == ["P203"]

    def test_p203_immutable_containers_are_clean(self):
        source = PROTO_CLEAN.replace(
            "body: str", "body: Tuple[str, ...]\n    seen: frozenset"
        ).replace(
            "from dataclasses import dataclass",
            "from dataclasses import dataclass\nfrom typing import Tuple",
        )
        assert rules_of(lint(source)) == []

    def test_p203_only_applies_to_frozen_messages(self):
        source = PROTO_CLEAN.replace(
            "@dataclass(frozen=True)", "@dataclass"
        ).replace("body: str", "body: list")
        assert "P203" not in rules_of(lint(source))


REQUEST_REPLY = LintConfig(request_reply=(("Ping", "Pong"),))

PROTO_PAIR = """\
from dataclasses import dataclass

__all__ = ["Ping", "Pong", "Requester", "Responder"]


@dataclass(frozen=True)
class Ping:
    body: str


@dataclass(frozen=True)
class Pong:
    body: str


class Requester:
    def start(self):
        self.node.register_handler(Pong, self._on_pong)

    def poke(self, dst):
        self.node.send(dst, Ping(body="x"))

    def _on_pong(self, msg, src):
        self.last = msg.body


class Responder:
    def start(self):
        self.node.register_handler(Ping, self._on_ping)

    def _on_ping(self, msg, src):
        self.node.send(src, Pong(body=msg.body))
"""


class TestRequestReplyDiscipline:
    def test_clean_pair_passes(self):
        assert rules_of(lint(PROTO_PAIR, config=REQUEST_REPLY)) == []

    def test_p301_handler_never_sends_reply(self):
        source = PROTO_PAIR.replace(
            "        self.node.send(src, Pong(body=msg.body))\n",
            "        self.note = msg.body\n",
        )
        result = lint(source, config=REQUEST_REPLY)
        assert "P301" in rules_of(result)

    def test_p302_reply_sent_outside_request_handler(self):
        source = PROTO_PAIR + (
            "\n"
            "class Spammer:\n"
            "    def tick(self, dst):\n"
            "        self.node.send(dst, Pong(body=\"u\"))\n"
        )
        result = lint(source, config=REQUEST_REPLY)
        assert "P302" in rules_of(result)
        assert "P301" not in rules_of(result)

    def test_unconfigured_pair_is_not_judged(self):
        # Same shape, no [lint.protocol] entry naming Ping/Pong: the
        # broken responder draws no P3xx.
        source = PROTO_PAIR.replace(
            "        self.node.send(src, Pong(body=msg.body))\n",
            "        self.note = msg.body\n",
        )
        config = LintConfig(request_reply=())
        p3 = [r for r in rules_of(lint(source, config=config)) if r.startswith("P3")]
        assert p3 == []

    def test_malformed_request_reply_config_rejected(self):
        with pytest.raises(ConfigurationError, match="request_reply"):
            LintConfig.from_dict(
                {"lint": {"protocol": {"request_reply": [["OnlyOne"]]}}}
            )

    def test_request_reply_round_trips_through_policy_toml(self):
        config = LintConfig(request_reply=(("Ping", "Pong"),))
        loaded = LintConfig.from_dict(
            tomllib.loads(render_policy_toml(config, []))
        )
        assert loaded.request_reply == (("Ping", "Pong"),)


class TestDeadProtocolCode:
    def test_p401_dead_message_in_an_edged_module(self):
        source = PROTO_CLEAN.replace(
            '__all__ = ["Ping", "PingService"]',
            '__all__ = ["Ping", "Fossil", "PingService"]',
        ).replace(
            "class PingService:",
            "@dataclass(frozen=True)\n"
            "class Fossil:\n"
            "    body: str\n"
            "\n"
            "\n"
            "class PingService:",
        )
        result = lint(source)
        assert rules_of(result) == ["P401"]
        assert "Fossil" in result.violations[0].message

    def test_unedged_spec_dataclass_is_not_a_message(self):
        # A dataclass in a module with no protocol edges at all is
        # config/spec data, not a dead message.
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            '__all__ = ["Config"]\n'
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class Config:\n"
            "    retries: int\n"
        )
        assert rules_of(lint(source)) == []


class TestProtocolSelect:
    def test_select_bare_p_scopes_to_protocol_rules(self):
        mixed = P101_DEAD_LETTER + "\nimport time\nt = time.time()\n"
        result = lint_source(mixed, path=SIM, select=["P"])
        assert rules_of(result) == ["P101"]

    def test_select_family_p1(self):
        result = lint_source(P101_DEAD_LETTER, path=SIM, select=["P1"])
        assert rules_of(result) == ["P101"]

    def test_ignore_family_p1(self):
        result = lint_source(
            P101_DEAD_LETTER, path=SIM, ignore_families=["P1"]
        )
        assert rules_of(result) == []

    def test_unknown_p_selector_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown rule selector"):
            lint_source("x = 1\n", path=SIM, select=["P9"])


# --------------------------------------- whole-program linking & artifact

SENDER_MODULE = """\
from dataclasses import dataclass

__all__ = ["Beacon", "Beaconer"]


@dataclass(frozen=True)
class Beacon:
    body: str


class Beaconer:
    def tick(self, dst):
        self.node.send(dst, Beacon(body="b"))
"""

HANDLER_MODULE = """\
__all__ = ["BeaconSink"]


class BeaconSink:
    def start(self):
        self.node.register_handler(Beacon, self._on_beacon)

    def _on_beacon(self, msg, src):
        self.last = msg.body
"""


class TestWholeProgramLinking:
    def _write_fixture_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "a_sender.py").write_text(SENDER_MODULE)
        (pkg / "b_handler.py").write_text(HANDLER_MODULE)
        return tmp_path

    def test_handler_in_another_module_resolves(self, tmp_path):
        root = self._write_fixture_tree(tmp_path)
        result = lint_paths([str(root)], LintConfig())
        assert rules_of(result) == []

    def test_subtree_lint_caveat(self, tmp_path):
        # The documented caveat: linting only the sender's module loses
        # the handler edge and reports a (spurious) dead letter. The
        # committed policy always lints src whole for exactly this
        # reason.
        root = self._write_fixture_tree(tmp_path)
        sender = root / "repro" / "sim" / "a_sender.py"
        result = lint_paths([str(sender)], LintConfig())
        assert "P101" in rules_of(result)


class TestProtocolGraphArtifact:
    def _graph(self):
        config = LintConfig.load(os.path.join(REPO_ROOT, ".repro-lint.toml"))
        return build_protocol_graph([os.path.join(REPO_ROOT, "src")], config)

    def test_artifacts_are_byte_stable(self):
        first, second = self._graph(), self._graph()
        assert first.to_json() == second.to_json()
        assert first.to_dot() == second.to_dot()

    def test_graph_covers_the_core_protocol(self):
        graph = self._graph()
        for name in ("PutRequest", "PutAck", "GetRequest", "GetReply"):
            assert name in graph.messages, name
        handles = graph.handle_edges()
        assert ("RequestHandler", "PutRequest") in handles
        assert ("RequestHandler", "GetRequest") in handles
        assert graph.send_edges()[("RequestHandler", "PutAck")] >= 1

    def test_unresolved_sends_are_reported_not_dropped(self):
        # Node.send is a generic forwarder relaying its parameter; its
        # payload cannot be pinned statically and must be listed, not
        # silently dropped.
        graph = self._graph()
        names = {(s.endpoint, s.function) for s in graph.unresolved}
        assert ("Node", "send") in names

    def test_json_artifact_schema(self):
        payload = json.loads(self._graph().to_json())
        assert payload["schema"] == 1
        assert {"messages", "endpoints", "edges", "unresolved_sends"} <= set(
            payload
        )
        assert payload["edges"]["sends"] and payload["edges"]["handles"]

    def test_cli_graph_is_byte_identical_across_invocations(self):
        def invoke():
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "protocol", "graph",
                    "--format", "json",
                ],
                cwd=REPO_ROOT,
                env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            return proc.stdout

        first = invoke()
        assert first == invoke()
        assert json.loads(first)["schema"] == 1

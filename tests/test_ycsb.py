"""Tests for the YCSB-style workload generator."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workload.ycsb import (
    INSERT,
    READ,
    RMW,
    SCAN,
    UPDATE,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WRITE_ONLY,
    CoreWorkload,
)


class TestValidation:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            CoreWorkload(read_proportion=0.5, update_proportion=0.6)

    def test_record_count_positive(self):
        with pytest.raises(ConfigurationError):
            CoreWorkload(record_count=0)

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            CoreWorkload(request_distribution="pareto")

    def test_value_size_positive(self):
        with pytest.raises(ConfigurationError):
            CoreWorkload(value_size=0)


class TestLoadPhase:
    def test_inserts_every_record_once(self):
        workload = WRITE_ONLY.scaled(50)
        ops = list(workload.load_items(random.Random(0)))
        assert len(ops) == 50
        assert all(op.kind == INSERT for op in ops)
        assert sorted(op.key for op in ops) == sorted(
            f"user{i}" for i in range(50)
        )

    def test_values_have_configured_size(self):
        workload = CoreWorkload(
            record_count=5, read_proportion=1.0, update_proportion=0.0, value_size=37
        )
        for op in workload.load_items(random.Random(0)):
            assert len(op.value) == 37


class TestTransactionPhase:
    def test_operation_count(self):
        ops = list(WORKLOAD_A.operations(200, random.Random(1)))
        assert len(ops) == 200

    def test_mix_matches_proportions(self):
        ops = list(WORKLOAD_A.scaled(500).operations(4000, random.Random(2)))
        counts = Counter(op.kind for op in ops)
        assert 0.4 < counts[READ] / 4000 < 0.6
        assert 0.4 < counts[UPDATE] / 4000 < 0.6

    def test_write_only_generates_fresh_keys(self):
        workload = WRITE_ONLY.scaled(10)
        ops = list(workload.operations(5, random.Random(3)))
        assert [op.key for op in ops] == [f"user{i}" for i in range(10, 15)]

    def test_reads_stay_within_keyspace(self):
        workload = WORKLOAD_C.scaled(100)
        for op in workload.operations(1000, random.Random(4)):
            assert 0 <= int(op.key[4:]) < 100

    def test_rmw_and_scan_kinds(self):
        f_ops = Counter(
            op.kind for op in WORKLOAD_F.scaled(100).operations(1000, random.Random(5))
        )
        assert f_ops[RMW] > 300
        e_ops = list(WORKLOAD_E.scaled(100).operations(1000, random.Random(6)))
        scans = [op for op in e_ops if op.kind == SCAN]
        assert len(scans) > 800
        assert all(1 <= op.scan_length <= 10 for op in scans)

    def test_latest_distribution_follows_inserts(self):
        workload = WORKLOAD_D.scaled(100)
        ops = list(workload.operations(2000, random.Random(7)))
        inserted = [op for op in ops if op.kind == INSERT]
        assert inserted  # 5% of 2000
        read_indexes = [int(op.key[4:]) for op in ops if op.kind == READ]
        # Reads skew towards the newest items.
        assert sum(read_indexes) / len(read_indexes) > 60


class TestPresets:
    @pytest.mark.parametrize(
        "workload,name",
        [
            (WORKLOAD_A, "ycsb-a"),
            (WORKLOAD_B, "ycsb-b"),
            (WORKLOAD_C, "ycsb-c"),
            (WORKLOAD_D, "ycsb-d"),
            (WORKLOAD_E, "ycsb-e"),
            (WORKLOAD_F, "ycsb-f"),
            (WRITE_ONLY, "write-only"),
        ],
    )
    def test_presets_valid_and_named(self, workload, name):
        assert workload.name == name
        ops = list(workload.scaled(20).operations(10, random.Random(0)))
        assert len(ops) == 10

    def test_write_only_is_pure_insert(self):
        ops = list(WRITE_ONLY.scaled(20).operations(50, random.Random(1)))
        assert all(op.kind == INSERT for op in ops)

    def test_scaled_preserves_mix(self):
        scaled = WORKLOAD_B.scaled(9999)
        assert scaled.record_count == 9999
        assert scaled.read_proportion == WORKLOAD_B.read_proportion

"""End-to-end tests of the DATAFLASKS core: put/get, replication,
versioning, churn recovery and the paper's key dependability claims."""

import pytest

from repro.churn import SessionChurn
from repro.core.client import FAILED, SUCCEEDED
from repro.core.cluster import DataFlasksCluster
from repro.errors import ConfigurationError

from tests.conftest import build_cluster, small_config


class TestBasicOperations:
    def test_put_succeeds(self, converged_cluster):
        client = converged_cluster.new_client()
        op = converged_cluster.put_sync(client, "basic:1", b"v", 1)
        assert op.status == SUCCEEDED
        assert op.latency is not None and op.latency > 0

    def test_get_returns_stored_value(self, converged_cluster):
        client = converged_cluster.new_client()
        converged_cluster.put_sync(client, "basic:2", b"value-2", 1)
        result = converged_cluster.get_sync(client, "basic:2")
        assert result.succeeded
        assert result.value == b"value-2"
        assert result.result_version == 1

    def test_get_missing_key_fails_after_retries(self):
        cluster = build_cluster(n=30, seed=21)
        client = cluster.new_client(timeout=2.0, retries=1)
        op = client.get("never-written")
        cluster.sim.run_until_condition(lambda: op.done, timeout=30)
        assert op.status == FAILED

    def test_versioned_reads(self, converged_cluster):
        client = converged_cluster.new_client()
        converged_cluster.put_sync(client, "versioned", b"v1", 1)
        converged_cluster.put_sync(client, "versioned", b"v2", 2)
        exact = converged_cluster.get_sync(client, "versioned", version=1)
        assert exact.value == b"v1"
        latest = converged_cluster.get_sync(client, "versioned")
        assert latest.value == b"v2"
        assert latest.result_version == 2

    def test_client_requires_start(self, converged_cluster):
        from repro.core.client import DataFlasksClient
        from repro.core.loadbalancer import RandomLoadBalancer
        from repro.errors import ClientError

        lb = RandomLoadBalancer(converged_cluster.directory,
                                converged_cluster.sim.rng_registry.stream("t"))
        client = DataFlasksClient(99_999, converged_cluster.sim.ctx, lb)
        with pytest.raises(ClientError):
            client.put("x", b"", 1)

    def test_unknown_lb_strategy_rejected(self, converged_cluster):
        with pytest.raises(ConfigurationError):
            converged_cluster.new_client(lb_strategy="nope")


class TestReplication:
    def test_object_replicated_within_slice(self):
        cluster = build_cluster(n=40, seed=23)
        client = cluster.new_client()
        cluster.put_sync(client, "replicated", b"x", 1)
        cluster.sim.run_for(20)  # anti-entropy rounds
        target = cluster.target_slice("replicated")
        slice_size = cluster.slice_population()[target]
        level = cluster.replication_level("replicated")
        assert level >= slice_size * 0.7  # near-full slice replication

    def test_only_target_slice_stores(self):
        # gc_foreign_data makes nodes that migrated slice after storing an
        # object drop it once the GC grace period passes, so eventually
        # only current members of the target slice hold the key.
        cluster = build_cluster(n=40, seed=24, gc_foreign_data=True)
        client = cluster.new_client()
        cluster.put_sync(client, "localized", b"x", 1)
        cluster.sim.run_for(30)
        target = cluster.target_slice("localized")
        for server in cluster.alive_servers():
            if server.holds("localized"):
                assert server.my_slice() == target

    def test_acks_required_quorum(self):
        cluster = build_cluster(n=40, seed=25)
        client = cluster.new_client()
        op = cluster.put_sync(client, "quorum", b"x", 1, acks_required=2, timeout=60)
        assert op.succeeded
        assert len(op.acks) >= 2

    def test_multiple_replies_deduplicated(self):
        cluster = build_cluster(n=40, seed=26)
        client = cluster.new_client()
        cluster.put_sync(client, "dup", b"x", 1)
        cluster.sim.run_for(15)
        result = cluster.get_sync(client, "dup")
        assert result.succeeded
        # Epidemic dissemination may produce several replies; the op must
        # complete exactly once regardless.
        assert result.status == SUCCEEDED
        cluster.sim.run_for(10)  # late replies arrive after completion
        assert result.status == SUCCEEDED


class TestDependability:
    def test_reads_survive_heavy_node_failure(self):
        cluster = build_cluster(n=50, seed=27)
        client = cluster.new_client(timeout=4.0, retries=3)
        keys = [f"survive:{i}" for i in range(8)]
        for i, key in enumerate(keys):
            cluster.put_sync(client, key, f"v{i}".encode(), 1)
        cluster.sim.run_for(25)  # let anti-entropy replicate fully

        controller = cluster.churn_controller()
        controller.kill_fraction(0.3)
        cluster.sim.run_for(10)

        ok = 0
        for key in keys:
            op = client.get(key)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        assert ok == len(keys)

    def test_antientropy_restores_replication_level(self):
        cluster = build_cluster(n=40, seed=28)
        client = cluster.new_client()
        cluster.put_sync(client, "heal", b"x", 1)
        cluster.sim.run_for(20)
        before = cluster.replication_level("heal")
        assert before >= 3

        # Kill most holders (but not all — persistence needs survivors).
        holders = [s for s in cluster.alive_servers() if s.holds("heal")]
        for victim in holders[:-1]:
            victim.crash()
        assert cluster.replication_level("heal") == 1

        cluster.sim.run_for(40)
        healed = cluster.replication_level("heal")
        assert healed >= 3  # replicas regrown inside the slice

    def test_new_node_acquires_slice_state(self):
        cluster = build_cluster(n=40, seed=29)
        client = cluster.new_client()
        keys = [f"transfer:{i}" for i in range(6)]
        for key in keys:
            cluster.put_sync(client, key, b"x", 1)
        cluster.sim.run_for(20)

        controller = cluster.churn_controller()
        joiner = controller.join()
        cluster.sim.run_for(60)  # slice assignment + anti-entropy transfer
        assert joiner.my_slice() is not None
        owned = [k for k in keys if cluster.target_slice(k) == joiner.my_slice()]
        for key in owned:
            assert joiner.holds(key)

    def test_writes_succeed_during_continuous_churn(self):
        from repro.churn import SessionChurn

        cluster = build_cluster(n=40, seed=30)
        client = cluster.new_client(timeout=4.0, retries=3)
        controller = cluster.churn_controller()
        controller.apply(SessionChurn(population=40, mean_session=400), horizon=60)

        ok = 0
        for i in range(10):
            op = client.put(f"churnwrite:{i}", b"x", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        assert ok >= 9


class TestMessageAccounting:
    def test_server_load_excludes_clients(self):
        cluster = build_cluster(n=30, seed=31)
        client = cluster.new_client()
        cluster.put_sync(client, "acct", b"x", 1)
        load = cluster.server_message_load()
        assert load["handled"] > 0
        client_sent = cluster.sim.metrics.get("msg.sent", node=client.id)
        assert client_sent >= 1  # the client did send...
        server_ids = [s.id for s in cluster.servers]
        assert client.id not in server_ids  # ...but is not averaged in

"""Tests for DataFlasksCluster facade helpers not covered elsewhere."""

import pytest

from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.core.filestore import FileStore
from repro.errors import ConfigurationError

from tests.conftest import build_cluster, small_config


def test_size_validated():
    with pytest.raises(ConfigurationError):
        DataFlasksCluster(n=0)


def test_expected_n_retargeted_to_cluster_size():
    cluster = DataFlasksCluster(n=37, config=DataFlasksConfig(expected_n=9), seed=1)
    assert cluster.config.expected_n == 37
    # Every node's private copy inherits the retargeted value.
    assert all(s.config.expected_n == 37 for s in cluster.servers)


def test_attribute_fn_feeds_slicing_attribute():
    cluster = DataFlasksCluster(
        n=5, config=small_config(), seed=2, attribute_fn=lambda nid, rng: nid * 100.0
    )
    for server in cluster.servers:
        assert server.attribute == server.id * 100.0


def test_store_factory_used(tmp_path):
    def store_factory(node_id):
        return FileStore(str(tmp_path / f"{node_id}.log"))

    cluster = DataFlasksCluster(
        n=4, config=small_config(), seed=3, store_factory=store_factory
    )
    assert all(isinstance(s.store, FileStore) for s in cluster.servers)
    cluster.sim.run_for(1)
    for server in cluster.servers:
        server.stop()  # closes the files cleanly


def test_directory_tracks_liveness():
    cluster = build_cluster(n=10, seed=43)
    full = set(cluster.directory())
    victim = cluster.servers[0]
    victim.crash()
    assert set(cluster.directory()) == full - {victim.id}


def test_load_batch_helper():
    cluster = build_cluster(n=30, seed=44)
    client = cluster.new_client()
    items = [(f"batch:{i}", f"v{i}".encode(), 1) for i in range(5)]
    ops = cluster.load(client, items)
    assert len(ops) == 5
    assert all(op.succeeded for op in ops)
    for key, value, version in items:
        result = cluster.get_sync(client, key)
        assert result.value == value


def test_multiple_clients_are_independent():
    cluster = build_cluster(n=30, seed=45)
    a = cluster.new_client()
    b = cluster.new_client(lb_strategy="slice-aware")
    assert a.id != b.id
    cluster.put_sync(a, "shared", b"from-a", 1)
    result = cluster.get_sync(b, "shared")
    assert result.value == b"from-a"


def test_slice_population_covers_all_slices_after_convergence():
    cluster = build_cluster(n=40, seed=46)
    population = cluster.slice_population()
    assert sum(population.values()) == len(cluster.alive_servers())
    assert set(population) == set(range(cluster.config.num_slices))

"""Tests for churn models and the churn controller."""

import random

import pytest

from repro.churn import (
    JOIN,
    LEAVE,
    ChurnController,
    ChurnEvent,
    CorrelatedFailure,
    PoissonChurn,
    SessionChurn,
    TraceChurn,
)
from repro.errors import ConfigurationError
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation


class TestModels:
    def test_poisson_rates_validated(self):
        with pytest.raises(ConfigurationError):
            PoissonChurn(join_rate=-1, leave_rate=0)

    def test_poisson_event_counts_near_expectation(self):
        rng = random.Random(1)
        events = list(PoissonChurn(join_rate=2.0, leave_rate=1.0).events(rng, 100))
        joins = sum(1 for e in events if e.kind == JOIN)
        leaves = sum(1 for e in events if e.kind == LEAVE)
        assert 150 <= joins <= 260
        assert 60 <= leaves <= 145

    def test_poisson_events_sorted(self):
        rng = random.Random(2)
        events = list(PoissonChurn(1.0, 1.0).events(rng, 50))
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_poisson_zero_rates_yield_nothing(self):
        assert list(PoissonChurn(0, 0).events(random.Random(0), 100)) == []

    def test_session_churn_pairs_leave_with_join(self):
        rng = random.Random(3)
        events = list(SessionChurn(population=50, mean_session=100).events(rng, 60))
        assert len(events) % 2 == 0
        for leave, join in zip(events[::2], events[1::2]):
            assert leave.kind == LEAVE and join.kind == JOIN
            assert leave.time == join.time

    def test_session_churn_validated(self):
        with pytest.raises(ConfigurationError):
            SessionChurn(population=0, mean_session=10)

    def test_trace_churn_replays_sorted_and_bounded(self):
        trace = TraceChurn(
            [ChurnEvent(5.0, LEAVE, 1), ChurnEvent(1.0, JOIN), ChurnEvent(99.0, LEAVE)]
        )
        events = list(trace.events(random.Random(0), horizon=10))
        assert [e.time for e in events] == [1.0, 5.0]

    def test_correlated_failure_names_victims(self):
        model = CorrelatedFailure(at=3.0, node_ids=[1, 2, 3])
        events = list(model.events(random.Random(0), horizon=10))
        assert len(events) == 3
        assert all(e.kind == LEAVE and e.time == 3.0 for e in events)
        assert [e.node_id for e in events] == [1, 2, 3]

    def test_correlated_failure_beyond_horizon_empty(self):
        model = CorrelatedFailure(at=30.0, node_ids=[1])
        assert list(model.events(random.Random(0), horizon=10)) == []


def overlay_sim(n=30, seed=5):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=8, shuffle_length=4))
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=4, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    return sim, factory


class TestController:
    def test_kill_random_reduces_population(self):
        sim, factory = overlay_sim()
        controller = ChurnController(sim, factory)
        victim = controller.kill()
        assert victim is not None and not victim.alive
        assert len(sim.alive_ids()) == 29
        assert controller.leaves == 1

    def test_kill_named_node(self):
        sim, factory = overlay_sim()
        controller = ChurnController(sim, factory)
        target = sim.alive_ids()[0]
        controller.kill(target)
        assert not sim.node(target).alive

    def test_kill_dead_node_is_noop(self):
        sim, factory = overlay_sim()
        controller = ChurnController(sim, factory)
        target = sim.alive_ids()[0]
        controller.kill(target)
        assert controller.kill(target) is None
        assert controller.leaves == 1

    def test_kill_fraction(self):
        sim, factory = overlay_sim(n=40)
        controller = ChurnController(sim, factory)
        victims = controller.kill_fraction(0.25)
        assert len(victims) == 10
        assert len(sim.alive_ids()) == 30

    def test_join_bootstraps_new_node(self):
        sim, factory = overlay_sim()
        controller = ChurnController(sim, factory, bootstrap_degree=3)
        joiner = controller.join()
        assert joiner.alive
        pss = joiner.get_service(CyclonService)
        assert 1 <= len(pss.peers()) <= 3
        sim.run_for(10)
        assert len(pss.peers()) > 3  # integrated into the overlay

    def test_join_callback_invoked(self):
        sim, factory = overlay_sim()
        seen = []
        controller = ChurnController(sim, factory, on_join=seen.append)
        joiner = controller.join()
        assert seen == [joiner]

    def test_apply_schedules_model_events(self):
        sim, factory = overlay_sim(n=30)
        controller = ChurnController(sim, factory)
        count = controller.apply(PoissonChurn(join_rate=0.5, leave_rate=0.5), horizon=30)
        assert count > 0
        sim.run_for(31)
        assert controller.joins + controller.leaves == count

    def test_population_roughly_stable_under_session_churn(self):
        sim, factory = overlay_sim(n=30)
        controller = ChurnController(sim, factory)
        controller.apply(SessionChurn(population=30, mean_session=60), horizon=60)
        sim.run_for(61)
        assert 25 <= len(sim.alive_ids()) <= 35

    def test_kill_everything_then_join_restarts(self):
        sim, factory = overlay_sim(n=5)
        controller = ChurnController(sim, factory)
        controller.kill_fraction(1.0)
        assert sim.alive_ids() == []
        assert controller.kill() is None  # nothing left to kill
        joiner = controller.join()
        assert joiner.alive  # joins even into an empty system

"""Tests for the intra-slice membership view."""

from repro.core.config import DataFlasksConfig
from repro.core.node import DataFlasksNode
from repro.core.sliceview import SliceViewService
from repro.pss.bootstrap import bootstrap_random_views
from repro.sim.node import SimContext
from repro.sim.simulator import Simulation
from repro.slicing.base import SlicingService

from tests.conftest import small_config


def build_core_nodes(n=40, seed=9, **overrides):
    sim = Simulation(seed=seed)
    config = small_config(**overrides)

    def factory(node_id, ctx: SimContext):
        return DataFlasksNode(node_id, ctx, config=config)

    nodes = [sim.add_node(factory) for _ in range(n)]
    bootstrap_random_views(nodes, degree=5, rng=sim.rng_registry.stream("b"))
    for node in nodes:
        node.start()
    return sim, nodes


def test_slice_view_populates_with_slice_mates():
    # Gossip views are eventually consistent: entries for nodes that
    # *recently* migrated slice linger until they age out, so we assert a
    # high fraction of correct entries rather than perfection.
    sim, nodes = build_core_nodes(n=40)
    sim.run_for(60)
    populated = 0
    correct = total = 0
    for node in nodes:
        my_slice = node.my_slice()
        peers = node.slice_view.slice_peers()
        if my_slice is None or not peers:
            continue
        populated += 1
        for peer_id in peers:
            peer = sim.node(peer_id)
            assert isinstance(peer, DataFlasksNode)
            total += 1
            correct += peer.my_slice() == my_slice
    assert populated > len(nodes) * 0.8
    assert correct / total > 0.85


def test_slice_view_never_contains_self():
    sim, nodes = build_core_nodes(n=30)
    sim.run_for(30)
    for node in nodes:
        assert node.id not in node.slice_view.slice_peers()


def test_slice_view_resets_on_slice_change():
    sim, nodes = build_core_nodes(n=20)
    sim.run_for(30)
    node = next(n for n in nodes if n.slice_view.slice_peers())
    slicing = node.get_service(SlicingService)
    old_slice = slicing.my_slice()
    new_slice = (old_slice + 1) % slicing.num_slices
    slicing._set_slice(new_slice)
    assert node.slice_view.slice_peers() == []


def test_old_entries_age_out():
    sim, nodes = build_core_nodes(n=30)
    sim.run_for(30)
    node = next(n for n in nodes if len(n.slice_view.slice_peers()) >= 2)
    mates = [sim.node(i) for i in node.slice_view.slice_peers()]
    for mate in mates:
        mate.crash()
    # max_age=10 rounds of 1s in the test config; give it time to purge.
    sim.run_for(20)
    leftovers = set(node.slice_view.slice_peers()) & {m.id for m in mates}
    assert not leftovers


def test_sample_bounded_and_distinct():
    sim, nodes = build_core_nodes(n=40)
    sim.run_for(40)
    node = max(nodes, key=lambda n: len(n.slice_view.slice_peers()))
    sample = node.slice_view.sample(3)
    assert len(sample) == len(set(sample)) <= 3

"""Tests for push-sum aggregation and the min-sketch size estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gossip.aggregation import (
    PushSumService,
    PushSumShare,
    SystemSizeEstimator,
)
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation


def build_aggregating(n=100, value_fn=lambda nid: float(nid), seed=4, rounds=40.0,
                      sketch_size=64):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=12, shuffle_length=6))
        node.add_service(PushSumService(value=value_fn(node_id)))
        node.add_service(SystemSizeEstimator(sketch_size=sketch_size))
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=5, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(rounds)
    return sim, nodes


class TestPushSum:
    def test_period_validated(self):
        with pytest.raises(ConfigurationError):
            PushSumService(value=1.0, period=0)

    def test_converges_to_true_average(self):
        _, nodes = build_aggregating(n=80)
        truth = sum(range(80)) / 80
        for node in nodes:
            estimate = node.get_service(PushSumService).estimate
            assert estimate == pytest.approx(truth, rel=0.05)

    def test_mass_conservation(self):
        # Total value and weight are conserved exactly (no loss, no churn):
        # the global invariant that makes push-sum correct.
        sim, nodes = build_aggregating(n=50, rounds=17.3)
        total_value = sum(n.get_service(PushSumService).value for n in nodes)
        total_weight = sum(n.get_service(PushSumService).weight for n in nodes)
        # In-flight shares also carry mass; drain the network first.
        sim.run_until(sim.now + 1.0)
        total_value = sum(n.get_service(PushSumService).value for n in nodes)
        total_weight = sum(n.get_service(PushSumService).weight for n in nodes)
        in_flight = sim.scheduler.pending  # shares still queued
        if in_flight == 0:
            assert total_value == pytest.approx(sum(range(50)))
            assert total_weight == pytest.approx(50.0)

    def test_constant_values_are_fixed_point(self):
        _, nodes = build_aggregating(n=30, value_fn=lambda nid: 7.0, rounds=20)
        for node in nodes:
            assert node.get_service(PushSumService).estimate == pytest.approx(7.0)

    def test_estimate_none_with_zero_weight(self):
        service = PushSumService(value=1.0)
        service.weight = 0.0
        assert service.estimate is None


class TestSizeEstimator:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SystemSizeEstimator(sketch_size=2)
        with pytest.raises(ConfigurationError):
            SystemSizeEstimator(epoch_rounds=0)
        with pytest.raises(ConfigurationError):
            SystemSizeEstimator(smoothing=0)

    def test_estimates_within_sketch_error(self):
        _, nodes = build_aggregating(n=150, rounds=50)
        for node in nodes:
            size = node.get_service(SystemSizeEstimator).size()
            assert size is not None
            # Relative error ~ 1/sqrt(62) ≈ 13%; allow 3 sigma.
            assert 150 * 0.6 <= size <= 150 * 1.5

    def test_all_nodes_agree_after_convergence(self):
        _, nodes = build_aggregating(n=100, rounds=50)
        sizes = {round(n.get_service(SystemSizeEstimator).size()) for n in nodes}
        assert len(sizes) <= 3  # min-gossip drives everyone to the same sketch

    def test_tracks_population_shrink(self):
        sim, nodes = build_aggregating(n=120, rounds=45)
        before = nodes[-1].get_service(SystemSizeEstimator).size()
        for node in nodes[:60]:
            node.crash()
        sim.run_for(90)  # several epochs
        survivors = [n for n in nodes if n.alive]
        after = survivors[0].get_service(SystemSizeEstimator).size()
        assert after < before * 0.75  # clearly noticed half the system left

    def test_instant_size_positive(self):
        _, nodes = build_aggregating(n=40, rounds=10)
        assert nodes[0].get_service(SystemSizeEstimator).instant_size() >= 1.0


class TestQuantizer:
    def test_quantize_powers_of_two(self):
        from repro.core.autoslice import quantize_slices

        assert quantize_slices(1.0) == 1
        assert quantize_slices(3.0) == 4
        assert quantize_slices(6.0) == 8

    def test_quantize_rounds_log2(self):
        from repro.core.autoslice import quantize_slices

        # log2(12) = 3.585 -> round() = 4 -> 16
        assert quantize_slices(12.0) == 16
        # log2(11) = 3.46 -> 3 -> 8
        assert quantize_slices(11.0) == 8

    def test_quantize_clamps(self):
        from repro.core.autoslice import quantize_slices

        assert quantize_slices(10_000_000.0, max_slices=64) == 64
        assert quantize_slices(0.01, min_slices=2) == 2

    @given(st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=100)
    def test_quantize_always_power_of_two_in_range(self, ideal):
        from repro.core.autoslice import quantize_slices

        k = quantize_slices(ideal)
        assert 1 <= k <= 4096
        assert k & (k - 1) == 0  # power of two

"""The adversarial hunter (:mod:`repro.search`): sampler determinism and
envelope, shrinker passes against a stub scorer, exporter/loader
round-trips, the end-to-end hunt -> shrink -> export -> replay pipeline
on a known-violating search seed, and CLI replay determinism.
"""

import os
import tomllib

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.search import (
    DamageScore,
    HuntConfig,
    SampleSpace,
    check_bounds,
    export_candidate,
    list_regressions,
    load_regression,
    run_hunt,
    sample_schedule,
    score_scenario,
    shrink_candidate,
    shrink_schedule,
)

# A search seed whose candidate 0 is a known consistency violation at the
# default hunt sizing (20 nodes, ycsb-a). If a core-protocol change
# legitimately fixes it, re-scan seeds and update — the regression corpus
# in specs/regressions/ is the durable record, this pins the *pipeline*.
VIOLATING_SEED = 7
VIOLATING_INDEX = 0


# ---------------------------------------------------------------- sampler


class TestSampler:
    def test_same_seed_and_index_replay_byte_identically(self):
        space = SampleSpace()
        assert sample_schedule(3, 5, space) == sample_schedule(3, 5, space)

    def test_candidates_are_independent_draws(self):
        space = SampleSpace()
        schedules = [sample_schedule(3, i, space) for i in range(6)]
        assert any(s != schedules[0] for s in schedules[1:])

    def test_schedules_respect_the_envelope(self):
        space = SampleSpace(min_faults=1, max_faults=4, horizon=15.0, min_duration=1.5)
        for index in range(20):
            faults = sample_schedule(11, index, space)
            assert space.min_faults <= len(faults) <= space.max_faults
            assert faults == sorted(faults, key=lambda f: (f.start, f.kind))
            for f in faults:
                assert f.kind in space.kinds
                assert 0.0 <= f.start <= space.horizon
                assert f.duration >= space.min_duration
                assert f.start + f.duration <= space.horizon + 0.01
                if f.kind in ("partition", "degrade", "crash_recover"):
                    assert space.min_fraction <= f.fraction <= space.max_fraction

    def test_restricting_kinds_restricts_schedules(self):
        space = SampleSpace(kinds=("burst_loss",))
        for index in range(5):
            assert all(
                f.kind == "burst_loss" for f in sample_schedule(1, index, space)
            )

    def test_envelope_validation(self):
        with pytest.raises(ConfigurationError):
            SampleSpace(min_faults=0)
        with pytest.raises(ConfigurationError):
            SampleSpace(min_duration=30.0, horizon=20.0)
        with pytest.raises(ConfigurationError):
            SampleSpace(min_fraction=0.6, max_fraction=0.4)
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            SampleSpace(kinds=("partition", "meteor_strike"))


# --------------------------------------------------------------- shrinker


def fake_score(faults, violation):
    """A DamageScore shaped like the scorer's output, without running a
    simulation (unit tests for the shrinker's search logic)."""
    stale = 1.0 if violation else 0.0
    return DamageScore(
        stale_reads=stale,
        lost_updates=0.0,
        lost_objects=0.0,
        unavail_excess=0.0,
        total=stale,
        target_metrics={},
        oracle_metrics={},
    )


class TestShrinker:
    def burst_only_scorer(self):
        """Violates iff a burst_loss injector survives — the other
        entries are dead weight a correct shrinker must strip."""

        def score_fn(faults):
            return fake_score(
                faults, any(f.kind == "burst_loss" for f in faults)
            )

        return score_fn

    def schedule(self):
        return [
            FaultSpec(kind="partition", start=0.0, duration=8.0, fraction=0.3),
            FaultSpec(kind="burst_loss", start=4.0, duration=8.0, loss=0.6),
            FaultSpec(kind="crash_recover", start=6.0, duration=8.0, fraction=0.25),
        ]

    def test_drops_dead_weight_and_narrows_the_culprit(self):
        result = shrink_schedule(self.schedule(), self.burst_only_scorer())
        assert result.injectors == 1
        assert result.faults[0].kind == "burst_loss"
        assert result.faults[0].duration == 1.0  # narrowed to the floor
        assert not result.exhausted
        assert result.score.violation

    def test_non_violating_input_is_rejected(self):
        with pytest.raises(ConfigurationError, match="violating schedule"):
            shrink_schedule(self.schedule(), lambda faults: fake_score(faults, False))

    def test_budget_exhaustion_is_reported_not_fatal(self):
        result = shrink_schedule(self.schedule(), self.burst_only_scorer(), budget=2)
        assert result.exhausted
        assert result.evals <= 2
        assert result.score.violation  # whatever it kept still violates

    def test_eval_budget_is_respected(self):
        calls = []

        def counting(faults):
            calls.append(1)
            return self.burst_only_scorer()(faults)

        shrink_schedule(self.schedule(), counting, budget=5)
        assert len(calls) <= 5

    def test_single_injector_is_never_dropped_to_zero(self):
        lone = [FaultSpec(kind="burst_loss", start=1.0, duration=4.0, loss=0.5)]
        result = shrink_schedule(lone, self.burst_only_scorer())
        assert result.injectors == 1


# ------------------------------------------------------- config validation


class TestHuntConfig:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="budget"):
            HuntConfig(budget=0)

    def test_hunting_the_oracle_is_rejected(self):
        with pytest.raises(ConfigurationError, match="oracle against itself"):
            HuntConfig(stack="oracle")


# ------------------------------------------------- end-to-end on a seed


class TestHuntPipeline:
    def config(self, budget=1):
        return HuntConfig(search_seed=VIOLATING_SEED, budget=budget)

    def test_hunt_replays_byte_identically(self):
        first = run_hunt(self.config(budget=2))
        second = run_hunt(self.config(budget=2))
        assert first.log_json() == second.log_json()

    def test_known_seed_finds_a_violation(self):
        result = run_hunt(self.config())
        best = result.best
        assert best is not None and best.index == VIOLATING_INDEX
        assert best.score.violation
        assert best.score.total > 0

    def test_shrinks_to_a_minimal_reproducer(self):
        shrunk = shrink_candidate(self.config(), VIOLATING_INDEX)
        assert shrunk.injectors <= 2
        assert shrunk.score.violation
        assert shrunk.steps  # something was actually reduced

    def test_export_load_replay_round_trip(self, tmp_path):
        config = self.config()
        shrunk = shrink_candidate(config, VIOLATING_INDEX)
        path = export_candidate(str(tmp_path), config, VIOLATING_INDEX, shrunk)
        assert list_regressions(str(tmp_path)) == [path]

        reg = load_regression(path)
        assert reg.provenance["search_seed"] == VIOLATING_SEED
        assert reg.scenario.faults == shrunk.faults
        replayed = score_scenario(reg.scenario)
        assert check_bounds(reg, replayed) == []

    def test_re_export_is_byte_identical(self, tmp_path):
        config = self.config()
        a = export_candidate(
            str(tmp_path / "a"), config, VIOLATING_INDEX,
            shrink_candidate(config, VIOLATING_INDEX),
        )
        b = export_candidate(
            str(tmp_path / "b"), config, VIOLATING_INDEX,
            shrink_candidate(config, VIOLATING_INDEX),
        )
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()


# ------------------------------------------------------ exporter parsing


class TestRegressionLoading:
    def export_one(self, tmp_path):
        config = HuntConfig(search_seed=VIOLATING_SEED, budget=1)
        shrunk = shrink_candidate(config, VIOLATING_INDEX)
        return export_candidate(str(tmp_path), config, VIOLATING_INDEX, shrunk)

    def rewrite(self, path, old, new):
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        assert old in text
        with open(path, "w", encoding="utf-8") as f:
            f.write(text.replace(old, new))

    def test_unknown_schema_rejected(self, tmp_path):
        path = self.export_one(tmp_path)
        self.rewrite(path, "schema = 1", "schema = 99")
        with pytest.raises(ConfigurationError, match="schema"):
            load_regression(path)

    def test_bad_expect_key_rejected(self, tmp_path):
        path = self.export_one(tmp_path)
        self.rewrite(path, "total_max", "vibes_max")
        with pytest.raises(ConfigurationError, match="unknown damage component"):
            load_regression(path)

    def test_invalid_toml_rejected(self, tmp_path):
        path = str(tmp_path / "broken.toml")
        with open(path, "w", encoding="utf-8") as f:
            f.write("schema = [unclosed\n")
        with pytest.raises(ConfigurationError, match="invalid regression spec"):
            load_regression(path)

    def test_tightened_bound_fails_the_replay(self, tmp_path):
        """A damage drift (simulated by editing the recorded bound) must
        surface as a bound-check failure, not pass silently."""
        path = self.export_one(tmp_path)
        with open(path, "rb") as f:
            recorded = tomllib.load(f)["expect"]["total_max"]
        self.rewrite(path, f"total_max = {recorded}", "total_max = 0.0")
        self.rewrite(path, f"total_min = {recorded}", "total_min = 0.0")
        reg = load_regression(path)
        failures = check_bounds(reg, score_scenario(reg.scenario))
        assert failures and "total" in failures[0]


# ------------------------------------------------------------------- CLI


class TestHuntCli:
    def test_run_summary_is_deterministic(self, capsys):
        args = ["hunt", "run", "--seed", str(VIOLATING_SEED), "--budget", "2",
                "--summary"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_replay_of_missing_file_reports_cleanly(self, capsys):
        assert main(["hunt", "replay", "/no/such/spec.toml"]) == 2
        assert "error: cannot read regression spec" in capsys.readouterr().out

    def test_replay_exit_codes(self, tmp_path, capsys):
        config = HuntConfig(search_seed=VIOLATING_SEED, budget=1)
        shrunk = shrink_candidate(config, VIOLATING_INDEX)
        path = export_candidate(str(tmp_path), config, VIOLATING_INDEX, shrunk)

        assert main(["hunt", "replay", str(tmp_path)]) == 0
        assert "ok:" in capsys.readouterr().out

        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        with open(path, "w", encoding="utf-8") as f:
            f.write(text.replace("total_min = ", "total_min = 900.0 # "))
        assert main(["hunt", "replay", path]) == 1
        assert "FAIL" in capsys.readouterr().out

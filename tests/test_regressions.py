"""Regression-spec harness: every reproducer the hunter ever exported
into ``specs/regressions/`` replays here, forever, as a tier-1 test.

Each spec is a minimal violating schedule found by ``repro hunt`` and
shrunk by delta-debugging; its ``[expect]`` table records the damage the
store under test exhibited, as exact bounds (replay is deterministic).
A failure here means a protocol change moved known consistency damage —
made it worse, or fixed it (in which case tighten the spec's bounds to
the new truth and say so in the commit).
"""

import os

import pytest

from repro.search import check_bounds, list_regressions, load_regression, score_scenario

REGRESSION_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "specs", "regressions")
)
SPEC_PATHS = list_regressions(REGRESSION_DIR)


def test_regression_corpus_is_not_empty():
    """The hunter has found real reproducers; the harness must be
    exercising them (guards against the directory being moved/emptied
    without anyone noticing the gate went dark)."""
    assert SPEC_PATHS, f"no regression specs found in {REGRESSION_DIR}"


@pytest.mark.parametrize(
    "path", SPEC_PATHS, ids=[os.path.splitext(os.path.basename(p))[0] for p in SPEC_PATHS]
)
def test_regression_spec_is_well_formed(path):
    reg = load_regression(path)
    assert reg.name == os.path.splitext(os.path.basename(path))[0]
    assert reg.scenario.faults, "a reproducer without faults reproduces nothing"
    assert "consistency" in reg.scenario.metrics
    assert reg.expect, "a spec without bounds asserts nothing"
    assert "search_seed" in reg.provenance


@pytest.mark.parametrize(
    "path", SPEC_PATHS, ids=[os.path.splitext(os.path.basename(p))[0] for p in SPEC_PATHS]
)
def test_regression_damage_within_recorded_bounds(path):
    reg = load_regression(path)
    score = score_scenario(reg.scenario)
    failures = check_bounds(reg, score)
    assert not failures, (
        f"{reg.name}: replayed damage drifted from the recorded bounds "
        f"(protocol behaviour changed):\n  " + "\n  ".join(failures)
    )

"""Tests for the Cyclon Peer Sampling Service."""

import pytest

from repro.errors import ConfigurationError
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.pss.diagnostics import overlay_graph, is_connected
from repro.sim.node import Node
from repro.sim.simulator import Simulation

from tests.conftest import build_overlay


def test_shuffle_length_validated():
    with pytest.raises(ConfigurationError):
        CyclonService(view_size=5, shuffle_length=6)
    with pytest.raises(ConfigurationError):
        CyclonService(view_size=5, shuffle_length=0)


def test_views_fill_to_capacity():
    _, nodes = build_overlay(n=50, rounds=20)
    sizes = [len(n.get_service(CyclonService).view) for n in nodes]
    assert min(sizes) >= 8  # view_size=10 in the fixture overlay


def test_view_never_contains_self():
    _, nodes = build_overlay(n=30, rounds=15)
    for node in nodes:
        assert node.id not in node.get_service(CyclonService).peers()


def test_overlay_stays_connected():
    _, nodes = build_overlay(n=60, rounds=25)
    assert is_connected(overlay_graph(nodes))


def test_views_change_over_time():
    sim, nodes = build_overlay(n=40, rounds=10)
    before = {n.id: set(n.get_service(CyclonService).peers()) for n in nodes}
    sim.run_for(10)
    after = {n.id: set(n.get_service(CyclonService).peers()) for n in nodes}
    changed = sum(1 for i in before if before[i] != after[i])
    assert changed > len(nodes) // 2  # continuous mixing


def test_dead_nodes_age_out_of_views():
    sim, nodes = build_overlay(n=40, rounds=20)
    victims = {n.id for n in nodes[:10]}
    for node in nodes[:10]:
        node.crash()
    sim.run_for(40)  # several shuffle periods
    survivors = nodes[10:]
    references = sum(
        1
        for node in survivors
        for peer in node.get_service(CyclonService).peers()
        if peer in victims
    )
    total = sum(len(node.get_service(CyclonService).peers()) for node in survivors)
    assert references / total < 0.05  # dead entries almost fully purged


def test_random_peer_and_sample():
    _, nodes = build_overlay(n=20, rounds=10)
    pss = nodes[0].get_service(CyclonService)
    peer = pss.random_peer()
    assert peer in pss.peers()
    sample = pss.sample(5)
    assert len(sample) == len(set(sample)) == 5


def test_bootstrap_excludes_self():
    sim = Simulation(seed=1)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=5, shuffle_length=3))
        return node

    node = sim.add_node(factory)
    pss = node.get_service(CyclonService)
    pss.bootstrap([node.id, node.id + 1])
    assert pss.peers() == [node.id + 1]


def test_isolated_node_rejoins_via_single_contact():
    sim, nodes = build_overlay(n=30, rounds=10)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=10, shuffle_length=5))
        return node

    joiner = sim.add_node(factory)
    joiner.start()
    joiner.get_service(CyclonService).bootstrap([nodes[0].id])
    sim.run_for(15)
    assert len(joiner.get_service(CyclonService).peers()) >= 5
    graph = overlay_graph(list(nodes) + [joiner])
    assert graph.in_degree(joiner.id) > 0  # others learnt about the joiner


def test_message_budget_is_constant_per_round():
    # Two shuffle messages per node per round (request + reply), roughly.
    sim, nodes = build_overlay(n=40, rounds=30)
    per_node = sim.metrics.message_load(population=[n.id for n in nodes])
    assert per_node["sent"] <= 3 * 30  # well-bounded gossip cost

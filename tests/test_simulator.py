"""Unit tests for the Simulation orchestrator."""

import pytest

from repro.errors import SimulationError, UnknownNodeError
from repro.sim.node import Node
from repro.sim.simulator import Simulation, relaxed_gc


def test_add_nodes_assigns_unique_ids():
    sim = Simulation()
    nodes = sim.add_nodes(Node, 5)
    assert len({n.id for n in nodes}) == 5


def test_explicit_node_id():
    sim = Simulation()
    node = sim.add_node(Node, node_id=42)
    assert node.id == 42
    # Subsequent auto ids must not collide with the explicit one.
    other = sim.add_node(Node)
    assert other.id > 42


def test_duplicate_node_id_rejected():
    sim = Simulation()
    sim.add_node(Node, node_id=1)
    with pytest.raises(SimulationError):
        sim.add_node(Node, node_id=1)


def test_start_and_stop_all():
    sim = Simulation()
    sim.add_nodes(Node, 3)
    sim.start_all()
    assert len(sim.alive_ids()) == 3
    sim.stop_all()
    assert sim.alive_ids() == []


def test_node_lookup():
    sim = Simulation()
    node = sim.add_node(Node)
    assert sim.node(node.id) is node
    with pytest.raises(UnknownNodeError):
        sim.node(999)


def test_remove_node_stops_it():
    sim = Simulation()
    node = sim.add_node(Node)
    node.start()
    sim.remove_node(node.id)
    assert not node.alive
    with pytest.raises(UnknownNodeError):
        sim.remove_node(node.id)


def test_run_for_advances_time():
    sim = Simulation()
    sim.run_for(3.5)
    assert sim.now == 3.5
    sim.run_for(1.5)
    assert sim.now == 5.0


def test_run_until_condition_true_immediately():
    sim = Simulation()
    assert sim.run_until_condition(lambda: True, timeout=10) is True
    assert sim.now == 0.0


def test_run_until_condition_becomes_true():
    sim = Simulation()
    node = sim.add_node(Node)
    node.start()
    flag = []
    sim.scheduler.schedule(2.0, flag.append, 1)
    assert sim.run_until_condition(lambda: bool(flag), timeout=10) is True
    assert sim.now <= 2.5  # found shortly after the event


def test_run_until_condition_times_out():
    sim = Simulation()
    assert sim.run_until_condition(lambda: False, timeout=3.0) is False
    assert sim.now == pytest.approx(3.0)


def test_determinism_same_seed_same_message_counts():
    def run(seed):
        from repro.pss.bootstrap import bootstrap_random_views
        from repro.pss.cyclon import CyclonService

        sim = Simulation(seed=seed)

        def factory(node_id, ctx):
            node = Node(node_id, ctx)
            node.add_service(CyclonService(view_size=8, shuffle_length=4))
            return node

        nodes = sim.add_nodes(factory, 20)
        bootstrap_random_views(nodes, degree=3, rng=sim.rng_registry.stream("b"))
        sim.start_all()
        sim.run_for(10)
        return sim.metrics.total("msg.sent"), sorted(
            (n.id, sorted(n.get_service(CyclonService).peers())) for n in nodes
        )

    assert run(123) == run(123)
    assert run(123) != run(124)


def test_relaxed_gc_sets_and_restores_thresholds():
    import gc

    before = gc.get_threshold()
    with relaxed_gc(12345):
        raised = gc.get_threshold()
        assert raised[0] == 12345
        assert raised[1:] == before[1:]
    assert gc.get_threshold() == before


def test_relaxed_gc_restores_on_error():
    import gc

    before = gc.get_threshold()
    with pytest.raises(RuntimeError):
        with relaxed_gc():
            raise RuntimeError("boom")
    assert gc.get_threshold() == before


def test_message_load_covers_all_nodes():
    sim = Simulation()
    nodes = sim.add_nodes(Node, 4)
    sim.start_all()
    nodes[0].send(nodes[1].id, object())
    sim.run_for(1)
    load = sim.message_load()
    assert load["sent"] == pytest.approx(0.25)
    assert load["received"] == pytest.approx(0.25)

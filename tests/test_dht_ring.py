"""Tests for Chord ring arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dht.ring import (
    RING_SIZE,
    finger_target,
    in_interval,
    key_position,
    node_position,
    ring_distance,
)

pos_st = st.integers(min_value=0, max_value=RING_SIZE - 1)


class TestInInterval:
    def test_simple_interval(self):
        assert in_interval(5, 1, 10)
        assert not in_interval(0, 1, 10)
        assert not in_interval(1, 1, 10)  # open start
        assert not in_interval(10, 1, 10)  # open end by default

    def test_inclusive_end(self):
        assert in_interval(10, 1, 10, inclusive_end=True)

    def test_wrapping_interval(self):
        high = RING_SIZE - 5
        assert in_interval(2, high, 10)
        assert in_interval(RING_SIZE - 1, high, 10)
        assert not in_interval(50, high, 10)

    def test_empty_interval_is_full_ring(self):
        # Chord convention: (a, a] covers the whole ring.
        assert in_interval(123, 7, 7, inclusive_end=True)
        assert in_interval(7, 7, 7, inclusive_end=True)
        assert not in_interval(7, 7, 7)  # x == a stays excluded when open

    @given(pos_st, pos_st, pos_st)
    def test_exactly_one_of_interval_or_complement(self, x, a, b):
        if a == b or x == a or x == b:
            return  # boundary conventions tested separately
        first = in_interval(x, a, b)
        second = in_interval(x, b, a)
        assert first != second  # x is in (a,b) xor (b,a)


class TestPositions:
    def test_node_position_stable(self):
        assert node_position(1) == node_position(1)
        assert node_position(1) != node_position(2)

    def test_key_position_matches_keyspace_hash(self):
        from repro.core.keyspace import key_hash

        assert key_position("abc") == key_hash("abc")

    @given(st.integers(min_value=0, max_value=10_000))
    def test_positions_in_ring(self, node_id):
        assert 0 <= node_position(node_id) < RING_SIZE


class TestDistanceAndFingers:
    def test_ring_distance_basic(self):
        assert ring_distance(10, 15) == 5
        assert ring_distance(15, 10) == RING_SIZE - 5
        assert ring_distance(7, 7) == 0

    @given(pos_st, pos_st)
    def test_distance_antisymmetry(self, a, b):
        if a != b:
            assert ring_distance(a, b) + ring_distance(b, a) == RING_SIZE

    def test_finger_targets_double(self):
        assert finger_target(0, 0) == 1
        assert finger_target(0, 10) == 1024
        assert finger_target(RING_SIZE - 1, 0) == 0  # wraps

"""Tests for the package's public surface."""

import repro


def test_version_string():
    assert repro.__version__ == "1.8.0"


def test_every_module_all_resolves():
    # The runtime counterpart of the D401/D402 lint rules: every
    # __all__ entry in every submodule resolves and none repeats.
    import importlib
    import pkgutil

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        names = getattr(module, "__all__", None)
        if names is None:
            continue
        assert len(names) == len(set(names)), f"{info.name}.__all__ has duplicates"
        for name in names:
            assert hasattr(module, name), f"{info.name}.{name} missing"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_subpackage_exports_resolve():
    import repro.analysis
    import repro.churn
    import repro.core
    import repro.dht
    import repro.faults
    import repro.gossip
    import repro.pss
    import repro.scenarios
    import repro.sim
    import repro.slicing
    import repro.workload

    for module in (
        repro.analysis,
        repro.churn,
        repro.core,
        repro.dht,
        repro.faults,
        repro.gossip,
        repro.pss,
        repro.scenarios,
        repro.sim,
        repro.slicing,
        repro.workload,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_quickstart_snippet_from_module_docstring():
    # The code shown in the package docstring must actually work.
    from repro import DataFlasksCluster

    cluster = DataFlasksCluster(n=25, seed=42)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    client = cluster.new_client()
    cluster.put_sync(client, "user:1", b"alice", version=1)
    result = cluster.get_sync(client, "user:1")
    assert result.value == b"alice"


def test_errors_hierarchy():
    from repro import errors

    for cls in (
        errors.SimulationError,
        errors.ConfigurationError,
        errors.StoreError,
        errors.ClientError,
    ):
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.CapacityExceededError, errors.StoreError)
    assert issubclass(errors.OperationTimeoutError, errors.ClientError)
    assert issubclass(errors.NodeDownError, errors.SimulationError)
    assert issubclass(errors.DeterminismError, errors.SimulationError)

    timeout = errors.OperationTimeoutError("get", "key", 5.0)
    assert "get" in str(timeout) and "key" in str(timeout)
    down = errors.NodeDownError(7)
    assert down.node_id == 7


def test_examples_compile():
    # Every example must at least be valid Python importable as source.
    import os
    import py_compile

    examples_dir = os.path.join(os.path.dirname(__file__), "..", "examples")
    files = [f for f in os.listdir(examples_dir) if f.endswith(".py")]
    assert len(files) >= 3  # the deliverable: three or more examples
    for name in files:
        py_compile.compile(os.path.join(examples_dir, name), doraise=True)

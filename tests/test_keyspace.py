"""Tests for the key-to-slice mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.keyspace import key_hash, slice_for_key
from repro.errors import ConfigurationError


def test_slice_in_range():
    for i in range(100):
        assert 0 <= slice_for_key(f"key{i}", 7) < 7


def test_mapping_is_deterministic():
    assert slice_for_key("abc", 10) == slice_for_key("abc", 10)


def test_mapping_is_stable_across_processes():
    # Pinned value: the mapping must never change silently, or every
    # deployed object would land in the wrong slice after an upgrade.
    assert key_hash("user1") == 14914577609760747527
    assert slice_for_key("user1", 10) == 7


def test_distribution_roughly_uniform():
    counts = {}
    for i in range(5000):
        s = slice_for_key(f"user{i}", 10)
        counts[s] = counts.get(s, 0) + 1
    assert min(counts.values()) > 350  # expected 500 per slice
    assert max(counts.values()) < 650


def test_num_slices_validated():
    with pytest.raises(ConfigurationError):
        slice_for_key("x", 0)


def test_single_slice_maps_everything_to_zero():
    assert slice_for_key("anything", 1) == 0


@given(st.text(max_size=50), st.integers(min_value=1, max_value=64))
def test_slice_always_in_range(key, k):
    assert 0 <= slice_for_key(key, k) < k


@given(st.text(max_size=50))
def test_hash_is_64_bit(key):
    assert 0 <= key_hash(key) < 2 ** 64

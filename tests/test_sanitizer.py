"""The runtime determinism guard: tripwires, restoration, re-entrancy,
and the trajectory-neutrality contract — a sanitized scenario run is
byte-identical to an unsanitized one, across processes and hash seeds."""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time

import pytest

from repro.errors import DeterminismError
from repro.lint import determinism_guard, guard_active
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario, run_sweep

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SMALL = dict(
    nodes=20,
    warmup=8.0,
    settle=6.0,
    cooldown=0.0,
    record_count=5,
    operation_count=8,
)


def small_spec(name: str = "baseline"):
    spec = load_bundled(name)
    overrides = dict(SMALL)
    if spec.stack == "core":
        overrides["num_slices"] = 3
    return spec.scaled(**overrides)


class TestGuard:
    def test_inactive_by_default(self):
        assert not guard_active()

    def test_ambient_random_trips(self):
        with determinism_guard():
            with pytest.raises(DeterminismError, match="D101"):
                random.random()
            with pytest.raises(DeterminismError, match="random.randint"):
                random.randint(0, 9)
            with pytest.raises(DeterminismError):
                random.shuffle([1, 2])

    def test_wall_clock_trips(self):
        with determinism_guard():
            with pytest.raises(DeterminismError, match="D201"):
                time.time()
            with pytest.raises(DeterminismError, match="time_ns"):
                time.time_ns()

    def test_seeded_instances_keep_working(self):
        rng = random.Random(7)
        before = random.Random(7).random()
        with determinism_guard():
            assert rng.random() == before
            assert random.Random(3).randint(0, 5) in range(6)

    def test_perf_counter_stays_callable(self):
        # The profiler/recorder contract: timers are provenance and must
        # work under the guard (their sites live in the lint baseline).
        with determinism_guard():
            assert time.perf_counter() > 0.0
            assert time.monotonic() > 0.0

    def test_restores_on_exit(self):
        with determinism_guard():
            pass
        assert isinstance(random.random(), float)
        assert time.time() > 0.0
        assert not guard_active()

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with determinism_guard():
                raise RuntimeError("boom")
        assert isinstance(random.random(), float)
        assert time.time() > 0.0

    def test_reentrant(self):
        with determinism_guard():
            with determinism_guard():
                assert guard_active()
            # Inner exit must not disarm the outer guard.
            assert guard_active()
            with pytest.raises(DeterminismError):
                random.random()
        assert not guard_active()


class TestTrajectoryNeutrality:
    def test_sanitized_run_is_byte_identical(self):
        spec = small_spec()
        plain = run_scenario(spec, seed=11)
        sanitized = run_scenario(spec, seed=11, sanitize=True)
        assert sanitized.summary_json() == plain.summary_json()
        assert not guard_active()

    def test_sanitized_sweep_is_byte_identical(self):
        spec = small_spec()
        plain = run_sweep(spec, seeds=[0, 1])
        sanitized = run_sweep(spec, seeds=[0, 1], sanitize=True)
        assert sanitized.summary_json() == plain.summary_json()

    def test_dht_stack_runs_sanitized(self):
        # The second backend exercises a different sim path under the
        # guard; completing at all proves it draws no ambient entropy.
        result = run_scenario(small_spec("dht-crash-recover"), seed=5, sanitize=True)
        assert result.metrics["events_processed"] > 0


class TestHashSeedNeutrality:
    """Same seed, different PYTHONHASHSEED, byte-identical summaries.

    The in-process determinism tests can never catch a hash-order leak —
    str hashes are salted per *process*. Running the scenario in two
    subprocesses with different salts is the regression test for the
    whole D3xx rule family.
    """

    @staticmethod
    def _summary(hashseed: str) -> str:
        script = (
            "from repro.scenarios.registry import load_bundled\n"
            "from repro.scenarios.runner import run_scenario\n"
            "spec = load_bundled('baseline').scaled(nodes=20, warmup=8.0, "
            "settle=6.0, cooldown=0.0, record_count=5, operation_count=8, "
            "num_slices=3)\n"
            "print(run_scenario(spec, seed=11, sanitize=True).summary_json())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
                "PYTHONHASHSEED": hashseed,
            },
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    def test_summary_survives_hash_salt_change(self):
        assert self._summary("1") == self._summary("271828")

"""Unit tests for slicing-quality metrics (pure measurement code)."""

from repro.sim.node import Node
from repro.sim.simulator import Simulation
from repro.slicing import (
    StaticSlicing,
    assignment_accuracy,
    ideal_assignments,
    slice_assignments,
    slice_histogram,
    slice_imbalance,
    unassigned_fraction,
)
from repro.slicing.base import SlicingService


def make_pinned(assignments, k=4, attributes=None):
    """Nodes with slices pinned directly, bypassing any protocol."""
    sim = Simulation(seed=1)
    nodes = []
    for i, slice_id in enumerate(assignments):
        node = sim.add_node(Node)
        attr = attributes[i] if attributes else float(i)
        service = StaticSlicing(num_slices=k, attribute=attr)
        node.add_service(service)
        node.start()
        if slice_id is not None:
            service._set_slice(slice_id)
        else:
            service._slice = None
        nodes.append(node)
    return nodes


def test_slice_assignments_maps_ids():
    nodes = make_pinned([0, 1, 2])
    got = slice_assignments(nodes)
    assert got == {nodes[0].id: 0, nodes[1].id: 1, nodes[2].id: 2}


def test_dead_nodes_excluded():
    nodes = make_pinned([0, 1])
    nodes[0].stop()
    assert list(slice_assignments(nodes)) == [nodes[1].id]


def test_ideal_assignments_sorts_by_attribute():
    # attributes 0..7 over k=4 -> ranks map two nodes per slice in order.
    nodes = make_pinned([0] * 8, k=4)
    ideal = ideal_assignments(nodes)
    expected = {nodes[i].id: i * 4 // 8 for i in range(8)}
    assert ideal == expected


def test_assignment_accuracy_perfect_and_zero():
    perfect = make_pinned([0, 0, 1, 1], k=2)
    assert assignment_accuracy(perfect) == 1.0
    inverted = make_pinned([1, 1, 0, 0], k=2)
    assert assignment_accuracy(inverted) == 0.0


def test_accuracy_empty_population():
    assert assignment_accuracy([]) == 0.0


def test_slice_histogram_skips_unassigned():
    nodes = make_pinned([0, 0, None, 3])
    hist = slice_histogram(nodes)
    assert hist == {0: 2, 3: 1}


def test_unassigned_fraction():
    nodes = make_pinned([0, None, None, 1])
    assert unassigned_fraction(nodes) == 0.5
    assert unassigned_fraction([]) == 1.0


def test_imbalance_perfectly_balanced():
    nodes = make_pinned([0, 1, 2, 3], k=4)
    assert slice_imbalance(nodes) == 1.0


def test_imbalance_counts_empty_slices():
    # All nodes in one slice of four: max/mean = 4 / (4/4)... max=4, mean=1.
    nodes = make_pinned([0, 0, 0, 0], k=4)
    assert slice_imbalance(nodes) == 4.0


def test_imbalance_empty_population():
    assert slice_imbalance([]) == 0.0

"""Tests for the closed-loop workload runner."""

import pytest

from repro.workload.runner import RunStats, WorkloadRunner
from repro.workload.ycsb import (
    CoreWorkload,
    WORKLOAD_A,
    WORKLOAD_F,
    WRITE_ONLY,
)

from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def loaded_cluster():
    """A cluster with a small write-only load already applied."""
    cluster = build_cluster(n=30, seed=41)
    workload = WRITE_ONLY.scaled(20)
    runner = WorkloadRunner(cluster, workload, seed=1)
    stats = runner.run_load_phase()
    assert stats.success_rate == 1.0
    cluster.sim.run_for(15)  # replicate
    return cluster, workload, runner


class TestRunStats:
    def test_empty_stats(self):
        stats = RunStats()
        assert stats.success_rate == 0.0
        assert stats.throughput == 0.0

    def test_record_accumulates(self):
        stats = RunStats()
        stats.record("read", True, 0.5)
        stats.record("read", False, None)
        assert stats.issued == 2
        assert stats.succeeded == 1
        assert stats.failed == 1
        assert stats.by_kind == {"read": 2}
        assert stats.latency_summary("read")["count"] == 1

    def test_latency_summary_missing_kind(self):
        assert RunStats().latency_summary("scan")["count"] == 0


class TestLoadPhase:
    def test_load_phase_inserts_all(self, loaded_cluster):
        cluster, workload, _ = loaded_cluster
        for i in range(workload.record_count):
            assert cluster.replication_level(workload.key_for(i)) >= 1

    def test_messages_per_node_positive(self, loaded_cluster):
        _, _, runner = loaded_cluster
        extra = runner.run_transactions(0)
        assert extra.issued == 0  # sanity: empty run records nothing


class TestTransactionPhase:
    def test_mixed_workload_succeeds(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = WORKLOAD_A.scaled(20)
        runner = WorkloadRunner(cluster, workload, seed=2)
        stats = runner.run_transactions(20)
        assert stats.issued == 20
        assert stats.success_rate > 0.9

    def test_version_oracle_monotonic(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = CoreWorkload(
            record_count=5,
            read_proportion=0.0,
            update_proportion=1.0,
            request_distribution="uniform",
            key_prefix="vv",
        )
        runner = WorkloadRunner(cluster, workload, seed=3)
        runner.run_load_phase()
        stats = runner.run_transactions(10)
        assert stats.success_rate == 1.0
        # Updates bumped versions past the insert's version 1.
        versions = [runner._versions[k] for k in runner._versions]
        assert max(versions) > 1

    def test_rmw_counts_as_single_op(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = WORKLOAD_F.scaled(20)
        runner = WorkloadRunner(cluster, workload, seed=4)
        runner._versions = {workload.key_for(i): 1 for i in range(20)}
        stats = runner.run_transactions(10)
        assert stats.issued == 10
        assert stats.success_rate > 0.8

    def test_throughput_positive(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        runner = WorkloadRunner(cluster, WORKLOAD_A.scaled(20), seed=5)
        stats = runner.run_transactions(10)
        assert stats.throughput > 0
        assert stats.duration > 0
        assert stats.messages_per_node > 0

"""Tests for the closed-loop workload runner."""

import pytest

from repro.workload.runner import RunStats, WorkloadRunner
from repro.workload.ycsb import (
    SCAN,
    CoreWorkload,
    Operation,
    WORKLOAD_A,
    WORKLOAD_E,
    WORKLOAD_F,
    WRITE_ONLY,
)

from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def loaded_cluster():
    """A cluster with a small write-only load already applied."""
    cluster = build_cluster(n=30, seed=41)
    workload = WRITE_ONLY.scaled(20)
    runner = WorkloadRunner(cluster, workload, seed=1)
    stats = runner.run_load_phase()
    assert stats.success_rate == 1.0
    cluster.sim.run_for(15)  # replicate
    return cluster, workload, runner


class TestRunStats:
    def test_empty_stats(self):
        stats = RunStats()
        assert stats.success_rate == 0.0
        assert stats.throughput == 0.0

    def test_record_accumulates(self):
        stats = RunStats()
        stats.record("read", True, 0.5)
        stats.record("read", False, None)
        assert stats.issued == 2
        assert stats.succeeded == 1
        assert stats.failed == 1
        assert stats.by_kind == {"read": 2}
        assert stats.latency_summary("read")["count"] == 1

    def test_latency_summary_missing_kind(self):
        assert RunStats().latency_summary("scan")["count"] == 0


class TestLoadPhase:
    def test_load_phase_inserts_all(self, loaded_cluster):
        cluster, workload, _ = loaded_cluster
        for i in range(workload.record_count):
            assert cluster.replication_level(workload.key_for(i)) >= 1

    def test_messages_per_node_positive(self, loaded_cluster):
        _, _, runner = loaded_cluster
        extra = runner.run_transactions(0)
        assert extra.issued == 0  # sanity: empty run records nothing


class TestTransactionPhase:
    def test_mixed_workload_succeeds(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = WORKLOAD_A.scaled(20)
        runner = WorkloadRunner(cluster, workload, seed=2)
        stats = runner.run_transactions(20)
        assert stats.issued == 20
        assert stats.success_rate > 0.9

    def test_version_oracle_monotonic(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = CoreWorkload(
            record_count=5,
            read_proportion=0.0,
            update_proportion=1.0,
            request_distribution="uniform",
            key_prefix="vv",
        )
        runner = WorkloadRunner(cluster, workload, seed=3)
        runner.run_load_phase()
        stats = runner.run_transactions(10)
        assert stats.success_rate == 1.0
        # Updates bumped versions past the insert's version 1.
        assert max(runner.observer.versions.values()) > 1

    def test_rmw_counts_as_single_op(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = WORKLOAD_F.scaled(20)
        runner = WorkloadRunner(cluster, workload, seed=4)
        runner.observer.seed_versions({workload.key_for(i): 1 for i in range(20)})
        stats = runner.run_transactions(10)
        assert stats.issued == 10
        assert stats.success_rate > 0.8

    def test_throughput_positive(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        runner = WorkloadRunner(cluster, WORKLOAD_A.scaled(20), seed=5)
        stats = runner.run_transactions(10)
        assert stats.throughput > 0
        assert stats.duration > 0
        assert stats.messages_per_node > 0

    def test_messages_per_node_divided_by_alive_servers(self, loaded_cluster):
        """Regression: the field used to store the raw handled-messages
        delta; it must be the delta divided by the alive-server count,
        as its name (and the paper's metric) promises."""
        cluster, _, _ = loaded_cluster
        runner = WorkloadRunner(cluster, WORKLOAD_A.scaled(20), seed=6)
        before = cluster.server_message_load()["handled"] * len(cluster.servers)
        stats = runner.run_transactions(10)
        after = cluster.server_message_load()["handled"] * len(cluster.servers)
        alive = sum(1 for s in cluster.servers if s.alive)
        assert stats.messages_per_node == pytest.approx((after - before) / alive)


class TestScanEdgeCases:
    """Regression: a scan with no keys in range used to record a
    ~0-latency success, dragging p50 toward zero."""

    def test_scan_past_record_count_not_issued(self, loaded_cluster):
        cluster, workload, _ = loaded_cluster
        runner = WorkloadRunner(cluster, workload, seed=7)
        stats = RunStats()
        beyond = workload.key_for(workload.record_count + 5)
        runner._execute(Operation(SCAN, beyond, scan_length=3), stats)
        assert stats.not_issued == 1
        assert stats.not_issued_by_kind == {SCAN: 1}
        assert stats.issued == 0
        assert stats.succeeded == 0
        assert stats.latencies == {}
        assert stats.offered == 1

    def test_zero_length_scan_not_issued(self, loaded_cluster):
        cluster, workload, _ = loaded_cluster
        runner = WorkloadRunner(cluster, workload, seed=8)
        stats = RunStats()
        runner._execute(Operation(SCAN, workload.key_for(0), scan_length=0), stats)
        assert stats.not_issued == 1
        assert stats.issued == 0

    def test_in_range_scan_still_succeeds(self, loaded_cluster):
        cluster, workload, _ = loaded_cluster
        runner = WorkloadRunner(cluster, workload, seed=9)
        stats = RunStats()
        runner._execute(Operation(SCAN, workload.key_for(0), scan_length=3), stats)
        assert stats.issued == 1
        assert stats.succeeded == 1
        # A real scan takes real time: at least one network round trip.
        assert stats.latencies[SCAN][0] > 0

    def test_workload_e_mix_runs_clean(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        workload = WORKLOAD_E.scaled(20)
        runner = WorkloadRunner(cluster, workload, seed=10)
        stats = runner.run_transactions(15)
        # Every op is accounted exactly once, issued or shed.
        assert stats.offered == 15
        assert stats.issued + stats.not_issued == 15

"""Tests for the concurrent open-loop workload engine.

Covers the engine mechanics (arrivals, in-flight window, warmup and
measurement windows, composite ops), the scenario-level wiring
(``[workload] mode/clients/rate/...`` validation, the bundled
``open-loop`` spec), and the two reproducibility contracts this PR
adds: same-seed byte-identical replay of a concurrent run, and
``mode="closed", clients=1`` being exactly today's closed-loop
behavior.
"""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import WorkloadSpec, spec_from_dict
from repro.workload.openloop import OpenLoopRunner
from repro.workload.runner import ConsistencyObserver, WorkloadRunner
from repro.workload.ycsb import (
    CoreWorkload,
    WORKLOAD_A,
    WORKLOAD_E,
    WORKLOAD_F,
    WRITE_ONLY,
)

from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def loaded_cluster():
    """A converged cluster with a small write-only load applied."""
    cluster = build_cluster(n=25, seed=17)
    workload = WRITE_ONLY.scaled(20)
    runner = WorkloadRunner(cluster, workload, seed=1)
    stats = runner.run_load_phase()
    assert stats.success_rate == 1.0
    cluster.sim.run_for(15)  # replicate
    return cluster, runner.observer


class TestEngineMechanics:
    def test_open_loop_run_accounts_every_arrival(self, loaded_cluster):
        cluster, observer = loaded_cluster
        engine = OpenLoopRunner(
            cluster,
            WORKLOAD_A.scaled(20),
            clients=4,
            rate=100.0,
            seed=2,
            observer=observer,
        )
        stats = engine.run_transactions(60)
        assert stats.warmup_ops == 0  # no warmup configured
        assert stats.offered == 60
        assert stats.issued + stats.not_issued == 60
        assert stats.success_rate > 0.9
        assert stats.clients == 4
        # Windowed accounting covers exactly the offered operations.
        assert sum(w.offered for w in stats.windows) == 60
        assert sum(w.issued for w in stats.windows) == stats.issued
        assert engine.max_observed_in_flight <= engine.max_in_flight
        # Open loop actually overlaps requests.
        assert engine.max_observed_in_flight > 1
        assert stats.duration > 0
        assert stats.throughput > 0
        assert stats.messages_per_node > 0

    def test_constant_arrivals_match_rate(self, loaded_cluster):
        cluster, _ = loaded_cluster
        engine = OpenLoopRunner(
            cluster, WORKLOAD_A.scaled(20), clients=2, rate=50.0,
            arrival="constant", seed=3,
        )
        stats = engine.run_transactions(100)
        # 100 arrivals spaced 0.02s apart -> ~2s of issue time plus a
        # short drain; the measured arrival rate must track the offer.
        assert stats.offered_rate == pytest.approx(50.0, rel=0.25)

    def test_in_flight_window_sheds_excess_load(self, loaded_cluster):
        cluster, _ = loaded_cluster
        engine = OpenLoopRunner(
            cluster, WORKLOAD_A.scaled(20), clients=1, rate=2000.0,
            max_in_flight=2, seed=4,
        )
        stats = engine.run_transactions(80)
        assert engine.max_observed_in_flight <= 2
        assert stats.not_issued > 0
        assert stats.offered == 80
        # Shed ops are not fake successes: success rate counts issued only.
        assert stats.succeeded <= stats.issued

    def test_warmup_ops_excluded_from_stats(self, loaded_cluster):
        cluster, _ = loaded_cluster
        engine = OpenLoopRunner(
            cluster, WORKLOAD_A.scaled(20), clients=2, rate=100.0,
            arrival="constant", warmup=0.3, seed=5,
        )
        stats = engine.run_transactions(60)
        assert stats.warmup_ops > 0
        assert stats.warmup_ops + stats.offered == 60
        # Windows start at the measurement boundary, not at run start.
        assert stats.windows[0].start == pytest.approx(stats.measure_start)

    def test_rmw_and_scan_composites(self, loaded_cluster):
        cluster, _ = loaded_cluster
        observer = ConsistencyObserver()
        observer.seed_versions({f"user{i}": 1 for i in range(20)})
        rmw = OpenLoopRunner(
            cluster, WORKLOAD_F.scaled(20), clients=2, rate=40.0, seed=6,
            observer=observer,
        )
        stats = rmw.run_transactions(20)
        assert stats.offered == 20
        assert stats.success_rate > 0.8
        # RMW latency spans read + write: at least two network RTTs.
        for latency in stats.latencies.get("read-modify-write", []):
            assert latency > 0.02
        scan = OpenLoopRunner(
            cluster, WORKLOAD_E.scaled(20), clients=2, rate=40.0, seed=7,
        )
        scan_stats = scan.run_transactions(20)
        assert scan_stats.offered == 20
        assert scan_stats.succeeded > 0

    def test_same_seed_engine_runs_identical(self):
        """Two fresh clusters, same seeds -> identical engine outcomes."""
        outcomes = []
        for _ in range(2):
            cluster = build_cluster(n=20, seed=23)
            workload = WORKLOAD_A.scaled(15)
            loader = WorkloadRunner(cluster, workload, seed=1)
            loader.run_load_phase()
            engine = OpenLoopRunner(
                cluster, workload, clients=4, rate=80.0, seed=9,
                observer=loader.observer,
            )
            stats = engine.run_transactions(50)
            outcomes.append(
                (
                    stats.issued,
                    stats.not_issued,
                    stats.succeeded,
                    stats.stale_reads,
                    stats.duration,
                    stats.latencies,
                    [(w.offered, w.succeeded) for w in stats.windows],
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_engine_validation(self, loaded_cluster):
        cluster, _ = loaded_cluster
        workload = WORKLOAD_A.scaled(20)
        with pytest.raises(ConfigurationError):
            OpenLoopRunner(cluster, workload, rate=0.0)
        with pytest.raises(ConfigurationError):
            OpenLoopRunner(cluster, workload, arrival="bursty")
        with pytest.raises(ConfigurationError):
            OpenLoopRunner(cluster, workload, clients=0)


class TestConsistencyObserverSnapshots:
    def test_issue_time_snapshot_prevents_retroactive_staleness(self):
        """A write acked while a read is in flight must not make the
        read stale — even for a key with nothing acked at issue time
        (expected=None is a real snapshot, not 'no snapshot')."""
        obs = ConsistencyObserver()
        snapshot = obs.expected_version("k")
        assert snapshot is None
        version = obs.next_version("k")
        obs.write_completed("k", version, succeeded=True)  # ack lands mid-read
        assert obs.read_completed("k", 1.0, True, None, expected=snapshot) is False
        # The closed loop passes no snapshot and consults the map now:
        # the same not-found read after an acked write IS stale there.
        assert obs.read_completed("k", 2.0, True, None) is True

    def test_snapshot_still_detects_genuinely_stale_reads(self):
        obs = ConsistencyObserver()
        obs.write_completed("k", obs.next_version("k"), succeeded=True)
        snapshot = obs.expected_version("k")  # 1, acked before issue
        assert obs.read_completed("k", 1.0, True, None, expected=snapshot) is True
        assert obs.read_completed("k", 2.0, True, 1, expected=snapshot) is False


class TestWorkloadSpecValidation:
    def test_open_mode_needs_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="open", clients=4, rate=0.0)

    def test_closed_mode_is_single_client(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="closed", clients=4)

    def test_unknown_mode_and_arrival(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="half-open")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="open", rate=10.0, arrival="bursty")

    def test_open_spec_round_trips(self):
        spec = load_bundled("open-loop")
        assert spec.workload.mode == "open"
        assert spec.workload.clients == 4
        clone = spec_from_dict(spec.to_dict())
        assert clone.workload == spec.workload


class TestScenarioIntegration:
    def test_open_loop_scenario_same_seed_byte_identical(self):
        spec = load_bundled("open-loop").scaled(
            nodes=20, record_count=10, operation_count=80
        )
        r1 = run_scenario(spec, seed=5)
        r2 = run_scenario(spec, seed=5)
        assert r1.summary_json() == r2.summary_json()
        assert r1.metrics["txn_offered"] >= r1.metrics["txn_ops"]
        assert r1.metrics["txn_offered_rate"] > 0
        assert r1.metrics["txn_throughput"] > 0

    def test_closed_defaults_reproduce_legacy_runner(self):
        """A spec written before the open-loop fields existed must run
        byte-identically to one spelling the closed-loop defaults out —
        the bundled specs' replay contract."""
        base = load_bundled("baseline").scaled(
            nodes=20, record_count=8, operation_count=20
        )
        data = base.to_dict()
        # Strip the new fields entirely: this is the pre-PR file format.
        for field in ("mode", "clients", "rate", "arrival", "warmup",
                      "max_in_flight", "window"):
            del data["workload"][field]
        legacy = spec_from_dict(data)
        explicit = spec_from_dict(
            dict(base.to_dict(), workload=dict(data["workload"], mode="closed", clients=1))
        )
        assert run_scenario(legacy, seed=3).summary_json() == \
            run_scenario(explicit, seed=3).summary_json()

"""Property-based round-trip tests for scenario serialisation.

For randomized valid :class:`~repro.scenarios.spec.ScenarioSpec`s:
``spec -> scenario_to_toml -> tomllib -> spec_from_dict`` must be the
identity (dataclass equality, which compares every nested sub-spec and
float exactly). This is the contract the regression exporter rides on —
a reproducer written today must describe the identical experiment when
replayed years later.

Plus rejection tests: malformed ``[[faults]]`` entries (end before
start, unknown injector kinds, empty target groups, unknown keys) must
fail loudly at parse time, never run half-understood.
"""

import tomllib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.spec import FAULT_KINDS
from repro.scenarios.spec import (
    WORKLOAD_PRESETS,
    ChurnSpec,
    FaultSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
    spec_from_dict,
)
from repro.search import dumps_toml, scenario_to_toml

# Text the TOML emitter escapes correctly (incl. quotes, backslashes,
# tabs and newlines — the characters most likely to break naive quoting).
SAFE_TEXT = st.text(
    alphabet='abcdefghij XYZ-_.:/\\"\n\t',
    min_size=1,
    max_size=30,
)

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(FAULT_KINDS))
    entry = dict(
        kind=kind,
        start=draw(st.floats(min_value=0.0, max_value=50.0, **finite)),
        duration=draw(st.floats(min_value=0.1, max_value=60.0, **finite)),
        fraction=draw(st.floats(min_value=0.01, max_value=0.99, **finite)),
    )
    if kind == "partition":
        entry["symmetric"] = draw(st.booleans())
        groups = draw(
            st.lists(
                st.lists(st.integers(0, 99), min_size=1, max_size=3, unique=True),
                max_size=2,
            )
        )
        if groups:
            entry["groups"] = groups
    if kind in ("degrade", "crash_recover"):
        nodes = draw(st.lists(st.integers(0, 99), max_size=3, unique=True))
        if nodes:
            entry["nodes"] = nodes
    if kind == "degrade":
        entry["loss"] = draw(st.floats(min_value=0.01, max_value=1.0, **finite))
        entry["extra_latency"] = draw(st.floats(min_value=0.0, max_value=2.0, **finite))
    if kind == "burst_loss":
        entry["loss"] = draw(st.floats(min_value=0.01, max_value=1.0, **finite))
    return FaultSpec(**entry)


@st.composite
def churn_specs(draw):
    kind = draw(st.sampled_from(["poisson", "session", "correlated", "trace"]))
    spec = ChurnSpec(
        kind=kind,
        start=draw(st.floats(min_value=0.0, max_value=30.0, **finite)),
        duration=draw(st.floats(min_value=0.0, max_value=60.0, **finite)),
    )
    if kind == "poisson":
        spec.join_rate = draw(st.floats(min_value=0.0, max_value=2.0, **finite))
        spec.leave_rate = draw(st.floats(min_value=0.0, max_value=2.0, **finite))
    if kind == "session":
        spec.mean_session = draw(st.floats(min_value=1.0, max_value=600.0, **finite))
    if kind == "correlated":
        spec.fraction = draw(st.floats(min_value=0.0, max_value=1.0, **finite))
    if kind == "trace":
        spec.events = draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=60.0, **finite),
                    st.sampled_from(["join", "leave"]),
                ).map(list),
                max_size=4,
            )
        )
    return spec


@st.composite
def latency_specs(draw):
    kind = draw(st.sampled_from(["fixed", "uniform", "lognormal"]))
    return LatencySpec(
        kind=kind,
        latency=draw(st.floats(min_value=0.001, max_value=0.5, **finite)),
        low=draw(st.floats(min_value=0.001, max_value=0.01, **finite)),
        high=draw(st.floats(min_value=0.02, max_value=0.5, **finite)),
        median=draw(st.floats(min_value=0.005, max_value=0.1, **finite)),
        sigma=draw(st.floats(min_value=0.1, max_value=2.0, **finite)),
        cap=draw(st.floats(min_value=0.5, max_value=5.0, **finite)),
    )


@st.composite
def scenario_specs(draw):
    workload = WorkloadSpec(
        preset=draw(st.sampled_from(sorted(WORKLOAD_PRESETS))),
        record_count=draw(st.integers(1, 500)),
        operation_count=draw(st.integers(0, 500)),
        acks_required=draw(st.integers(1, 3)),
        op_timeout=draw(st.floats(min_value=1.0, max_value=60.0, **finite)),
    )
    return ScenarioSpec(
        name=draw(SAFE_TEXT),
        description=draw(SAFE_TEXT),
        stack=draw(st.sampled_from(["core", "dht", "oracle"])),
        nodes=draw(st.integers(1, 500)),
        num_slices=draw(st.integers(1, 10)),
        replication=draw(st.integers(1, 5)),
        seed=draw(st.integers(0, 2**64 - 1)),
        loss_rate=draw(st.floats(min_value=0.0, max_value=0.5, **finite)),
        warmup=draw(st.floats(min_value=0.0, max_value=30.0, **finite)),
        settle=draw(st.floats(min_value=0.0, max_value=30.0, **finite)),
        cooldown=draw(st.floats(min_value=0.0, max_value=10.0, **finite)),
        latency=draw(latency_specs()),
        churn=draw(st.none() | churn_specs()),
        faults=draw(st.lists(fault_specs(), max_size=3)),
        workload=workload,
        metrics=tuple(
            draw(
                st.lists(
                    st.sampled_from(["workload", "population", "consistency"]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
    )


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(spec=scenario_specs())
    def test_spec_toml_spec_is_identity(self, spec):
        text = scenario_to_toml(spec)
        recovered = spec_from_dict(tomllib.loads(text))
        assert recovered == spec

    @settings(max_examples=80, deadline=None)
    @given(spec=scenario_specs())
    def test_emitted_toml_is_stable(self, spec):
        """Emitting, parsing, and re-emitting yields the same bytes —
        the property the byte-identical re-export contract rests on."""
        first = scenario_to_toml(spec)
        second = scenario_to_toml(spec_from_dict(tomllib.loads(first)))
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(spec=scenario_specs())
    def test_dict_round_trip_matches_toml_round_trip(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec


class TestEmitter:
    def test_rejects_non_finite_floats(self):
        with pytest.raises(ConfigurationError, match="non-finite"):
            dumps_toml({"x": float("nan")})

    def test_rejects_unserialisable_values(self):
        with pytest.raises(ConfigurationError, match="cannot serialise"):
            dumps_toml({"x": object()})

    def test_quotes_awkward_keys(self):
        text = dumps_toml({"a key": 1, "plain": 2})
        assert tomllib.loads(text) == {"a key": 1, "plain": 2}


class TestMalformedFaults:
    def base(self, **fault):
        return {"name": "x", "faults": [fault]}

    def test_end_before_start_rejected(self):
        with pytest.raises(ConfigurationError, match="must be after start"):
            spec_from_dict(self.base(kind="partition", start=5.0, end=3.0))

    def test_end_equal_to_start_rejected(self):
        with pytest.raises(ConfigurationError, match="must be after start"):
            spec_from_dict(self.base(kind="partition", start=5.0, end=5.0))

    def test_end_and_duration_together_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            spec_from_dict(self.base(kind="partition", start=1.0, end=4.0, duration=3.0))

    def test_end_sugar_equivalent_to_duration(self):
        via_end = spec_from_dict(self.base(kind="partition", start=2.0, end=8.0))
        via_duration = spec_from_dict(
            self.base(kind="partition", start=2.0, duration=6.0)
        )
        assert via_end.faults == via_duration.faults

    def test_unknown_injector_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            spec_from_dict(self.base(kind="meteor_strike"))

    def test_empty_target_group_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            spec_from_dict(self.base(kind="partition", groups=[[1, 2], []]))

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault fields"):
            spec_from_dict(self.base(kind="partition", blast_radius=3))

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration must be positive"):
            spec_from_dict(self.base(kind="burst_loss", loss=0.5, duration=-1.0))

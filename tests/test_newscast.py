"""Tests for the Newscast Peer Sampling Service."""

from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.diagnostics import is_connected, overlay_graph
from repro.pss.newscast import NewscastService
from repro.sim.node import Node
from repro.sim.simulator import Simulation


def build_newscast(n=40, rounds=20.0, seed=2):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(NewscastService(view_size=10, period=1.0))
        return node

    nodes = sim.add_nodes(factory, n)
    bootstrap_random_views(nodes, degree=4, rng=sim.rng_registry.stream("boot"))
    sim.start_all()
    sim.run_for(rounds)
    return sim, nodes


def test_views_fill():
    _, nodes = build_newscast()
    assert all(len(n.get_service(NewscastService).view) >= 8 for n in nodes)


def test_view_never_contains_self():
    _, nodes = build_newscast()
    for node in nodes:
        assert node.id not in node.get_service(NewscastService).peers()


def test_view_respects_capacity():
    _, nodes = build_newscast()
    assert all(len(n.get_service(NewscastService).view) <= 10 for n in nodes)


def test_overlay_connected():
    _, nodes = build_newscast(n=60)
    assert is_connected(overlay_graph(nodes))


def test_fresh_entries_dominate():
    # Newscast keeps the freshest union: after mixing, view entries
    # should be young relative to the number of elapsed rounds.
    _, nodes = build_newscast(rounds=30)
    ages = [
        d.age
        for node in nodes
        for d in node.get_service(NewscastService).view.descriptors()
    ]
    assert sum(ages) / len(ages) < 10


def test_dead_nodes_purged_by_freshness():
    sim, nodes = build_newscast(n=40, rounds=15)
    victims = {n.id for n in nodes[:8]}
    for node in nodes[:8]:
        node.crash()
    sim.run_for(40)
    survivors = nodes[8:]
    refs = sum(
        1
        for node in survivors
        for peer in node.get_service(NewscastService).peers()
        if peer in victims
    )
    total = sum(len(n.get_service(NewscastService).peers()) for n in survivors)
    assert refs / total < 0.1

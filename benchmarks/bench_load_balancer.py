"""A3 — Load Balancer strategies (paper Sections V and VII).

The paper's Load Balancer hands clients a random contact node and
Section VII projects the optimisation: a cache that knows slice members
would cut dissemination "to the minimum". This bench measures messages
per operation and latency for random, round-robin and the slice-aware
cache, on the same workload.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.workload.runner import WorkloadRunner
from repro.workload.ycsb import CoreWorkload

from conftest import report

N = 100
OPS = 150


def run_strategy(strategy: str, seed: int = 51):
    config = DataFlasksConfig(num_slices=10)
    cluster = DataFlasksCluster(n=N, config=config, seed=seed)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    client = cluster.new_client(lb_strategy=strategy)
    # Read-heavy mix over a pre-loaded working set: exactly where a
    # slice cache pays off (repeat visits to the same slices).
    workload = CoreWorkload(
        record_count=50,
        read_proportion=0.9,
        update_proportion=0.1,
        request_distribution="zipfian",
    )
    runner = WorkloadRunner(cluster, workload, client=client, seed=seed)
    runner.run_load_phase()
    cluster.sim.run_for(15)  # replicate fully before measuring

    before = cluster.server_message_load()["handled"]
    stats = runner.run_transactions(OPS)
    after = cluster.server_message_load()["handled"]

    row = {
        "strategy": strategy,
        "msgs_per_node": after - before,
        "success_rate": stats.success_rate,
        "read_p50_latency": stats.latency_summary("read")["p50"],
        "throughput": stats.throughput,
    }
    lb = client.load_balancer
    if hasattr(lb, "cache_hits"):
        total = lb.cache_hits + lb.cache_misses
        row["cache_hit_rate"] = lb.cache_hits / total if total else 0.0
    else:
        row["cache_hit_rate"] = ""
    return row


@pytest.mark.benchmark(group="ablation-loadbalancer")
def test_load_balancer_strategies(benchmark):
    def sweep():
        return [run_strategy(s) for s in ("random", "round-robin", "slice-aware")]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A3 — load balancer strategies (read-heavy zipfian, N=100, k=10)\n"
        + rows_to_table(
            rows,
            [
                "strategy",
                "msgs_per_node",
                "read_p50_latency",
                "success_rate",
                "cache_hit_rate",
                "throughput",
            ],
        )
    )
    by_name = {r["strategy"]: r for r in rows}
    assert all(r["success_rate"] >= 0.95 for r in rows)
    # The Section VII prediction: slice-aware routing slashes per-node
    # message load versus the random baseline.
    assert (
        by_name["slice-aware"]["msgs_per_node"]
        < 0.7 * by_name["random"]["msgs_per_node"]
    )
    assert by_name["slice-aware"]["cache_hit_rate"] > 0.5

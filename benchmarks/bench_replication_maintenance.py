"""A5 — replication-level maintenance (paper Section VII, implemented).

The paper lists maintaining the replication level under churn as open
work; our anti-entropy service implements it, and adaptive slicing
refills decimated slices. The bench picks one slice, loads keys that map
to it, kills **all but one** of its members (a near-total correlated
failure of one slice — Section IV-A's nightmare case), and tracks the
keys' replication level over time. Recovery has two phases: slicing
rebalances survivors into the emptied slice, then anti-entropy transfers
the state to the newcomers from the lone survivor.
"""

import pytest

from repro.analysis.tables import format_series
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.slicing.base import SlicingService

from conftest import report

N = 60
K = 5
KEYS = 8


def keys_in_slice(cluster, slice_id, count):
    keys = []
    i = 0
    while len(keys) < count:
        key = f"heal:{i}"
        if cluster.target_slice(key) == slice_id:
            keys.append(key)
        i += 1
    return keys


@pytest.mark.benchmark(group="ablation-replication")
def test_replication_heals_after_slice_decimation(benchmark):
    def run():
        config = DataFlasksConfig(num_slices=K, antientropy_period=2.0)
        cluster = DataFlasksCluster(n=N, config=config, seed=71)
        cluster.warm_up(10)
        cluster.wait_for_slices(timeout=90)
        client = cluster.new_client()
        target_slice = 2
        keys = keys_in_slice(cluster, target_slice, KEYS)
        for key in keys:
            cluster.put_sync(client, key, b"x", 1)
        cluster.sim.run_for(30)

        baseline = sum(cluster.replication_level(k) for k in keys) / KEYS
        members = [
            s
            for s in cluster.alive_servers()
            if s.get_service(SlicingService).my_slice() == target_slice
        ]
        for victim in members[:-1]:
            victim.crash()
        killed = len(members) - 1

        timeline = []
        for elapsed in (0, 20, 40, 80, 160):
            if timeline:
                cluster.sim.run_for(elapsed - timeline[-1][0])
            mean_level = sum(cluster.replication_level(k) for k in keys) / KEYS
            timeline.append((elapsed, mean_level))
        return baseline, killed, timeline

    baseline, killed, timeline = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "A5 — replication healing after decimating one slice "
        f"(killed {killed} members, one survivor)\n"
        + f"baseline mean replication level: {baseline:.2f}\n"
        + format_series(
            "mean replication level vs seconds since failure",
            "t(s)",
            "replicas",
            timeline,
        )
    )
    levels = dict(timeline)
    assert levels[0] >= 1.0  # persistence held: the survivor kept the data
    # Two-phase recovery: survivors migrate into the emptied slice and
    # anti-entropy re-replicates — a strong multiple of the post-failure
    # level within 160 simulated seconds.
    assert levels[160] >= 4.0
    assert levels[160] >= 3 * levels[0]
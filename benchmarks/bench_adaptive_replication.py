"""A8 — autonomous replication management (paper Section IV-C).

The paper flags slice-count tuning as the future-work knob trading
replication factor against capacity. Our ReplicationManager closes the
loop: size estimation (gossiped min-hash sketch) → quantised ``k`` →
reconfiguration → re-homing. The bench grows the cluster 3× and checks
the system converges to the right ``k`` octave on its own, without
losing data.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig

from conftest import report

START_N = 40
GROWN_N = 120
TARGET_R = 10


@pytest.mark.benchmark(group="ablation-autoslice")
def test_autonomous_reconfiguration_on_growth(benchmark):
    def run():
        config = DataFlasksConfig(
            num_slices=4,
            auto_replication_target=TARGET_R,
            auto_replication_period=5.0,
        )
        cluster = DataFlasksCluster(n=START_N, config=config, seed=97)
        cluster.warm_up(10)
        cluster.wait_for_slices(timeout=90)
        client = cluster.new_client(timeout=4.0, retries=3)
        keys = [f"grow:{i}" for i in range(6)]
        for key in keys:
            op = client.put(key, b"v", 1)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
        cluster.sim.run_for(80)

        def snapshot(phase):
            ks = [s.config.num_slices for s in cluster.alive_servers()]
            mode = max(set(ks), key=ks.count)
            return {
                "phase": phase,
                "alive": len(ks),
                "k_mode": mode,
                "k_agreement": ks.count(mode) / len(ks),
            }

        before = snapshot("40 nodes")
        controller = cluster.churn_controller()
        for _ in range(GROWN_N - START_N):
            controller.join()
        cluster.sim.run_for(220)
        after = snapshot("120 nodes")

        ok = 0
        for key in keys:
            op = client.get(key)
            cluster.sim.run_until_condition(lambda: op.done, timeout=60)
            ok += op.succeeded
        return [before, after], ok, len(keys)

    rows, reads_ok, total_keys = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "A8 — autonomous k reconfiguration under 3x growth "
        f"(target replication {TARGET_R}; reads ok after: {reads_ok}/{total_keys})\n"
        + rows_to_table(rows, ["phase", "alive", "k_mode", "k_agreement"])
    )
    before, after = rows
    # 40/10 = 4; 120/10 = 12 -> octave 8 or 16.
    assert before["k_mode"] in (2, 4, 8)
    assert after["k_mode"] > before["k_mode"]  # the system noticed growth
    assert after["k_agreement"] >= 0.85
    assert reads_ok == total_keys  # no data lost across reconfiguration
"""A10 — core vs dht vs oracle: the vs-ideal sweep.

The backend registry makes the paper's comparison three-way: the same
correlated mass failure, the same YCSB mix and the same seeds run
against DATAFLASKS, the Chord baseline, and the idealized oracle store.
The oracle column is the yardstick: its availability is the share of
damage *any* store pays for living on this network with dead servers,
and its consistency numbers are zero by construction — so the gap
between a real stack and the oracle is exactly the protocol's cost.

The sweep is registry-driven (``list_backends()``): registering a
fourth backend adds a row here without touching this file.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.backends import list_backends
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ChurnSpec, ScenarioSpec, WorkloadSpec

from conftest import report

N = 60
KEYS = 20
OPS = 40
KILL_FRACTION = 0.3


def comparison_spec(stack: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"vs-ideal-{stack}",
        stack=stack,
        nodes=N,
        num_slices=6,
        replication=3,
        settle=20.0,
        churn=ChurnSpec(kind="correlated", fraction=KILL_FRACTION),
        workload=WorkloadSpec(preset="ycsb-a", record_count=KEYS, operation_count=OPS),
        metrics=("workload", "population", "replication", "consistency"),
    )


def run_stack(stack: str, seed: int) -> dict:
    metrics = run_scenario(comparison_spec(stack), seed=seed).metrics
    return {
        "backend": stack,
        "reads_ok": metrics["txn_success_rate"],
        "stale_reads": metrics["stale_reads"],
        "lost_updates": metrics["lost_updates"],
        "lost_objects": metrics["lost_objects"],
        "replication_mean": metrics["replication_mean"],
    }


@pytest.mark.benchmark(group="ablation-backends")
def test_backend_comparison_vs_ideal(benchmark):
    def sweep():
        return [run_stack(stack, seed=73) for stack in list_backends()]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"A10 — core vs dht vs oracle under a {int(KILL_FRACTION * 100)}% "
        f"correlated failure (N={N})\n"
        + rows_to_table(
            rows,
            [
                "backend",
                "reads_ok",
                "stale_reads",
                "lost_updates",
                "lost_objects",
                "replication_mean",
            ],
        )
    )
    by_backend = {r["backend"]: r for r in rows}
    oracle = by_backend["oracle"]
    # The ground truth: the ideal store never pays a consistency cost.
    assert oracle["stale_reads"] == 0.0
    assert oracle["lost_updates"] == 0.0
    assert oracle["lost_objects"] == 0.0
    # Nobody beats the ideal; the epidemic store tracks it closely while
    # the R=3 ring cannot (30% dead > R-1 without repair time).
    for stack in ("core", "dht"):
        assert by_backend[stack]["reads_ok"] <= oracle["reads_ok"] + 1e-9
    assert by_backend["core"]["reads_ok"] >= by_backend["dht"]["reads_ok"]

"""Figure 4 — messages per node, slices proportional to system size.

Paper setup: the number of slices grows with the node count (constant
replication factor), so the extra nodes "enlarge the system capacity";
we realise that by loading proportionally more records (10 per slice).
Expected shape: per-node message load *grows* with system size and sits
well above the Figure 3 curve at the large end — the paper reports
~200 → ~1,400 messages per node over 500 → 3,000 nodes.
"""

import pytest

from repro.analysis.experiments import run_proportional_slices
from repro.analysis.tables import format_series, rows_to_table

from conftest import report

COLUMNS = [
    "n",
    "num_slices",
    "ops",
    "messages_per_node",
    "request_messages_per_node",
    "success_rate",
]


@pytest.mark.benchmark(group="fig4")
def test_fig4_proportional_slices(benchmark):
    rows = benchmark.pedantic(run_proportional_slices, rounds=1, iterations=1)
    series = [(r["n"], r["messages_per_node"]) for r in rows]
    report(
        "Figure 4 — avg messages per node, slices proportional to nodes\n"
        + rows_to_table(rows, COLUMNS)
        + "\n"
        + format_series(
            "series (paper: growing, ~200 -> ~1400 over a 6x size increase)",
            "nodes",
            "msgs/node",
            series,
        )
    )
    assert all(r["success_rate"] >= 0.95 for r in rows)
    values = [r["messages_per_node"] for r in rows]
    # Shape: clear growth across the sweep (the capacity-scaling regime),
    # unlike Figure 3's flat curve.
    assert values[-1] > 2.0 * values[0]
    # And the curve is monotone-ish: each point at least 80% of its
    # predecessor (noise guard, growth overall).
    assert all(b > 0.8 * a for a, b in zip(values, values[1:]))

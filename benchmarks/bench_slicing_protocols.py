"""A1 — slicing protocol ablation (paper Sections IV-A and V).

Compares the four Slice Manager implementations on partition quality,
messaging cost, and — the paper's key argument — recovery from a
*correlated failure* that wipes out an entire slice: adaptive protocols
rebalance, the hash "coin toss" baseline cannot.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation
from repro.slicing import (
    DSleadSlicing,
    OrderedSlicing,
    SliverSlicing,
    StaticSlicing,
    assignment_accuracy,
    slice_histogram,
    slice_imbalance,
)
from repro.slicing.base import SlicingService

from conftest import report

PROTOCOLS = [
    ("static", StaticSlicing, {}),
    ("ordered", OrderedSlicing, {}),
    ("sliver", SliverSlicing, {}),
    ("dslead", DSleadSlicing, {}),
]

N = 100
K = 5
CONVERGE_TIME = 80.0
RECOVER_TIME = 120.0


def run_protocol(name, cls, kwargs, seed=31):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=12, shuffle_length=6))
        node.add_service(
            cls(num_slices=K, attribute=float((node_id * 13) % 101), **kwargs)
        )
        return node

    nodes = sim.add_nodes(factory, N)
    bootstrap_random_views(nodes, degree=5, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(CONVERGE_TIME)

    accuracy = assignment_accuracy(nodes)
    imbalance = slice_imbalance(nodes)
    msgs = sim.message_load()["handled"] / CONVERGE_TIME

    # Correlated failure: kill every node of slice 0.
    victims = [n for n in nodes if n.get_service(SlicingService).my_slice() == 0]
    for victim in victims:
        victim.crash()
    sim.run_for(RECOVER_TIME)
    survivors = [n for n in nodes if n.alive]
    refilled = slice_histogram(survivors).get(0, 0)

    return {
        "protocol": name,
        "accuracy": accuracy,
        "imbalance": imbalance,
        "msgs_per_node_per_s": msgs,
        "slice0_killed": len(victims),
        "slice0_refilled": refilled,
    }


@pytest.mark.benchmark(group="ablation-slicing")
def test_slicing_protocol_ablation(benchmark):
    def sweep():
        return [run_protocol(*p) for p in PROTOCOLS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A1 — slicing protocols: quality, cost, correlated-failure recovery\n"
        + rows_to_table(
            rows,
            [
                "protocol",
                "accuracy",
                "imbalance",
                "msgs_per_node_per_s",
                "slice0_killed",
                "slice0_refilled",
            ],
        )
    )
    by_name = {r["protocol"]: r for r in rows}
    # The paper's claim: coin-toss slicing never refills a dead slice,
    # rank-estimating protocols do.
    assert by_name["static"]["slice0_refilled"] == 0
    assert by_name["sliver"]["slice0_refilled"] > 0
    assert by_name["dslead"]["slice0_refilled"] > 0
    # All adaptive protocols beat random assignment accuracy (1/K = 0.2).
    for name in ("ordered", "sliver", "dslead"):
        assert by_name[name]["accuracy"] > 0.4

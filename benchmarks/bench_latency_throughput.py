"""Latency vs offered load — the open-loop knee curve per backend.

Sweeps the open-loop engine's offered rate over each backend and
records delivered throughput and latency percentiles per point, the
standard way to present the paper's throughput/latency results: as the
offered rate approaches a backend's capacity, delivered throughput
flattens and tail latency bends upward — the *knee*. Each point is one
deterministic scenario run (``mode="open"``, ``clients`` concurrent
client nodes, Poisson arrivals), so the artifact is reproducible
byte-for-byte at a fixed seed on any host; only wall-clock varies.

Usage::

    PYTHONPATH=src python benchmarks/bench_latency_throughput.py             # full sweep
    PYTHONPATH=src python benchmarks/bench_latency_throughput.py --smoke     # CI-sized
    PYTHONPATH=src python benchmarks/bench_latency_throughput.py \
        --backends core dht --rates 20 40 80 --clients 8

Operation counts scale with the rate (``rate * duration``), so every
point measures the same simulated span and the per-point offered rates
are comparable.

Artifact format (``BENCH_latency.json``)::

    {
      "bench": "latency_throughput",
      "mode": "full" | "smoke" | "partial",
      "seed": 5,
      "clients": 4,
      "rates": [10, ...],
      "results": [
        {"backend": "core", "rate": 10.0, "offered_rate": 10.02,
         "delivered_rate": 9.98, "success_rate": 1.0, "not_issued": 0.0,
         "latency_read_p50": 0.03, "latency_read_p99": 0.04, ...},
        ...
      ],
      "knee": {"core": {...the sustained row...}, "dht": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.loadcurve import knee_point, load_curve_row
from repro.analysis.tables import format_series, rows_to_table
from repro.backends import list_backends
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec

DEFAULT_BACKENDS = ["core", "dht"]
DEFAULT_RATES = [10.0, 20.0, 40.0, 80.0, 160.0, 320.0]
SMOKE_RATES = [20.0, 60.0]
DEFAULT_NODES = 60
SMOKE_NODES = 30
DEFAULT_DURATION = 20.0  # measured seconds per point (plus warmup)
SMOKE_DURATION = 4.0
WARMUP = 2.0
CLIENTS = 4
SEED = 5
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_latency.json"
)


def knee_spec(
    stack: str, rate: float, nodes: int, clients: int, duration: float
) -> ScenarioSpec:
    """One offered-load point: YCSB-A over ``duration`` measured seconds."""
    return ScenarioSpec(
        name=f"latency-knee-{stack}-{rate:g}",
        stack=stack,
        nodes=nodes,
        num_slices=max(2, nodes // 10),
        replication=3,
        settle=10.0,
        workload=WorkloadSpec(
            preset="ycsb-a",
            record_count=nodes,
            operation_count=int(rate * (WARMUP + duration)),
            mode="open",
            clients=clients,
            rate=rate,
            arrival="poisson",
            warmup=WARMUP,
            window=duration / 2,
            op_timeout=10.0,
        ),
        metrics=("workload",),
    )


def run_point(
    stack: str, rate: float, nodes: int, clients: int, duration: float, seed: int
) -> Dict[str, float]:
    spec = knee_spec(stack, rate, nodes, clients, duration)
    start = time.perf_counter()
    result = run_scenario(spec, seed=seed)
    wall = time.perf_counter() - start
    row = load_curve_row(result.metrics)
    row["backend"] = stack
    row["rate"] = rate
    row["wall_s"] = round(wall, 3)
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rates", type=float, nargs="+", default=None,
        help=f"offered rates (ops/s) to sweep (default {DEFAULT_RATES})",
    )
    parser.add_argument(
        "--backends", nargs="+", default=None,
        help=f"backends to sweep (default {DEFAULT_BACKENDS})",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument(
        "--clients", type=int, default=CLIENTS,
        help=f"concurrent client nodes per point (default {CLIENTS})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized run: rates {SMOKE_RATES}, {SMOKE_NODES} nodes",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="artifact path (default: BENCH_latency.json at the repo root)",
    )
    args = parser.parse_args(argv)

    rates = args.rates or (SMOKE_RATES if args.smoke else DEFAULT_RATES)
    nodes = args.nodes or (SMOKE_NODES if args.smoke else DEFAULT_NODES)
    duration = SMOKE_DURATION if args.smoke else DEFAULT_DURATION
    backends = args.backends or DEFAULT_BACKENDS
    unknown = set(backends) - set(list_backends())
    if unknown:
        parser.error(f"unknown backends {sorted(unknown)}; registered: {list_backends()}")

    results: List[Dict[str, float]] = []
    knees: Dict[str, Optional[Dict[str, float]]] = {}
    for stack in backends:
        rows = []
        for rate in rates:
            print(f"measuring {stack} at {rate:g} ops/s offered ...", flush=True)
            row = run_point(stack, rate, nodes, args.clients, duration, args.seed)
            print(
                f"  offered {row['offered_rate']:.1f}/s -> delivered "
                f"{row['delivered_rate']:.1f}/s "
                f"(read p99 {row.get('latency_read_p99', 0.0) * 1000:.1f} ms, "
                f"{row['wall_s']:.1f}s wall)",
                flush=True,
            )
            rows.append(row)
        results.extend(rows)
        knees[stack] = knee_point(rows)
        columns = ["rate", "offered_rate", "delivered_rate", "success_rate"]
        columns += sorted(k for k in rows[0] if k.startswith("latency_"))
        print(rows_to_table(rows, columns))
        print(
            format_series(
                f"{stack}: delivered vs offered (knee where it flattens)",
                "offered ops/s",
                "delivered ops/s",
                [(r["rate"], round(r["delivered_rate"], 1)) for r in rows],
            )
        )
        if knees[stack]:
            print(f"{stack} knee: sustains {knees[stack]['offered_rate']:.1f} ops/s\n")
        else:
            print(f"{stack} knee: saturated at every measured rate\n")

    # "full"/"smoke" only for the documented configurations — any
    # customised run (rates, nodes, clients, seed) is "partial" so the
    # committed baseline can't be overwritten under a false flag.
    default_config = args.clients == CLIENTS and args.seed == SEED
    if args.smoke and args.rates is None and args.nodes is None and default_config:
        mode = "smoke"
    elif rates == DEFAULT_RATES and nodes == DEFAULT_NODES and default_config:
        mode = "full"
    else:
        mode = "partial"
    artifact = {
        "bench": "latency_throughput",
        "mode": mode,
        "seed": args.seed,
        "clients": args.clients,
        "nodes": nodes,
        "rates": rates,
        "results": results,
        "knee": knees,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A4 — churn resilience: DATAFLASKS vs the Chord DHT baseline.

The paper's motivating claim (Sections I and III): epidemic substrates
keep serving under churn levels that break structured overlays. Both
systems get the same treatment — load a working set, let replication
settle, then apply increasingly brutal instantaneous failures and
measure read availability immediately after (no grace period: the point
is behaviour *while* the overlay is wounded).
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.dht.cluster import DhtCluster

from conftest import report

N = 80
KEYS = 15
KILL_FRACTIONS = (0.1, 0.3, 0.5)


def measure_availability(cluster, client, keys):
    ok = 0
    for key in keys:
        op = client.get(key)
        cluster.sim.run_until_condition(lambda: op.done, timeout=40)
        ok += op.done and op.succeeded
    return ok / len(keys)


def run_dataflasks(kill_fraction: float, seed: int):
    config = DataFlasksConfig(num_slices=8)
    cluster = DataFlasksCluster(n=N, config=config, seed=seed)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    client = cluster.new_client(timeout=4.0, retries=2)
    keys = [f"avail:{i}" for i in range(KEYS)]
    for i, key in enumerate(keys):
        cluster.put_sync(client, key, b"payload", 1)
    cluster.sim.run_for(25)  # anti-entropy replication

    cluster.churn_controller().kill_fraction(kill_fraction)
    return measure_availability(cluster, client, keys)


def run_dht(kill_fraction: float, seed: int):
    cluster = DhtCluster(n=N, replication=3, seed=seed)
    cluster.stabilize(15)
    client = cluster.new_client(timeout=4.0, retries=2)
    keys = [f"avail:{i}" for i in range(KEYS)]
    for key in keys:
        cluster.put_sync(client, key, b"payload", 1)
    cluster.sim.run_for(25)  # repair rounds replicate

    cluster.churn_controller().kill_fraction(kill_fraction)
    return measure_availability(cluster, client, keys)


@pytest.mark.benchmark(group="ablation-churn")
def test_churn_resilience_vs_dht(benchmark):
    def sweep():
        rows = []
        for i, fraction in enumerate(KILL_FRACTIONS):
            rows.append(
                {
                    "kill_fraction": fraction,
                    "dataflasks_reads_ok": run_dataflasks(fraction, seed=61 + i),
                    "dht_reads_ok": run_dht(fraction, seed=61 + i),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A4 — read availability right after mass failure (N=80, no repair grace)\n"
        + rows_to_table(rows, ["kill_fraction", "dataflasks_reads_ok", "dht_reads_ok"])
    )
    by_fraction = {r["kill_fraction"]: r for r in rows}
    # DATAFLASKS: slice-wide replication keeps essentially everything
    # readable even at 50% instantaneous failure.
    assert by_fraction[0.5]["dataflasks_reads_ok"] >= 0.9
    # The R=3 DHT cannot beat the epidemic store once failures exceed
    # its replication factor's tolerance.
    assert (
        by_fraction[0.5]["dataflasks_reads_ok"]
        >= by_fraction[0.5]["dht_reads_ok"]
    )

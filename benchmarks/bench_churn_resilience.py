"""A4 — churn resilience: DATAFLASKS vs the Chord DHT baseline.

The paper's motivating claim (Sections I and III): epidemic substrates
keep serving under churn levels that break structured overlays. Both
systems get the same treatment — load a working set, let replication
settle, then apply increasingly brutal instantaneous failures and
measure read availability immediately after (no grace period: the point
is behaviour *while* the overlay is wounded).

Both arms are the bundled ``catastrophic-failure`` / ``dht-baseline``
scenario specs with the kill fraction swept; availability is the
post-failure read success rate the scenario runner already reports.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario

from conftest import report

N = 80
KEYS = 15
READS = 30
KILL_FRACTIONS = (0.1, 0.3, 0.5)


def measure_availability(scenario: str, kill_fraction: float, seed: int) -> float:
    spec = load_bundled(scenario).scaled(
        nodes=N, record_count=KEYS, operation_count=READS, settle=25.0
    )
    spec.churn.fraction = kill_fraction
    result = run_scenario(spec, seed=seed)
    return result.metrics["txn_success_rate"]


def run_dataflasks(kill_fraction: float, seed: int) -> float:
    return measure_availability("catastrophic-failure", kill_fraction, seed)


def run_dht(kill_fraction: float, seed: int) -> float:
    return measure_availability("dht-baseline", kill_fraction, seed)


@pytest.mark.benchmark(group="ablation-churn")
def test_churn_resilience_vs_dht(benchmark):
    def sweep():
        rows = []
        for i, fraction in enumerate(KILL_FRACTIONS):
            rows.append(
                {
                    "kill_fraction": fraction,
                    "dataflasks_reads_ok": run_dataflasks(fraction, seed=61 + i),
                    "dht_reads_ok": run_dht(fraction, seed=61 + i),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A4 — read availability right after mass failure (N=80, no repair grace)\n"
        + rows_to_table(rows, ["kill_fraction", "dataflasks_reads_ok", "dht_reads_ok"])
    )
    by_fraction = {r["kill_fraction"]: r for r in rows}
    # DATAFLASKS: slice-wide replication keeps essentially everything
    # readable even at 50% instantaneous failure.
    assert by_fraction[0.5]["dataflasks_reads_ok"] >= 0.9
    # The R=3 DHT cannot beat the epidemic store once failures exceed
    # its replication factor's tolerance.
    assert (
        by_fraction[0.5]["dataflasks_reads_ok"]
        >= by_fraction[0.5]["dht_reads_ok"]
    )

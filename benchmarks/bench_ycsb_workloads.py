"""A7 — YCSB workload mixes A–F on DATAFLASKS (paper Section VI).

The paper only ran the write-only load; this bench exercises the full
YCSB core suite against a mid-size cluster, reporting success rate,
latency and per-node message cost per mix — the table a practitioner
would want before adopting the substrate.

Each mix is one :class:`~repro.scenarios.spec.ScenarioSpec` derived from
the bundled ``baseline`` scenario, so the bench is a thin sweep over the
scenario engine rather than bespoke cluster wiring.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario

from conftest import report

N = 60
RECORDS = 40
OPS = 60
MIXES = ("ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f")


def run_workload(preset: str, seed: int):
    spec = load_bundled("baseline").scaled(
        name=f"ycsb-suite-{preset}",
        nodes=N,
        num_slices=6,
        record_count=RECORDS,
        operation_count=OPS,
    )
    spec.workload.preset = preset
    result = run_scenario(spec, seed=seed)
    m = result.metrics
    assert m["load_success_rate"] == 1.0
    return {
        "workload": preset,
        "success_rate": m["txn_success_rate"],
        "throughput": m["txn_throughput"],
        "read_p50": m.get("latency_read_p50", 0.0),
        "read_p99": m.get("latency_read_p99", 0.0),
        "msgs_per_node": m["txn_messages_per_node"],
    }


@pytest.mark.benchmark(group="ablation-ycsb")
def test_ycsb_core_suite(benchmark):
    def sweep():
        return [run_workload(preset, seed=91 + i) for i, preset in enumerate(MIXES)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A7 — YCSB core workloads on DATAFLASKS (N=60, k=6)\n"
        + rows_to_table(
            rows,
            [
                "workload",
                "success_rate",
                "throughput",
                "read_p50",
                "read_p99",
                "msgs_per_node",
            ],
        )
    )
    assert all(r["success_rate"] >= 0.9 for r in rows)

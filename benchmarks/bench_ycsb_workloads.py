"""A7 — YCSB workload mixes A–F on DATAFLASKS (paper Section VI).

The paper only ran the write-only load; this bench exercises the full
YCSB core suite against a mid-size cluster, reporting success rate,
latency and per-node message cost per mix — the table a practitioner
would want before adopting the substrate.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.workload.runner import WorkloadRunner
from repro.workload.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
)

from conftest import report

N = 60
RECORDS = 40
OPS = 60


def run_workload(workload, seed: int):
    config = DataFlasksConfig(num_slices=6)
    cluster = DataFlasksCluster(n=N, config=config, seed=seed)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    runner = WorkloadRunner(cluster, workload.scaled(RECORDS), seed=seed)
    load_stats = runner.run_load_phase()
    assert load_stats.success_rate == 1.0
    cluster.sim.run_for(20)  # replicate before the transaction phase

    before = cluster.server_message_load()["handled"]
    stats = runner.run_transactions(OPS)
    after = cluster.server_message_load()["handled"]
    reads = stats.latency_summary("read")
    return {
        "workload": workload.name,
        "success_rate": stats.success_rate,
        "throughput": stats.throughput,
        "read_p50": reads["p50"],
        "read_p99": reads["p99"],
        "msgs_per_node": after - before,
    }


@pytest.mark.benchmark(group="ablation-ycsb")
def test_ycsb_core_suite(benchmark):
    workloads = [
        WORKLOAD_A,
        WORKLOAD_B,
        WORKLOAD_C,
        WORKLOAD_D,
        WORKLOAD_E,
        WORKLOAD_F,
    ]

    def sweep():
        return [run_workload(w, seed=91 + i) for i, w in enumerate(workloads)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A7 — YCSB core workloads on DATAFLASKS (N=60, k=6)\n"
        + rows_to_table(
            rows,
            [
                "workload",
                "success_rate",
                "throughput",
                "read_p50",
                "read_p99",
                "msgs_per_node",
            ],
        )
    )
    assert all(r["success_rate"] >= 0.9 for r in rows)

"""Engine throughput benchmark — the tracked events/sec baseline.

Measures raw simulation throughput (events/sec and wall-time) for every
registered storage backend at paper scale and beyond, and writes the
numbers to a machine-readable ``BENCH_engine.json`` artifact so future
engine changes are measured against a recorded baseline instead of
folklore. The workload is the paper's Section VI configuration
(write-only YCSB load, fixed latency, no faults), which keeps the
simulation on the network/scheduler/metrics hot path the overhaul
targets.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py              # full: 1k/5k/20k
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke      # CI-sized
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --sizes 1000 --backends core --out BENCH_engine.json

Events/sec is ``events_processed / wall`` for the whole scenario
(deploy + convergence + load + settle), the same ratio the scale-5k
yardstick quotes. The event count is deterministic per (backend, size,
seed); only the wall-clock varies between machines, so artifact diffs
that change ``events`` indicate a behavioural change, not just a faster
host.

Artifact format (``BENCH_engine.json``)::

    {
      "bench": "engine_throughput",
      "mode": "full" | "smoke" | "partial",   # partial = custom --sizes
      "seed": 3,
      "sizes": [1000, 5000, 20000],
      "results": [
        {"backend": "core", "nodes": 1000, "events": 16936044.0,
         "sim_time": 53.2, "wall_s": 123.4, "events_per_s": 137245.0},
        ...
      ],
      "obs_overhead": {                        # flight-recorder cost
        "backend": "core", "nodes": 1000, "repeats": 3,
        "base_wall_s": 10.0, "obs_wall_s": 10.2, "overhead_pct": 2.0,
        "events_match": true                   # corrected events == base
      }
    }

The ``obs_overhead`` block measures the flight recorder's timeline probe
(1s windows — the densest probing a spec would realistically ask for) at
the largest measured size: best-of-N walls with and without the recorder
attached, plus the determinism cross-check that the recorder-corrected
``events_processed`` equals the base run's. ``--smoke`` fails if the
overhead exceeds ``OBS_OVERHEAD_LIMIT_PCT`` (escape hatch:
``--no-overhead-check`` for known-noisy hosts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.backends import list_backends
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec

DEFAULT_SIZES = [1000, 5000, 20000]
SMOKE_SIZES = [100, 200]
SEED = 3
OBS_OVERHEAD_LIMIT_PCT = 5.0
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_engine.json")


def throughput_spec(stack: str, nodes: int) -> ScenarioSpec:
    """A write-only load scenario sized like the scale-5k yardstick:
    ~100-node slices (core), proportional records, no faults/churn —
    pure hot-path traffic."""
    return ScenarioSpec(
        name=f"engine-throughput-{stack}-{nodes}",
        stack=stack,
        nodes=nodes,
        num_slices=max(2, nodes // 100),
        replication=3,
        warmup=15.0,
        convergence_timeout=240.0,
        settle=15.0,
        workload=WorkloadSpec(preset="write-only", record_count=max(20, nodes // 10)),
        config={"view_size": 25} if stack == "core" else {},
        metrics=("messages", "population"),
    )


def run_cell(stack: str, nodes: int, seed: int) -> Dict[str, float]:
    spec = throughput_spec(stack, nodes)
    start = time.perf_counter()
    result = run_scenario(spec, seed=seed)
    wall = time.perf_counter() - start
    events = result.metrics["events_processed"]
    return {
        "backend": stack,
        "nodes": nodes,
        "events": events,
        "sim_time": result.metrics["sim_time"],
        "wall_s": round(wall, 3),
        "events_per_s": round(events / wall, 1) if wall > 0 else 0.0,
    }


def measure_obs_overhead(
    stack: str, nodes: int, seed: int, repeats: int = 5
) -> Dict[str, object]:
    """Best-of-``repeats`` wall with and without the flight recorder's
    timeline probe (1s windows). The base/obs runs are *interleaved*
    (A B A B ...) so slow process drift — allocator state, frequency
    scaling — hits both sides equally; at smoke sizes that drift alone
    is several percent, far above the probe's real cost."""
    from repro.obs import FlightRecorder

    spec = throughput_spec(stack, nodes)
    best = {False: float("inf"), True: float("inf")}
    events = {False: 0.0, True: 0.0}
    for _ in range(repeats):
        for with_recorder in (False, True):
            recorder = (
                FlightRecorder(timeline=True, window=1.0) if with_recorder else None
            )
            start = time.perf_counter()
            result = run_scenario(spec, seed=seed, recorder=recorder)
            wall = time.perf_counter() - start
            best[with_recorder] = min(best[with_recorder], wall)
            events[with_recorder] = result.metrics["events_processed"]
    base_wall, base_events = best[False], events[False]
    obs_wall, obs_events = best[True], events[True]
    overhead_pct = (obs_wall - base_wall) / base_wall * 100.0 if base_wall > 0 else 0.0
    return {
        "backend": stack,
        "nodes": nodes,
        "repeats": repeats,
        "base_wall_s": round(base_wall, 3),
        "obs_wall_s": round(obs_wall, 3),
        "overhead_pct": round(overhead_pct, 2),
        # The recorder subtracts its own probe events, so the reported
        # count must equal the unobserved run's exactly.
        "events_match": obs_events == base_events,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help=f"node counts to measure (default {DEFAULT_SIZES})",
    )
    parser.add_argument(
        "--backends", nargs="+", default=None,
        help="backends to measure (default: every registered backend)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized run: sizes {SMOKE_SIZES} (unless --sizes is given)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--no-overhead-check", action="store_true",
        help="measure obs overhead but do not fail --smoke on the "
        f"{OBS_OVERHEAD_LIMIT_PCT:g}%% limit (for known-noisy hosts)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="artifact path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_SIZES if args.smoke else DEFAULT_SIZES)
    backends = args.backends or list_backends()
    unknown = set(backends) - set(list_backends())
    if unknown:
        parser.error(f"unknown backends {sorted(unknown)}; registered: {list_backends()}")

    results = []
    for stack in backends:
        for nodes in sizes:
            print(f"measuring {stack} at {nodes} nodes ...", flush=True)
            cell = run_cell(stack, nodes, args.seed)
            print(
                f"  {cell['events']:.0f} events in {cell['wall_s']:.1f}s "
                f"-> {cell['events_per_s']:.0f} events/s "
                f"({cell['sim_time']:.1f} simulated seconds)",
                flush=True,
            )
            results.append(cell)

    # "full"/"smoke" only when the run actually covered those size sets;
    # a --sizes-restricted run is labelled "partial" so artifact readers
    # are never misled about coverage.
    if sizes == DEFAULT_SIZES:
        mode = "full"
    elif sizes == SMOKE_SIZES:
        mode = "smoke"
    else:
        mode = "partial"
    obs_stack = "core" if "core" in backends else backends[0]
    obs_nodes = max(sizes)
    print(f"measuring obs overhead: {obs_stack} at {obs_nodes} nodes ...", flush=True)
    overhead = measure_obs_overhead(obs_stack, obs_nodes, args.seed)
    print(
        f"  base {overhead['base_wall_s']}s vs obs {overhead['obs_wall_s']}s "
        f"-> {overhead['overhead_pct']:+.2f}% "
        f"(events match: {overhead['events_match']})",
        flush=True,
    )

    artifact = {
        "bench": "engine_throughput",
        "mode": mode,
        "seed": args.seed,
        "sizes": sizes,
        "results": results,
        "obs_overhead": overhead,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if not overhead["events_match"]:
        print("FAIL: recorder-corrected events_processed diverged from base run")
        return 1
    if args.smoke and not args.no_overhead_check:
        if overhead["overhead_pct"] > OBS_OVERHEAD_LIMIT_PCT:
            print(
                f"FAIL: flight-recorder overhead {overhead['overhead_pct']:.2f}% "
                f"exceeds the {OBS_OVERHEAD_LIMIT_PCT:g}% limit"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A6 — Peer Sampling Service quality (paper Section II).

The epidemic stack assumes PSS views approximate uniform random samples.
This bench compares Cyclon and Newscast overlays on the standard quality
metrics (in-degree spread, clustering, connectivity) and under churn.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.churn import ChurnController
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.pss.diagnostics import overlay_report
from repro.pss.newscast import NewscastService
from repro.sim.node import Node
from repro.sim.simulator import Simulation

from conftest import report

N = 150
VIEW_SIZE = 15


def run_pss(name: str, make_service, seed: int = 81):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(make_service())
        return node

    nodes = sim.add_nodes(factory, N)
    bootstrap_random_views(nodes, degree=6, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(40)
    stable = overlay_report(nodes)

    # 20% failure, then measure again after the protocol reacts.
    controller = ChurnController(sim, factory)
    controller.kill_fraction(0.2)
    sim.run_for(30)
    churned = overlay_report([n for n in nodes if n.alive])

    msgs = sim.message_load()["sent"] / sim.now
    return {
        "pss": name,
        "indegree_stdev": stable["indegree_stdev"],
        "clustering": stable["clustering"],
        "connected": bool(stable["connected"]),
        "connected_after_churn": bool(churned["connected"]),
        "indegree_stdev_after_churn": churned["indegree_stdev"],
        "msgs_per_node_per_s": msgs,
    }


@pytest.mark.benchmark(group="ablation-pss")
def test_pss_quality_cyclon_vs_newscast(benchmark):
    def sweep():
        return [
            run_pss("cyclon", lambda: CyclonService(view_size=VIEW_SIZE, shuffle_length=7)),
            run_pss("newscast", lambda: NewscastService(view_size=VIEW_SIZE)),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A6 — PSS overlay quality (N=150, view=15; ideal random graph: "
        "indegree stdev ~ sqrt(15) ≈ 3.9, clustering ~ 0.1)\n"
        + rows_to_table(
            rows,
            [
                "pss",
                "indegree_stdev",
                "clustering",
                "connected",
                "connected_after_churn",
                "indegree_stdev_after_churn",
                "msgs_per_node_per_s",
            ],
        )
    )
    by_name = {r["pss"]: r for r in rows}
    for row in rows:
        assert row["connected"] and row["connected_after_churn"]
    # The literature's result: Cyclon's in-degree distribution is much
    # tighter (more uniform) than Newscast's.
    assert (
        by_name["cyclon"]["indegree_stdev"] < by_name["newscast"]["indegree_stdev"]
    )

"""A2 — dissemination fanout vs delivery (paper Section II).

Validates the random-graph sizing rule the paper builds on: with fanout
``ln N + c`` the probability of *atomic* infection (every node reached)
approaches ``e^{-e^{-c}}``. The bench sweeps the fanout and reports the
measured atomic-delivery ratio next to the prediction.
"""

import math

import pytest

from repro.analysis.tables import rows_to_table
from repro.gossip.dissemination import (
    DisseminationService,
    atomic_infection_probability,
)
from repro.pss.bootstrap import bootstrap_random_views
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node
from repro.sim.simulator import Simulation

from conftest import report

N = 100
BROADCASTS = 30


def run_fanout(fanout: int, seed: int = 7):
    sim = Simulation(seed=seed)

    def factory(node_id, ctx):
        node = Node(node_id, ctx)
        node.add_service(CyclonService(view_size=15, shuffle_length=7))
        node.add_service(DisseminationService(fanout=fanout))
        return node

    nodes = sim.add_nodes(factory, N)
    bootstrap_random_views(nodes, degree=6, rng=sim.rng_registry.stream("b"))
    sim.start_all()
    sim.run_for(15)

    reached = {}
    for node in nodes:
        node.get_service(DisseminationService).subscribe(
            lambda payload, msg_id, hops, i=node.id: reached.setdefault(
                msg_id, set()
            ).add(i)
        )
    origins = nodes[:BROADCASTS]
    for origin in origins:
        msg_id = origin.get_service(DisseminationService).broadcast("probe")
        reached.setdefault(msg_id, set()).add(origin.id)
    sim.run_for(10)

    atomic = sum(1 for nodes_reached in reached.values() if len(nodes_reached) == N)
    mean_coverage = sum(len(v) for v in reached.values()) / (len(reached) * N)
    c = fanout - math.log(N)
    return {
        "fanout": fanout,
        "c": c,
        "predicted_atomic": atomic_infection_probability(c),
        "measured_atomic": atomic / BROADCASTS,
        "mean_coverage": mean_coverage,
    }


@pytest.mark.benchmark(group="ablation-fanout")
def test_dissemination_fanout_sweep(benchmark):
    def sweep():
        return [run_fanout(f) for f in (1, 2, 3, 5, 7, 9)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A2 — fanout vs atomic delivery (N=100; prediction e^(-e^(-c)), c = f - lnN)\n"
        + rows_to_table(
            rows,
            ["fanout", "c", "predicted_atomic", "measured_atomic", "mean_coverage"],
        )
    )
    by_fanout = {r["fanout"]: r for r in rows}
    # Coverage is monotone in fanout and saturates at full delivery.
    coverages = [r["mean_coverage"] for r in rows]
    assert all(b >= a - 0.05 for a, b in zip(coverages, coverages[1:]))
    assert by_fanout[9]["measured_atomic"] >= 0.9
    assert by_fanout[1]["measured_atomic"] <= 0.2

"""A9 — the fault matrix: availability and consistency under the nemesis.

The paper's dependability claim is qualitative ("the system is
unaffected by a significant amount of node failures"); this bench makes
it quantitative across the whole fault vocabulary. Every cell of the
matrix is one bundled fault scenario at two severities, reporting the
consistency/availability group the scenario runner collects: read
availability during the fault, stale reads served, acked writes lost,
and how long the overlay took to look whole again after the heal.

Expectations encoded below: the epidemic substrate keeps serving through
every fault class (availability floor), and crash-*recover* — nodes
returning with retained stores — must never lose an acknowledged object.
"""

import pytest

from repro.analysis.tables import rows_to_table
from repro.scenarios.registry import load_bundled
from repro.scenarios.runner import run_scenario

from conftest import report

N = 60
KEYS = 20
OPS = 60

# scenario -> (fault field to sweep, (mild, severe))
MATRIX = {
    "asymmetric-partition": ("fraction", (0.2, 0.4)),
    "slow-quartile": ("fraction", (0.25, 0.5)),
    "burst-loss": ("loss", (0.3, 0.7)),
    "crash-recover-wave": ("fraction", (0.2, 0.4)),
}

COLUMNS = [
    "scenario",
    "severity",
    "reads_ok",
    "stale_reads",
    "lost_updates",
    "lost_objects",
    "unavail_windows",
    "heal_time",
]


def run_cell(scenario: str, field: str, value: float, seed: int) -> dict:
    spec = load_bundled(scenario).scaled(
        nodes=N, record_count=KEYS, operation_count=OPS, settle=15.0, cooldown=5.0
    )
    setattr(spec.faults[0], field, value)
    metrics = run_scenario(spec, seed=seed).metrics
    return {
        "scenario": scenario,
        "severity": value,
        "reads_ok": metrics["txn_success_rate"],
        "stale_reads": metrics["stale_reads"],
        "lost_updates": metrics["lost_updates"],
        "lost_objects": metrics["lost_objects"],
        "unavail_windows": metrics["unavail_windows"],
        "heal_time": metrics.get("heal_time", -1.0),
    }


@pytest.mark.benchmark(group="fault-matrix")
def test_fault_matrix(benchmark):
    def sweep():
        rows = []
        for i, (scenario, (field, severities)) in enumerate(sorted(MATRIX.items())):
            for severity in severities:
                rows.append(run_cell(scenario, field, severity, seed=71 + i))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "A9 — fault matrix: availability & consistency under the nemesis "
        f"(N={N}, {OPS} ops during the fault window)\n"
        + rows_to_table(rows, COLUMNS)
    )
    by_cell = {(r["scenario"], r["severity"]): r for r in rows}
    # Epidemic redundancy keeps the store readable through every fault
    # class, even at the severe setting.
    for row in rows:
        assert row["reads_ok"] >= 0.8, row
    # Crash-recover brings every acked object back: stores are retained.
    for severity in MATRIX["crash-recover-wave"][1]:
        assert by_cell[("crash-recover-wave", severity)]["lost_objects"] == 0.0

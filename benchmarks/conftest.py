"""Benchmark-suite plumbing.

Benches produce human-readable tables (the rows/series the paper's
figures plot). pytest captures stdout, so tables are routed through
:func:`report` into the terminal summary — they appear at the end of any
``pytest benchmarks/ --benchmark-only`` run and are also appended to
``benchmarks/results.txt`` for the record.
"""

from __future__ import annotations

import os
from typing import List

_REPORTS: List[str] = []

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def report(text: str) -> None:
    """Queue a block of text for the terminal summary and results file."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("reproduction results")
    body = "\n\n".join(_REPORTS)
    for line in body.splitlines():
        terminalreporter.write_line(line)
    with open(RESULTS_PATH, "a", encoding="utf-8") as f:
        f.write(body + "\n\n")

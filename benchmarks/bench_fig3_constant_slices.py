"""Figure 3 — messages per node, constant number of slices.

Paper setup: DATAFLASKS with 10 slices, 500–3,000 nodes, YCSB write-only
workload; metric = average messages each node sends/receives to perform
the requests. Expected shape: roughly flat — with k fixed, adding nodes
only grows the replication factor, not the per-node request load.

Default run is the 5×-scaled sweep (100–600 nodes, same 10 slices);
``REPRO_FULL_SCALE=1`` switches to the paper's node counts.
"""

import pytest

from repro.analysis.experiments import (
    default_node_counts,
    run_constant_slices,
)
from repro.analysis.tables import format_series, rows_to_table

from conftest import report

COLUMNS = [
    "n",
    "num_slices",
    "ops",
    "messages_per_node",
    "request_messages_per_node",
    "success_rate",
]


@pytest.mark.benchmark(group="fig3")
def test_fig3_constant_slices(benchmark):
    rows = benchmark.pedantic(
        run_constant_slices, kwargs={"record_count": 200}, rounds=1, iterations=1
    )
    series = [(r["n"], r["messages_per_node"]) for r in rows]
    report(
        "Figure 3 — avg messages per node, constant slices (k=10, write-only)\n"
        + rows_to_table(rows, COLUMNS)
        + "\n"
        + format_series("series (paper: ~flat, 0-400 band)", "nodes", "msgs/node", series)
    )
    # Shape assertions: every point succeeded and the curve is "roughly
    # the same" across a 6x size increase (paper's wording) — we allow
    # 2x to absorb the ln(N) fanout growth and simulator noise.
    assert all(r["success_rate"] >= 0.95 for r in rows)
    values = [r["messages_per_node"] for r in rows]
    assert max(values) <= 2.0 * min(values)

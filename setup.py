"""Setup shim: enables legacy editable installs on environments whose
setuptools lacks PEP 660 support (all metadata lives in pyproject.toml)."""
from setuptools import setup

setup()

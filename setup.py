"""Packaging: a src-layout install that ships the bundled scenario
specs (``repro/scenarios/specs/*.toml``) as package data."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.8.0",
    description="DATAFLASKS reproduction: an epidemic key-value substrate",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.scenarios": ["specs/*.toml"]},
    include_package_data=True,
    python_requires=">=3.11",
)

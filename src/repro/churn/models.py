"""Churn models: when do nodes join and leave?

The paper's whole premise is that "when reaching unprecedented number of
nodes, faults and churn become the rule instead of the exception", so the
reproduction needs a proper fault-injection vocabulary:

* :class:`PoissonChurn` — memoryless join/leave arrivals (the classic
  steady-churn model),
* :class:`SessionChurn` — nodes live for an exponentially distributed
  session then leave (rate scales with population size),
* :class:`TraceChurn` — replay an explicit list of timed events,
* :class:`CorrelatedFailure` — kill a whole group at one instant, the
  scenario Section IV-A argues coin-toss slicing cannot survive.

Models only *generate* events; :mod:`repro.churn.controller` applies them
to a simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "ChurnEvent",
    "ChurnModel",
    "PoissonChurn",
    "SessionChurn",
    "TraceChurn",
    "CorrelatedFailure",
    "JOIN",
    "LEAVE",
]

JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change.

    ``node_id`` is ``None`` for events that let the controller pick the
    subject (e.g. "a random alive node leaves").
    """

    time: float
    kind: str  # JOIN or LEAVE
    node_id: Optional[int] = None


class ChurnModel:
    """Produces a time-ordered stream of :class:`ChurnEvent`."""

    def events(self, rng: random.Random, horizon: float) -> Iterator[ChurnEvent]:
        """Yield events with ``time <= horizon`` in non-decreasing order."""
        raise NotImplementedError


class PoissonChurn(ChurnModel):
    """Independent Poisson processes for joins and leaves.

    :param join_rate: expected joins per second.
    :param leave_rate: expected leaves per second.
    """

    def __init__(self, join_rate: float, leave_rate: float) -> None:
        if join_rate < 0 or leave_rate < 0:
            raise ConfigurationError("rates must be non-negative")
        self.join_rate = join_rate
        self.leave_rate = leave_rate

    def events(self, rng: random.Random, horizon: float) -> Iterator[ChurnEvent]:
        pending: List[ChurnEvent] = []
        for rate, kind in ((self.join_rate, JOIN), (self.leave_rate, LEAVE)):
            if rate <= 0:
                continue
            t = rng.expovariate(rate)
            while t <= horizon:
                pending.append(ChurnEvent(t, kind))
                t += rng.expovariate(rate)
        return iter(sorted(pending, key=lambda e: e.time))


class SessionChurn(ChurnModel):
    """Every leave is matched by a join: population stays constant while
    individual nodes turn over with mean session length ``mean_session``.

    The effective churn rate is ``population / mean_session`` leaves per
    second, each immediately followed by a replacement join.
    """

    def __init__(self, population: int, mean_session: float) -> None:
        if population <= 0 or mean_session <= 0:
            raise ConfigurationError("population and mean_session must be positive")
        self.population = population
        self.mean_session = mean_session

    def events(self, rng: random.Random, horizon: float) -> Iterator[ChurnEvent]:
        rate = self.population / self.mean_session
        pending: List[ChurnEvent] = []
        t = rng.expovariate(rate)
        while t <= horizon:
            pending.append(ChurnEvent(t, LEAVE))
            pending.append(ChurnEvent(t, JOIN))
            t += rng.expovariate(rate)
        return iter(pending)


class TraceChurn(ChurnModel):
    """Replay an explicit event list (e.g. from a measured trace)."""

    def __init__(self, events: Iterable[ChurnEvent]) -> None:
        self._events = sorted(events, key=lambda e: e.time)

    def events(self, rng: random.Random, horizon: float) -> Iterator[ChurnEvent]:
        return iter([e for e in self._events if e.time <= horizon])


class CorrelatedFailure(ChurnModel):
    """Kill an explicit set of nodes at one instant.

    Models rack/switch failures — the correlated fault Section IV-A uses
    to motivate adaptive slicing over coin-toss assignment.
    """

    def __init__(self, at: float, node_ids: Iterable[int]) -> None:
        if at < 0:
            raise ConfigurationError("failure time must be non-negative")
        self.at = at
        self.node_ids = list(node_ids)

    def events(self, rng: random.Random, horizon: float) -> Iterator[ChurnEvent]:
        if self.at > horizon:
            return iter([])
        return iter([ChurnEvent(self.at, LEAVE, node_id=i) for i in self.node_ids])

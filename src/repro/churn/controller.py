"""Applying churn models to a running simulation.

The :class:`ChurnController` schedules a model's events on the simulation
clock. Leaves crash a random alive node (or the one the event names);
joins build a fresh node with the deployment's node factory and bootstrap
its Peer Sampling Service from a few random alive contacts — exactly how
a real node would join via a tracker. :meth:`ChurnController.recover`
implements crash-*recover* churn: the crashed node restarts in place with
its retained Data Store and protocol state, rather than joining fresh —
the path the fault-injection subsystem (:mod:`repro.faults`) drives.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.churn.models import JOIN, LEAVE, ChurnEvent, ChurnModel
from repro.pss.base import PeerSamplingService
from repro.sim.node import Node
from repro.sim.simulator import NodeFactory, Simulation

__all__ = ["ChurnController"]


class ChurnController:
    """Drives membership change in a :class:`~repro.sim.simulator.Simulation`.

    :param node_factory: how to build a joining node.
    :param on_join: optional callback invoked with each new node (e.g. to
        register it with a cluster object).
    :param bootstrap_degree: number of alive contacts handed to a joiner.
    :param eligible: which nodes churn may touch; defaults to every alive
        node in the simulation. Deployments with co-simulated clients
        MUST scope this to their servers — churn models machines leaving,
        not the benchmark harness killing its own measurement probe.
    """

    def __init__(
        self,
        sim: Simulation,
        node_factory: NodeFactory,
        on_join: Optional[Callable[[Node], None]] = None,
        bootstrap_degree: int = 5,
        rng: Optional[random.Random] = None,
        eligible: Optional[Callable[[], List[Node]]] = None,
    ) -> None:
        self.sim = sim
        self.node_factory = node_factory
        self.on_join = on_join
        self.bootstrap_degree = bootstrap_degree
        self.rng = rng or sim.rng_registry.stream("churn")
        self.eligible = eligible if eligible is not None else sim.alive_nodes
        self.joins = 0
        self.leaves = 0
        self.recoveries = 0

    def _population(self) -> List[Node]:
        return sorted((n for n in self.eligible() if n.alive), key=lambda n: n.id)

    # ------------------------------------------------------------ actions

    def kill(self, node_id: Optional[int] = None) -> Optional[Node]:
        """Crash a node (random alive one when ``node_id`` is ``None``)."""
        if node_id is None:
            alive = self._population()
            if not alive:
                return None
            node = self.rng.choice(alive)
        else:
            node = self.sim.nodes.get(node_id)
            if node is None or not node.alive:
                return None
        node.crash()
        self.leaves += 1
        return node

    def kill_fraction(self, fraction: float) -> List[Node]:
        """Crash a uniformly random fraction of the eligible population."""
        alive = self._population()
        count = int(len(alive) * fraction)
        victims = self.rng.sample(alive, count) if count else []
        for node in victims:
            node.crash()
            self.leaves += 1
        return victims

    def join(self) -> Optional[Node]:
        """Add and start a new node, bootstrapped from alive contacts."""
        alive = self._population()
        node = self.sim.add_node(self.node_factory)
        node.start()
        self.joins += 1
        if alive:
            contacts = self.rng.sample(alive, min(self.bootstrap_degree, len(alive)))
            pss = node.get_service(PeerSamplingService)
            if pss is not None:
                pss.bootstrap([c.id for c in contacts])
        if self.on_join is not None:
            self.on_join(node)
        return node

    def recover(self, node_id: int) -> Optional[Node]:
        """Restart a crashed node in place — crash-*recover* churn.

        Unlike :meth:`join`, the node rejoins with its retained Data
        Store and protocol state (its store survived the crash; only
        volatile timers and network registration are rebuilt). The PSS
        is re-bootstrapped from a few alive contacts, modelling the
        tracker-assisted reconnect of a rebooting machine whose cached
        view may be entirely stale.

        Returns the node, or ``None`` if it is unknown or already alive.
        """
        node = self.sim.nodes.get(node_id)
        if node is None or node.alive:
            return None
        contacts = self._population()
        node.start()
        self.recoveries += 1
        if contacts:
            sample = self.rng.sample(contacts, min(self.bootstrap_degree, len(contacts)))
            pss = node.get_service(PeerSamplingService)
            if pss is not None:
                pss.bootstrap([c.id for c in sample])
        return node

    # ----------------------------------------------------------- schedule

    def apply(self, model: ChurnModel, horizon: float) -> int:
        """Schedule all of ``model``'s events up to ``horizon`` from now.

        Returns the number of events scheduled. Times in the model are
        relative to the current simulation time.
        """
        start = self.sim.now
        count = 0
        for event in model.events(self.rng, horizon):
            self.sim.scheduler.schedule_at(start + event.time, self._apply_event, event)
            count += 1
        return count

    def _apply_event(self, event: ChurnEvent) -> None:
        if event.kind == LEAVE:
            self.kill(event.node_id)
        elif event.kind == JOIN:
            self.join()

"""Churn and failure injection.

* :mod:`repro.churn.models` — Poisson, session-based, trace-driven and
  correlated-failure event generators
* :class:`~repro.churn.controller.ChurnController` — applies events to a
  simulation (crashes, bootstrapped joins)
"""

from repro.churn.controller import ChurnController
from repro.churn.models import (
    JOIN,
    LEAVE,
    ChurnEvent,
    ChurnModel,
    CorrelatedFailure,
    PoissonChurn,
    SessionChurn,
    TraceChurn,
)

__all__ = [
    "ChurnController",
    "ChurnEvent",
    "ChurnModel",
    "CorrelatedFailure",
    "JOIN",
    "LEAVE",
    "PoissonChurn",
    "SessionChurn",
    "TraceChurn",
]

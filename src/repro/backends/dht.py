"""The ``dht`` backend: the Chord baseline behind :class:`StoreBackend`.

Adapter over :class:`~repro.dht.cluster.DhtCluster`. Convergence maps to
ring stabilisation, the heal-probe predicate to successor-cycle
consistency, and the metric hook contributes the ring-health block the
runner previously had no stack-neutral place for.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.backends.base import StoreBackend
from repro.backends.registry import register_backend
from repro.dht.cluster import DhtCluster
from repro.sim.simulator import Simulation

__all__ = ["DhtBackend"]


@register_backend("dht")
class DhtBackend(StoreBackend):
    """Chord-style DHT with successor-list replication (the paper's
    structured-overlay control group)."""

    description = "Chord-style DHT with R-successor replication (baseline)"

    cluster: DhtCluster

    @classmethod
    def deploy(cls, spec: Any, sim: Simulation) -> "DhtBackend":
        return cls(DhtCluster(n=spec.nodes, replication=spec.replication, sim=sim))

    def converge(self, spec: Any) -> bool:
        self.cluster.stabilize(spec.warmup)
        return self.cluster.ring_is_consistent()

    def converged(self) -> bool:
        """Successor pointers form one cycle over all alive nodes."""
        return self.cluster.ring_is_consistent()

    def collect_metrics(self, groups: Set[str], workload: Any, metrics: Dict[str, float]) -> None:
        if "population" in groups:
            # Ring health: the structured-overlay analogue of slice health.
            metrics["ring_consistent"] = float(self.cluster.ring_is_consistent())
        self.collect_replication(groups, workload, metrics)

"""The ``oracle`` backend: an idealized centralized replicated store.

The registry's proof of extensibility, and — more usefully — a
**ground-truth consistency baseline** for the fault scenarios. The
oracle models a store with magic replication: every server is a front
end to one shared :class:`~repro.core.store.VersionedStore`, so a write
acknowledged by *any* server is instantly visible at *every* server, a
crashed server "retains" the full dataset by construction, and a joiner
is up to date the moment it boots. What stays real is the network:
clients reach servers over the same simulated links as every other
stack, so partitions, loss windows, latency spikes and crashes still
cost *availability* (requests time out and retry), but can never cost
*consistency*.

That split is the point. Run the same workload and fault schedule
against ``core``/``dht`` and against ``oracle``: stale reads and lost
updates on the oracle arm are zero by construction, so anything the real
stacks report in the PR-2 consistency metrics is protocol-induced, while
the oracle's failed-request/unavailability numbers isolate the share of
damage any store must pay just for living on a wounded network
(the "vs-ideal" scenario family; see ``oracle-baseline`` /
``oracle-fault-wave`` and ``benchmarks/bench_backend_comparison.py``).

Deliberate idealisations, for honest reading of results:

* replication is free and instantaneous (shared state, no replica
  traffic, no anti-entropy) — per-node message loads are *not*
  comparable with real stacks, only client-observed metrics are;
* ``acks_required`` is satisfied by one ack: a single server ack already
  means full replication;
* ``replication_level`` equals the alive-server count for any stored
  key — the ideal every real stack's replication is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.backends.base import StoreBackend
from repro.backends.registry import register_backend
from repro.core.client import FAILED, GET, PUT, PendingOp, SUCCEEDED
from repro.core.store import MemoryStore, VersionedStore
from repro.errors import ClientError, ConfigurationError, OperationTimeoutError
from repro.sim.node import Node, SimContext
from repro.sim.simulator import Simulation

__all__ = ["OracleNode", "OracleClient", "OracleCluster", "OracleBackend"]

ReqId = tuple


# ------------------------------------------------------------------ messages


@dataclass(frozen=True)
class OraclePut:
    key: str
    version: int
    value: Any
    req_id: ReqId


@dataclass(frozen=True)
class OraclePutAck:
    req_id: ReqId
    ok: bool


@dataclass(frozen=True)
class OracleGet:
    key: str
    version: Optional[int]
    req_id: ReqId


@dataclass(frozen=True)
class OracleGetReply:
    req_id: ReqId
    found: bool
    value: Any
    version: Optional[int]


# ------------------------------------------------------------------- servers


class OracleNode(Node):
    """A front end to the shared store: serves puts/gets over the
    simulated network, holds no private state worth losing."""

    def __init__(self, node_id: int, ctx: SimContext, store: VersionedStore) -> None:
        super().__init__(node_id, ctx)
        self.store = store
        self.register_handler(OraclePut, self._on_put)
        self.register_handler(OracleGet, self._on_get)

    def holds(self, key: str, version: Optional[int] = None) -> bool:
        return self.alive and self.store.get(key, version) is not None

    def _on_put(self, msg: OraclePut, src: int) -> None:
        self.store.put(msg.key, msg.version, msg.value)
        self.metrics.inc("oracle.server.put")
        self.send(src, OraclePutAck(req_id=msg.req_id, ok=True))

    def _on_get(self, msg: OracleGet, src: int) -> None:
        obj = self.store.get(msg.key, msg.version)
        self.metrics.inc("oracle.server.get")
        self.send(
            src,
            OracleGetReply(
                req_id=msg.req_id,
                found=obj is not None,
                value=obj.value if obj is not None else None,
                version=obj.version if obj is not None else None,
            ),
        )


# ------------------------------------------------------------------- clients


class OracleClient(Node):
    """put/get against any alive oracle server, with the same
    :class:`~repro.core.client.PendingOp` protocol, timeouts and retries
    as the DATAFLASKS and DHT clients."""

    def __init__(
        self,
        node_id: int,
        ctx: SimContext,
        directory: Callable[[], List[int]],
        timeout: float = 5.0,
        retries: int = 2,
    ) -> None:
        super().__init__(node_id, ctx)
        self._directory = directory
        self.timeout = timeout
        self.retries = retries
        self._next_seq = 0
        self._pending: Dict[ReqId, PendingOp] = {}
        self.register_handler(OraclePutAck, self._on_put_ack)
        self.register_handler(OracleGetReply, self._on_get_reply)

    # ----------------------------------------------------------------- API

    def put(self, key: str, value: Any, version: int, acks_required: int = 1) -> PendingOp:
        """Store through any server; one ack is full replication, so
        ``acks_required`` is accepted for API parity and satisfied by 1."""
        op = self._new_op(PUT, key, version)
        op.value_to_put = value
        self._dispatch(op)
        return op

    def get(self, key: str, version: Optional[int] = None) -> PendingOp:
        op = self._new_op(GET, key, version)
        self._dispatch(op)
        return op

    # ------------------------------------------------------------ internal

    def _new_op(self, kind: str, key: str, version: Optional[int]) -> PendingOp:
        if not self.alive:
            raise ClientError("client is not started")
        req_id = (self.id, self._next_seq)
        self._next_seq += 1
        op = PendingOp(kind, key, version, req_id, 1, self.now)
        self._pending[req_id] = op
        return op

    def _contact(self) -> Optional[int]:
        servers = sorted(self._directory())
        if not servers:
            return None
        return self.rng.choice(servers)

    def _request_message(self, op: PendingOp):
        if op.kind == PUT:
            assert op.version is not None
            return OraclePut(op.key, op.version, op.value_to_put, op.req_id)
        return OracleGet(op.key, op.version, op.req_id)

    def _dispatch(self, op: PendingOp) -> None:
        contact = self._contact()
        if contact is None:
            self.metrics.inc(f"oracle.client.{op.kind}.no_contact")
            op._complete(FAILED, self.now, error="no server available")
            self._pending.pop(op.req_id, None)
            return
        self.send(contact, self._request_message(op))
        self.after(self.timeout, self._on_timeout, op.req_id, op.attempts)

    def _on_timeout(self, req_id: ReqId, attempt: int) -> None:
        op = self._pending.get(req_id)
        if op is None or op.done or op.attempts != attempt:
            return
        if op.attempts > self.retries:
            self.metrics.inc(f"oracle.client.{op.kind}.timeout")
            op._complete(FAILED, self.now, error=f"timed out after {op.attempts} attempts")
            self._pending.pop(req_id, None)
            return
        op.attempts += 1
        self.metrics.inc(f"oracle.client.{op.kind}.retry")
        self._dispatch(op)

    def _on_put_ack(self, msg: OraclePutAck, src: int) -> None:
        op = self._pending.get(msg.req_id)
        if op is None or op.done:
            self.metrics.inc("oracle.client.duplicate_reply")
            return
        op.replies += 1
        op.acks.add(src)
        self.metrics.inc("oracle.client.put.ok")
        self.metrics.observe("oracle.client.put.latency", self.now - op.started_at)
        op._complete(SUCCEEDED, self.now)
        self._pending.pop(msg.req_id, None)

    def _on_get_reply(self, msg: OracleGetReply, src: int) -> None:
        op = self._pending.get(msg.req_id)
        if op is None or op.done:
            self.metrics.inc("oracle.client.duplicate_reply")
            return
        op.replies += 1
        if not msg.found:
            # The shared store is the ground truth: a miss is a real miss,
            # not a replica that has yet to catch up. Fail fast so reads
            # of never-written keys do not burn the retry budget.
            op._complete(FAILED, self.now, error="key not found")
            self._pending.pop(msg.req_id, None)
            return
        op.value = msg.value
        op.result_version = msg.version
        self.metrics.inc("oracle.client.get.ok")
        self.metrics.observe("oracle.client.get.latency", self.now - op.started_at)
        op._complete(SUCCEEDED, self.now)
        self._pending.pop(msg.req_id, None)


# ------------------------------------------------------------------- cluster


class OracleCluster:
    """Deployment facade for the oracle, mirroring
    :class:`~repro.core.cluster.DataFlasksCluster`'s driving surface.

    :param n: number of server front ends.
    :param sim: the simulation to deploy into (created if omitted).
    :param store: the shared store (a fresh unbounded
        :class:`~repro.core.store.MemoryStore` by default).
    """

    def __init__(
        self,
        n: int,
        sim: Optional[Simulation] = None,
        seed: int = 0,
        store: Optional[VersionedStore] = None,
    ) -> None:
        if n <= 0:
            raise ConfigurationError("cluster size must be positive")
        self.sim = sim if sim is not None else Simulation(seed=seed)
        self.store = store if store is not None else MemoryStore()
        self.servers: List[OracleNode] = []
        self.clients: List[OracleClient] = []
        for _ in range(n):
            node = self.sim.add_node(self._factory)
            assert isinstance(node, OracleNode)
            self.servers.append(node)
        for server in self.servers:
            server.start()

    def _factory(self, node_id: int, ctx: SimContext) -> Node:
        return OracleNode(node_id, ctx, store=self.store)

    # -------------------------------------------------------------- helpers

    def server_factory(self) -> Callable[[int, SimContext], Node]:
        """Factory for churn joins; the joiner shares the store, so it is
        fully caught up the moment it starts (ideal state transfer)."""

        def factory(node_id: int, ctx: SimContext) -> Node:
            node = OracleNode(node_id, ctx, store=self.store)
            self.servers.append(node)
            return node

        return factory

    def directory(self) -> List[int]:
        return [s.id for s in self.servers if s.alive]

    def churn_controller(self, **kwargs):
        """A ChurnController scoped to this cluster's servers."""
        from repro.churn.controller import ChurnController

        return ChurnController(
            self.sim,
            self.server_factory(),
            eligible=lambda: [s for s in self.servers if s.alive],
            **kwargs,
        )

    def new_client(self, timeout: float = 5.0, retries: int = 2) -> OracleClient:
        def factory(node_id: int, ctx: SimContext) -> Node:
            return OracleClient(node_id, ctx, self.directory, timeout=timeout, retries=retries)

        client = self.sim.add_node(factory)
        assert isinstance(client, OracleClient)
        client.start()
        self.clients.append(client)
        return client

    # ------------------------------------------------------------- sync ops

    def run_op(self, op: PendingOp, timeout: float = 30.0) -> PendingOp:
        self.sim.run_until_condition(lambda: op.done, timeout, check_interval=0.1)
        if not op.done:
            raise OperationTimeoutError(op.kind, op.key, timeout)
        return op

    def put_sync(self, client: OracleClient, key: str, value, version: int,
                 acks_required: int = 1, timeout: float = 30.0) -> PendingOp:
        return self.run_op(client.put(key, value, version, acks_required), timeout)

    def get_sync(self, client: OracleClient, key: str, version: Optional[int] = None,
                 timeout: float = 30.0) -> PendingOp:
        return self.run_op(client.get(key, version), timeout)

    # --------------------------------------------------------------- health

    def replication_level(self, key: str, version: Optional[int] = None) -> int:
        # One lookup suffices: every alive server fronts the same store.
        if self.store.get(key, version) is None:
            return 0
        return len(self.directory())

    def server_message_load(self) -> Dict[str, float]:
        return self.sim.metrics.message_load(population=[s.id for s in self.servers])


# ------------------------------------------------------------------- backend


@register_backend("oracle")
class OracleBackend(StoreBackend):
    """Idealized centralized replicated store — the vs-ideal baseline."""

    description = "idealized centralized replicated store (ground-truth baseline)"

    cluster: OracleCluster

    @classmethod
    def deploy(cls, spec: Any, sim: Simulation) -> "OracleBackend":
        return cls(OracleCluster(n=spec.nodes, sim=sim))

    def converge(self, spec: Any) -> bool:
        # Nothing to stabilise; burn the same warm-up budget as the real
        # stacks so phase timelines stay comparable across backends.
        self.cluster.sim.run_for(spec.warmup)
        return bool(self.cluster.directory())

    def converged(self) -> bool:
        """The oracle is whole as soon as any server is reachable-alive:
        there is no overlay to reconverge, which is exactly what makes
        its time-to-heal the floor every real stack is measured against."""
        return bool(self.cluster.directory())

"""Pluggable storage backends — the stack-neutral experiment surface.

* :mod:`repro.backends.base` — the :class:`StoreBackend` protocol every
  stack implements (deploy, converge, clients, churn, metrics hook)
* :mod:`repro.backends.registry` — :class:`BackendRegistry`,
  :func:`register_backend`, :func:`get_backend`, :func:`list_backends`
* :mod:`repro.backends.core` — DATAFLASKS (``stack = "core"``)
* :mod:`repro.backends.dht` — the Chord baseline (``stack = "dht"``)
* :mod:`repro.backends.oracle` — an idealized centralized replicated
  store (``stack = "oracle"``), the ground-truth consistency baseline

Quickstart::

    from repro.backends import get_backend
    from repro.scenarios import load_bundled
    from repro.sim import Simulation

    spec = load_bundled("baseline").scaled(nodes=40)
    backend = get_backend(spec.stack).deploy(spec, Simulation(seed=7))
    backend.converge(spec)
    client = backend.new_client()
    backend.put_sync(client, "user:1", b"alice", version=1)

Importing this package registers the three built-in backends; third
parties register theirs with :func:`register_backend` (see DESIGN.md,
"Backend architecture").
"""

from repro.backends.base import REPLICATION_SAMPLE, StoreBackend, round_metric
from repro.backends.registry import (
    REGISTRY,
    BackendRegistry,
    get_backend,
    list_backends,
    register_backend,
)

# Importing the built-in backend modules registers them.
from repro.backends.core import CoreBackend
from repro.backends.dht import DhtBackend
from repro.backends.oracle import OracleBackend, OracleClient, OracleCluster, OracleNode

__all__ = [
    "REGISTRY",
    "REPLICATION_SAMPLE",
    "BackendRegistry",
    "CoreBackend",
    "DhtBackend",
    "OracleBackend",
    "OracleClient",
    "OracleCluster",
    "OracleNode",
    "StoreBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "round_metric",
]

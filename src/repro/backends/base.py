"""The pluggable storage-backend protocol.

A :class:`StoreBackend` is everything the experiment pipeline — the
scenario runner, the workload runner, the nemesis heal probe and the
benches — needs from a storage stack, captured as one abstract surface:

* **provisioning** — :meth:`StoreBackend.deploy` builds the stack inside
  an existing :class:`~repro.sim.simulator.Simulation` from a
  :class:`~repro.scenarios.spec.ScenarioSpec`,
* **driving** — :meth:`new_client`, :meth:`run_op`, :meth:`put_sync`,
  :meth:`get_sync` (clients must speak the
  :class:`~repro.core.client.PendingOp` protocol),
* **convergence** — :meth:`converge` runs the stack's warm-up routine
  once at deploy time; :meth:`converged` is the cheap "does the overlay
  look whole right now?" predicate the heal probe polls after faults,
* **membership** — :meth:`churn_controller` and :meth:`directory`, so
  churn models and fault injectors work on any stack,
* **observation** — :meth:`replication_level`,
  :meth:`server_message_load`, and the :meth:`collect_metrics` hook
  where each backend contributes its stack-specific metric blocks
  (slice health for DATAFLASKS, ring health for the DHT) instead of the
  runner special-casing stacks.

Concrete backends are thin adapters over a deployment facade (kept on
:attr:`StoreBackend.cluster`); the facade classes themselves —
:class:`~repro.core.cluster.DataFlasksCluster`,
:class:`~repro.dht.cluster.DhtCluster`,
:class:`~repro.backends.oracle.OracleCluster` — stay importable and
usable directly. Backends register under their ``spec.stack`` name with
:func:`~repro.backends.registry.register_backend`; see
:mod:`repro.backends.registry` for lookup and
DESIGN.md ("Backend architecture") for how to add one.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Set

from repro.sim.metrics import mean
from repro.sim.simulator import Simulation

__all__ = ["StoreBackend", "REPLICATION_SAMPLE", "round_metric"]

# How many of the loaded keys the replication metric samples; sweeping
# every key on a 5k-node run would dominate the collection cost.
REPLICATION_SAMPLE = 25


def round_metric(value: float) -> float:
    """Round for stable, readable summaries (determinism does not depend
    on this, but 17-digit floats make tables unreadable)."""
    return round(float(value), 6)


class StoreBackend(abc.ABC):
    """Abstract storage stack behind the experiment pipeline.

    :cvar name: the registry key ``spec.stack`` resolves
        (set by :func:`~repro.backends.registry.register_backend`).
    :cvar description: one line for ``repro backends list``.
    :ivar cluster: the wrapped deployment facade; anything not covered
        by the protocol (stack-specific helpers, direct store access)
        remains reachable here.
    """

    name: str = ""
    description: str = ""

    def __init__(self, cluster: Any) -> None:
        self.cluster = cluster

    # --------------------------------------------------------- provisioning

    @classmethod
    @abc.abstractmethod
    def deploy(cls, spec: Any, sim: Simulation) -> "StoreBackend":
        """Build the stack described by ``spec`` inside ``sim``."""

    # ---------------------------------------------------------- convergence

    @abc.abstractmethod
    def converge(self, spec: Any) -> bool:
        """Run the stack's warm-up/stabilisation routine; ``True`` when
        the deployment reached its ready state within the spec's
        ``warmup``/``convergence_timeout`` budget."""

    @abc.abstractmethod
    def converged(self) -> bool:
        """Cheap instantaneous predicate: does the overlay look whole
        right now? Polled by the nemesis heal probe after every heal."""

    # ------------------------------------------------------------- plumbing

    @property
    def sim(self) -> Simulation:
        return self.cluster.sim

    @property
    def servers(self) -> List[Any]:
        """All server nodes ever deployed (alive and crashed); fault
        injectors and churn scope their victims to these."""
        return self.cluster.servers

    @property
    def clients(self) -> List[Any]:
        return self.cluster.clients

    def directory(self) -> List[int]:
        """Alive server ids — what a load-balancer/tracker would expose."""
        return self.cluster.directory()

    def churn_controller(self, **kwargs: Any):
        """A :class:`~repro.churn.controller.ChurnController` scoped to
        this stack's servers (co-simulated clients are never victims)."""
        return self.cluster.churn_controller(**kwargs)

    # ------------------------------------------------------------- clients

    def new_client(self, **kwargs: Any):
        """Create and start a client node speaking ``PendingOp``."""
        return self.cluster.new_client(**kwargs)

    def run_op(self, op, timeout: float = 30.0):
        """Advance virtual time until ``op`` completes."""
        return self.cluster.run_op(op, timeout)

    def put_sync(
        self,
        client,
        key: str,
        value: Any,
        version: int,
        acks_required: int = 1,
        timeout: float = 30.0,
    ):
        return self.run_op(client.put(key, value, version, acks_required), timeout)

    def get_sync(self, client, key: str, version: Optional[int] = None, timeout: float = 30.0):
        return self.run_op(client.get(key, version), timeout)

    # ---------------------------------------------------------- observation

    def replication_level(self, key: str, version: Optional[int] = None) -> int:
        """How many alive servers hold the object right now."""
        return self.cluster.replication_level(key, version)

    def server_message_load(self) -> Dict[str, float]:
        """Mean messages sent/received per *server* node."""
        return self.cluster.server_message_load()

    def collect_metrics(self, groups: Set[str], workload: Any, metrics: Dict[str, float]) -> None:
        """Contribute stack-specific metric blocks to a scenario result.

        ``groups`` is the spec's requested metric-group set; ``workload``
        is the built :class:`~repro.workload.ycsb.CoreWorkload` (its
        ``key_for``/``record_count`` drive key sampling). Implementations
        add ``name -> float`` entries to ``metrics``; groups a stack has
        no equivalent for are skipped silently. The default contributes
        the cross-stack ``replication`` block.
        """
        self.collect_replication(groups, workload, metrics)

    def collect_replication(
        self, groups: Set[str], workload: Any, metrics: Dict[str, float]
    ) -> None:
        """The ``replication`` metric block, shared by every backend that
        implements :meth:`replication_level` (all of them)."""
        if "replication" not in groups:
            return
        sample = [
            workload.key_for(i)
            for i in range(min(workload.record_count, REPLICATION_SAMPLE))
        ]
        levels = [self.replication_level(key) for key in sample]
        metrics["replication_mean"] = round_metric(mean(levels))
        metrics["replication_min"] = float(min(levels)) if levels else 0.0
        metrics["replication_lost"] = float(sum(1 for l in levels if l == 0))

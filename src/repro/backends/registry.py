"""Backend registration and lookup.

``spec.stack`` strings resolve to :class:`~repro.backends.base.StoreBackend`
classes through a :class:`BackendRegistry`. The module-level default
registry is what the scenario engine, the CLI and the spec validator
consult; the built-in backends (``core``, ``dht``, ``oracle``) register
with it on import of :mod:`repro.backends`.

Adding a stack is one decorator::

    from repro.backends import StoreBackend, register_backend

    @register_backend("mystack")
    class MyBackend(StoreBackend):
        description = "one line for `repro backends list`"
        ...

and every scenario spec, bench, CLI command and the backend contract
test suite (``tests/test_backend_contract.py``) picks it up — no runner
changes needed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.backends.base import StoreBackend
from repro.errors import ConfigurationError

__all__ = ["BackendRegistry", "register_backend", "get_backend", "list_backends"]


class BackendRegistry:
    """name -> :class:`StoreBackend` class mapping with helpful errors."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[StoreBackend]] = {}

    def register(self, name: Optional[str] = None) -> Callable[[Type[StoreBackend]], Type[StoreBackend]]:
        """Class decorator registering a backend under ``name`` (defaults
        to the class's ``name`` attribute, which is set from the
        registration name either way)."""

        def decorator(cls: Type[StoreBackend]) -> Type[StoreBackend]:
            key = name or cls.name
            if not key:
                raise ConfigurationError(
                    f"backend class {cls.__name__} needs a registration name"
                )
            if key in self._classes:
                raise ConfigurationError(f"backend {key!r} is already registered")
            if cls.name and cls.name != key:
                # `name` is a class attribute shared by every registry the
                # class appears in; renaming here would silently corrupt
                # the other registrations (and `repro backends list`).
                raise ConfigurationError(
                    f"backend class {cls.__name__} is already named {cls.name!r}; "
                    f"register it under that name or subclass it for {key!r}"
                )
            cls.name = key
            self._classes[key] = cls
            return cls

        return decorator

    def get(self, name: str) -> Type[StoreBackend]:
        """The backend class registered under ``name``; unknown names
        raise a :class:`~repro.errors.ConfigurationError` that lists
        what *is* registered."""
        try:
            return self._classes[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown stack {name!r}; registered backends: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Registered backend names, sorted."""
        return sorted(self._classes)

    def items(self) -> List[Tuple[str, Type[StoreBackend]]]:
        """(name, class) pairs, sorted by name."""
        return [(name, self._classes[name]) for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)


#: The default registry the scenario engine and CLI consult.
REGISTRY = BackendRegistry()


def register_backend(name: Optional[str] = None):
    """Register a backend class with the default registry."""
    return REGISTRY.register(name)


def get_backend(name: str) -> Type[StoreBackend]:
    """Resolve ``spec.stack`` against the default registry."""
    return REGISTRY.get(name)


def list_backends() -> List[str]:
    """Names registered with the default registry, sorted."""
    return REGISTRY.names()

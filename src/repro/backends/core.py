"""The ``core`` backend: DATAFLASKS behind the :class:`StoreBackend` API.

A thin adapter over :class:`~repro.core.cluster.DataFlasksCluster` — the
facade keeps its full public surface for direct use; this class only
maps the pipeline protocol onto it and contributes the slice-health
metric block that used to live in the scenario runner.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.backends.base import StoreBackend, round_metric
from repro.backends.registry import register_backend
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.sim.simulator import Simulation
from repro.slicing.metrics import slice_histogram, unassigned_fraction

__all__ = ["CoreBackend"]


@register_backend("core")
class CoreBackend(StoreBackend):
    """DATAFLASKS: the paper's epidemic slice-based store."""

    description = "DATAFLASKS epidemic slice-based store (the paper's system)"

    cluster: DataFlasksCluster

    @classmethod
    def deploy(cls, spec: Any, sim: Simulation) -> "CoreBackend":
        config = DataFlasksConfig(num_slices=spec.num_slices, **spec.config)
        return cls(DataFlasksCluster(n=spec.nodes, config=config, sim=sim))

    def converge(self, spec: Any) -> bool:
        self.cluster.warm_up(spec.warmup)
        return self.cluster.wait_for_slices(timeout=spec.convergence_timeout)

    def converged(self) -> bool:
        """Every alive node placed in a slice and no slice empty."""
        alive = self.cluster.alive_servers()
        if not alive or unassigned_fraction(alive) > 0:
            return False
        hist = slice_histogram(alive)
        return all(hist.get(i, 0) > 0 for i in range(self.cluster.config.num_slices))

    def collect_metrics(self, groups: Set[str], workload: Any, metrics: Dict[str, float]) -> None:
        alive = self.cluster.alive_servers()
        if "slices" in groups and alive:
            hist = slice_histogram(alive)
            num_slices = self.cluster.config.num_slices
            populated = [hist.get(i, 0) for i in range(num_slices)]
            metrics["slices_total"] = float(num_slices)
            metrics["slices_empty"] = float(sum(1 for c in populated if c == 0))
            metrics["slice_population_min"] = float(min(populated))
            metrics["slice_population_max"] = float(max(populated))
            metrics["slice_unassigned_fraction"] = round_metric(unassigned_fraction(alive))
        self.collect_replication(groups, workload, metrics)

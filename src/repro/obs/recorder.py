"""The flight-recorder coordinator.

:class:`FlightRecorder` bundles the enabled pillars (timeline, tracer,
profiler), owns wall-clock phase timing for the run manifest, and knows
how to write the artifact directory. The scenario runner only ever talks
to this class: ``attach(sim)`` after the simulation exists,
``attach_observer`` / wiring ``tracer`` once the workload runner is
built, ``begin_phase`` at phase boundaries, ``finish(sim)`` at the end,
and ``write_artifacts`` to persist everything plus the manifest.

A recorder is single-use: one recorder per scenario run.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import manifest as manifest_mod
from repro.obs.profile import HotspotProfiler
from repro.obs.timeline import TimelineRecorder
from repro.obs.trace import OpTracer

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Coordinates the enabled observability pillars for one run."""

    def __init__(
        self,
        *,
        timeline: bool = False,
        window: float = 5.0,
        trace: bool = False,
        trace_sample: int = 10,
        trace_max_ops: int = 1000,
        profile: bool = False,
    ) -> None:
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder(window) if timeline else None
        )
        self.tracer: Optional[OpTracer] = (
            OpTracer(trace_sample, trace_max_ops) if trace else None
        )
        self.profiler: Optional[HotspotProfiler] = (
            HotspotProfiler() if profile else None
        )
        self._phases: List[Tuple[str, float]] = []
        self._phase: Optional[str] = None
        self._phase_t0 = 0.0
        self._wall0 = perf_counter()
        self.total_wall = 0.0
        self._finished = False

    @classmethod
    def from_spec(
        cls,
        obs,
        *,
        timeline: Optional[bool] = None,
        trace: Optional[bool] = None,
        profile: Optional[bool] = None,
    ) -> "FlightRecorder":
        """Build from an :class:`~repro.scenarios.spec.ObservabilitySpec`,
        with per-pillar overrides (``None`` inherits the spec value)."""
        return cls(
            timeline=obs.timeline if timeline is None else timeline,
            window=obs.window,
            trace=obs.trace if trace is None else trace,
            trace_sample=obs.trace_sample,
            trace_max_ops=obs.trace_max_ops,
            profile=obs.profile if profile is None else profile,
        )

    @property
    def enabled(self) -> bool:
        return (
            self.timeline is not None
            or self.tracer is not None
            or self.profiler is not None
        )

    @property
    def overhead_events(self) -> int:
        """Scheduler events the recorder itself fired (timeline probes);
        the runner subtracts these from the reported ``events_processed``
        so obs-on and obs-off runs emit identical core metrics."""
        return self.timeline.probe_events if self.timeline is not None else 0

    # -------------------------------------------------------------- wiring

    def attach(self, sim) -> None:
        """Hook the enabled pillars into a freshly built simulation."""
        if self.profiler is not None:
            sim.scheduler.profiler = self.profiler
        if self.tracer is not None:
            sim.network.tracer = self.tracer
        if self.timeline is not None:
            self.timeline.attach(sim)

    def attach_observer(self, observer) -> None:
        if self.timeline is not None:
            self.timeline.attach_observer(observer)

    # ------------------------------------------------------- phase timing

    def begin_phase(self, name: str) -> None:
        """Close the previous wall-clock phase and open ``name``."""
        now = perf_counter()
        if self._phase is not None:
            self._phases.append((self._phase, now - self._phase_t0))
        self._phase = name
        self._phase_t0 = now

    def finish(self, sim) -> None:
        """Close the last phase and flush the timeline (idempotent)."""
        if self._finished:
            return
        self._finished = True
        now = perf_counter()
        if self._phase is not None:
            self._phases.append((self._phase, now - self._phase_t0))
            self._phase = None
        self.total_wall = now - self._wall0
        if self.timeline is not None:
            self.timeline.stop(sim.now)

    def phase_wall(self) -> Dict[str, float]:
        """Phase name -> wall seconds, in execution order (repeated
        phase names accumulate)."""
        phases: Dict[str, float] = {}
        for name, wall in self._phases:
            phases[name] = phases.get(name, 0.0) + wall
        return {name: round(wall, 6) for name, wall in phases.items()}

    # ----------------------------------------------------------- artifacts

    def obs_summary(self) -> Dict[str, Any]:
        """The manifest's ``observability`` block."""
        summary: Dict[str, Any] = {
            "timeline": self.timeline is not None,
            "trace": self.tracer is not None,
            "profile": self.profiler is not None,
        }
        if self.timeline is not None:
            summary["window"] = self.timeline.window
            summary["windows"] = len(self.timeline.rows)
            summary["probe_events"] = self.timeline.probe_events
        if self.tracer is not None:
            summary["trace_sample"] = self.tracer.sample_every
            summary.update(self.tracer.summary())
        if self.profiler is not None:
            summary["profiled_events"] = self.profiler.total_events
        return summary

    def write_artifacts(self, directory: str, spec, result) -> str:
        """Write every enabled pillar's artifact plus ``manifest.json``
        into ``directory`` (created if needed); returns the manifest
        path. ``result`` is the run's
        :class:`~repro.scenarios.runner.ScenarioResult`."""
        os.makedirs(directory, exist_ok=True)
        names: List[str] = []
        if self.timeline is not None:
            _write(directory, "timeline.json", self.timeline.to_json())
            names.append("timeline.json")
        if self.tracer is not None:
            _write(directory, "trace.json", self.tracer.to_chrome_json())
            names.append("trace.json")
        if self.profiler is not None:
            import json as _json

            _write(
                directory,
                "hotspots.json",
                _json.dumps(self.profiler.to_dict(), indent=2, sort_keys=True),
            )
            names.append("hotspots.json")
        summary = result.summary_json()
        _write(directory, "metrics.json", summary)
        names.append("metrics.json")
        manifest = {
            "schema": manifest_mod.MANIFEST_SCHEMA,
            "kind": "scenario-run",
            "scenario": result.scenario,
            "stack": spec.stack,
            "nodes": spec.nodes,
            "seed": result.seed,
            "spec_sha256": manifest_mod.spec_sha256(spec),
            "metrics_sha256": manifest_mod.sha256_bytes(summary.encode("utf-8")),
            "environment": manifest_mod.build_environment(),
            "created_at": manifest_mod.created_at(),
            "wall": {
                "total_s": round(self.total_wall, 6),
                "phases": self.phase_wall(),
            },
            "observability": self.obs_summary(),
            "artifacts": list(manifest_mod.artifact_entries(directory, names)),
        }
        return manifest_mod.write_manifest(directory, manifest)


def _write(directory: str, name: str, content: str) -> None:
    with open(os.path.join(directory, name), "w", encoding="utf-8") as f:
        f.write(content)
        if not content.endswith("\n"):
            f.write("\n")

"""Causal operation traces in Chrome trace-event format.

:class:`OpTracer` head-samples client operations deterministically —
every ``sample_every``-th top-level op, counted at issue, **no RNG
draws** — and threads a trace id from issue through every network hop
the operation causes, to delivery and ack. The export is the Chrome
trace-event JSON array format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: sampled ops appear as
async spans (``b``/``e``), network hops as complete slices (``X``) on
the sending node's track with their simulated latency as the duration,
and drops as instant events (``i``) naming the cause.

Causality is propagated *dynamically*: the issuing runner activates the
tracer around the synchronous client call, :meth:`Network.send
<repro.sim.network.Network.send>` tags the scheduled delivery with the
active trace id, and the traced delivery re-activates the tracer around
the receiving handler — so cascaded sends (server fan-out, acks) inherit
the id without any message-class changes. Known limitation: messages
issued from *timer* events (client retries, periodic protocol ticks)
start outside any activation and are not attributed; the trace shows
first-attempt causality, which is what tail-latency debugging needs.

All timestamps come from the sim clock (microseconds, as the format
requires), so two same-seed runs export byte-identical traces.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError

__all__ = ["OpTracer"]

_PID = 1  # one simulated process; tracks (tids) are node ids


def _us(t: float) -> float:
    """Sim seconds -> trace microseconds (deterministic rounding)."""
    return round(t * 1e6, 3)


class OpTracer:
    """Deterministic head-sampling tracer for client operations."""

    def __init__(self, sample_every: int = 10, max_ops: int = 1000) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"trace sample interval must be >= 1, got {sample_every}"
            )
        if max_ops < 1:
            raise ConfigurationError(f"trace max_ops must be >= 1, got {max_ops}")
        self.sample_every = sample_every
        self.max_ops = max_ops
        # The currently active trace id; the network reads this on send.
        self.active: Optional[int] = None
        self.hops = 0
        self.drops = 0
        self._op_count = 0
        self._next_id = 0
        self._open: Dict[int, tuple] = {}  # trace id -> (name, tid)
        self._events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------ op spans

    def sample_op(self, kind: str, key: str, client_id: int, now: float) -> Optional[int]:
        """Head-sample one top-level operation at issue time.

        Counts *every* call; returns a trace id for every
        ``sample_every``-th one (up to ``max_ops``), ``None`` otherwise.
        """
        index = self._op_count
        self._op_count += 1
        if index % self.sample_every or self._next_id >= self.max_ops:
            return None
        trace_id = self._next_id
        self._next_id += 1
        name = f"{kind} {key}"
        self._open[trace_id] = (name, client_id)
        self._events.append(
            {
                "ph": "b",
                "cat": "op",
                "id": trace_id,
                "name": name,
                "pid": _PID,
                "tid": client_id,
                "ts": _us(now),
                "args": {"op_index": index},
            }
        )
        return trace_id

    def op_end(self, trace_id: int, ok: bool, now: float) -> None:
        """Close a sampled operation's async span."""
        name, tid = self._open.pop(trace_id, (f"op {trace_id}", 0))
        self._events.append(
            {
                "ph": "e",
                "cat": "op",
                "id": trace_id,
                "name": name,
                "pid": _PID,
                "tid": tid,
                "ts": _us(now),
                "args": {"ok": bool(ok)},
            }
        )

    @contextmanager
    def activated(self, trace_id: int) -> Iterator[None]:
        """Attribute every :meth:`Network.send` inside the block to
        ``trace_id`` (nestable; restores the previous activation)."""
        previous = self.active
        self.active = trace_id
        try:
            yield
        finally:
            self.active = previous

    # --------------------------------------------------------- network hops

    def hop(
        self, trace_id: int, src: int, dst: int, kind: str,
        sent_at: float, delivered_at: float,
    ) -> None:
        """One delivered message attributed to ``trace_id``."""
        self.hops += 1
        self._events.append(
            {
                "ph": "X",
                "cat": "net",
                "name": kind,
                "pid": _PID,
                "tid": src,
                "ts": _us(sent_at),
                "dur": _us(delivered_at - sent_at),
                "args": {"trace": trace_id, "src": src, "dst": dst},
            }
        )

    def drop(
        self, trace_id: int, src: int, dst: int, kind: str, cause: str, now: float
    ) -> None:
        """One dropped message (partition / loss) attributed to ``trace_id``."""
        self.drops += 1
        self._events.append(
            {
                "ph": "i",
                "cat": "net",
                "name": f"drop.{cause}",
                "pid": _PID,
                "tid": src,
                "ts": _us(now),
                "s": "t",
                "args": {"trace": trace_id, "kind": kind, "dst": dst},
            }
        )

    # ------------------------------------------------------------- reports

    @property
    def sampled_ops(self) -> int:
        return self._next_id

    @property
    def total_ops(self) -> int:
        return self._op_count

    def summary(self) -> Dict[str, int]:
        return {
            "total_ops": self._op_count,
            "sampled_ops": self._next_id,
            "hops": self.hops,
            "drops": self.drops,
            "events": len(self._events),
        }

    def to_chrome_dict(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object form (Perfetto-loadable)."""
        tids = sorted({event["tid"] for event in self._events})
        metadata: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": _PID,
                "tid": 0,
                "ts": 0,
                "args": {"name": "repro simulation"},
            }
        ]
        for tid in tids:
            metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": f"node-{tid}"},
                }
            )
        return {"traceEvents": metadata + self._events, "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        """Canonical serialisation — byte-identical per spec + seed."""
        return json.dumps(self.to_chrome_dict(), sort_keys=True)

"""Run manifests: provenance for every recorded scenario run.

A manifest makes an observability artifact directory self-describing —
which spec (by content hash) ran at which seed under which package
version, how long each runner phase took in wall-clock, and the SHA-256
of every artifact written next to it. That is what makes BENCH
trajectories and obs artifacts comparable across PRs: two manifests with
equal ``spec_sha256`` + ``seed`` describe the same experiment, and their
``metrics_sha256`` must match (the determinism contract, byte-compared
in CI).

Wall-clock fields (``created_at``, phase timings) are provenance, not
metrics — they naturally differ between runs; everything derived from
the simulation is deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Any, Dict, Iterable, Tuple

__all__ = [
    "MANIFEST_SCHEMA",
    "build_environment",
    "load_manifest",
    "sha256_bytes",
    "sha256_file",
    "spec_sha256",
    "write_manifest",
]

MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def spec_sha256(spec) -> str:
    """Content hash of a :class:`~repro.scenarios.spec.ScenarioSpec`:
    canonical JSON of its dict form, so formatting and field order in
    the source TOML never matter."""
    return sha256_bytes(
        json.dumps(spec.to_dict(), sort_keys=True).encode("utf-8")
    )


def build_environment() -> Dict[str, str]:
    """Package/interpreter/platform provenance."""
    from repro import __version__  # late import: repro imports widely

    return {
        "package_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def artifact_entries(
    directory: str, names: Iterable[str]
) -> Tuple[Dict[str, Any], ...]:
    """Hash each named artifact file inside ``directory``."""
    entries = []
    for name in names:
        path = os.path.join(directory, name)
        entries.append(
            {
                "name": name,
                "sha256": sha256_file(path),
                "bytes": os.path.getsize(path),
            }
        )
    return tuple(entries)


def write_manifest(directory: str, manifest: Dict[str, Any]) -> str:
    """Write ``manifest.json`` into ``directory``; returns its path."""
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_manifest(path: str) -> Dict[str, Any]:
    """Load a manifest from a file path or an artifact directory."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def created_at() -> float:
    """Wall-clock stamp (seconds since epoch) — provenance only."""
    return time.time()

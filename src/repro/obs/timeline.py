"""Windowed metric timelines sampled on a periodic sim-clock probe.

:class:`TimelineRecorder` snapshots the
:class:`~repro.sim.metrics.MetricsRegistry` counter totals (and, when an
observer is attached, the staleness / availability state) every
``window`` simulated seconds and emits one row of *deltas* per window:
message rates by type, drops per fault cause, stale reads,
unavailability windows opened and still open. The final partial window
is flushed at :meth:`stop`.

Determinism contract: the probe reads counters and schedules its own
next firing — it draws no RNG and mutates no protocol state, so the
simulation trajectory is unchanged. The probe events it adds to the
scheduler are counted in :attr:`probe_events` so the scenario runner can
subtract them from the reported ``events_processed`` (the one core
metric a probe would otherwise perturb). Two same-seed runs therefore
produce byte-identical :meth:`to_json` output, and a run with the
recorder attached produces byte-identical core metrics to one without.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["TimelineRecorder"]

TIMELINE_SCHEMA = 1

# Counter-name prefix shared by every drop cause the network accounts.
_DROP_PREFIX = "msg.dropped."


class TimelineRecorder:
    """Collects per-window counter deltas from a running simulation.

    Usage: :meth:`attach` once the :class:`~repro.sim.simulator.Simulation`
    exists (the first probe fires one window later), optionally
    :meth:`attach_observer` when the workload's
    :class:`~repro.workload.runner.ConsistencyObserver` is created, and
    :meth:`stop` at the end of the run to flush the last partial window
    and cancel the pending probe.
    """

    def __init__(self, window: float = 5.0) -> None:
        if window <= 0:
            raise ConfigurationError(f"timeline window must be positive, got {window}")
        self.window = float(window)
        self.rows: List[Dict[str, Any]] = []
        self.probe_events = 0
        self._sim = None
        self._observer = None
        self._pending = None
        self._last_time = 0.0
        self._last_snapshot: Dict[str, float] = {}
        self._last_stale = 0
        self._last_closed = 0
        self._stopped = False

    # ------------------------------------------------------------- wiring

    def attach(self, sim) -> None:
        """Baseline the counters at ``sim.now`` and start probing."""
        self._sim = sim
        self._last_time = sim.now
        self._last_snapshot = sim.metrics.totals()
        self._pending = sim.scheduler.schedule(self.window, self._probe)

    def attach_observer(self, observer) -> None:
        """Add staleness/availability columns sourced from ``observer``."""
        self._observer = observer

    # ------------------------------------------------------------ probing

    def _probe(self) -> None:
        self.probe_events += 1
        self._emit(self._sim.now)
        self._pending = self._sim.scheduler.schedule(self.window, self._probe)

    def _emit(self, now: float) -> None:
        metrics = self._sim.metrics
        snapshot = metrics.totals()
        previous = self._last_snapshot
        counters = {}
        for name, value in snapshot.items():
            delta = value - previous.get(name, 0.0)
            if delta:
                counters[name] = delta
        row: Dict[str, Any] = {
            "start": self._last_time,
            "end": now,
            "counters": counters,
        }
        observer = self._observer
        if observer is not None:
            stale = observer.stale_reads
            row["stale_reads"] = stale - self._last_stale
            self._last_stale = stale
            availability = observer.availability
            closed = availability.closed_count
            row["unavail_closed"] = closed - self._last_closed
            row["unavail_open"] = availability.open_count
            self._last_closed = closed
        self.rows.append(row)
        self._last_snapshot = snapshot
        self._last_time = now

    def stop(self, now: float) -> None:
        """Flush the final partial window and stop probing (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self._sim is not None and now > self._last_time:
            self._emit(now)

    # ------------------------------------------------------------ reports

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TIMELINE_SCHEMA,
            "window": self.window,
            "windows": self.rows,
        }

    def to_json(self) -> str:
        """Canonical serialisation — byte-identical per spec + seed."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def damage_rows(self) -> List[Dict[str, float]]:
        """A compact per-window damage view (for hunt logs and reports):
        stale reads, message drops of any cause, and open unavailability
        windows at the window boundary."""
        rows = []
        for row in self.rows:
            drops = sum(
                value
                for name, value in row["counters"].items()
                # Only the per-cause aggregates; the ".<cause>.<Type>"
                # breakdowns would double-count.
                if name.startswith(_DROP_PREFIX) and "." not in name[len(_DROP_PREFIX):]
            )
            rows.append(
                {
                    "t": row["start"],
                    "end": row["end"],
                    "stale": float(row.get("stale_reads", 0)),
                    "drops": drops,
                    "unavail_open": float(row.get("unavail_open", 0)),
                }
            )
        return rows

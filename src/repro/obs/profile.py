"""Wall-clock hotspot attribution for the scheduler's event loop.

:class:`HotspotProfiler` hangs off :attr:`Scheduler.profiler
<repro.sim.scheduler.Scheduler.profiler>`: when set, the scheduler
brackets every event callback with ``perf_counter`` and reports the
elapsed wall time here, keyed by the handler's qualified name. Network
deliveries are specialised per message type
(``Network._deliver[CyclonRequest]``), because "delivery" at paper scale
is most of the run and the per-type split is what directs optimisation
work (see ROADMAP, the 1k-node wall).

This is the one pillar whose *output* is not deterministic — wall time
never is — but its presence still cannot change a run's trajectory: the
instrumentation only reads the clock around callbacks that would have
fired anyway. It is opt-in because two extra ``perf_counter`` calls per
event cost real throughput at engine-bench scale.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["HotspotProfiler"]

# Delivery handlers worth splitting per message type.
_DELIVER_LABELS = ("Network._deliver", "Network._deliver_traced")


class HotspotProfiler:
    """Accumulates per-handler event counts and wall seconds."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        # label -> [event count, total wall seconds]
        self._stats: Dict[str, List[float]] = {}

    def record(self, fn: Any, args: tuple, elapsed: float) -> None:
        """Account one fired event (called by the scheduler hot loop)."""
        label = getattr(fn, "__qualname__", None)
        if label is None:
            label = type(fn).__name__
        elif label in _DELIVER_LABELS and len(args) > 2:
            # args = (src, dst, msg, ...): split delivery cost per type.
            label = f"Network._deliver[{type(args[2]).__name__}]"
        entry = self._stats.get(label)
        if entry is None:
            self._stats[label] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    # ------------------------------------------------------------- reports

    @property
    def total_events(self) -> int:
        return int(sum(entry[0] for entry in self._stats.values()))

    @property
    def total_wall(self) -> float:
        return sum(entry[1] for entry in self._stats.values())

    def rows(self) -> List[Dict[str, Any]]:
        """One row per handler, heaviest wall share first."""
        total = self.total_wall
        rows = []
        for label, (count, wall) in sorted(
            self._stats.items(), key=lambda item: (-item[1][1], item[0])
        ):
            rows.append(
                {
                    "handler": label,
                    "events": int(count),
                    "wall_s": round(wall, 6),
                    "share": round(wall / total, 4) if total > 0 else 0.0,
                    "us_per_event": round(wall / count * 1e6, 3) if count else 0.0,
                }
            )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "total_events": self.total_events,
            "total_wall_s": round(self.total_wall, 6),
            "hotspots": self.rows(),
        }

    def table(self, top: int = 15) -> str:
        """A fixed-width hotspot table for terminal output."""
        rows = self.rows()[:top]
        if not rows:
            return "(no events profiled)"
        width = max(len("handler"), max(len(r["handler"]) for r in rows))
        lines = [
            f"{'handler':<{width}}  {'events':>9}  {'wall_s':>9}  "
            f"{'share':>6}  {'us/event':>9}"
        ]
        for r in rows:
            lines.append(
                f"{r['handler']:<{width}}  {r['events']:>9}  {r['wall_s']:>9.3f}  "
                f"{r['share']:>6.1%}  {r['us_per_event']:>9.2f}"
            )
        return "\n".join(lines)

"""Deterministic flight recorder: timelines, op traces, hotspots, manifests.

Every metric the platform reports elsewhere is an end-of-run aggregate;
this package adds the *time-resolved* layer — when staleness spikes
after a partition, which network hop makes a tail read slow, where the
wall-clock goes at 1k nodes — without ever changing what a run computes.

Four pillars, all optional and independently switchable:

* :class:`~repro.obs.timeline.TimelineRecorder` — per-window deltas of
  every registry counter plus staleness/availability state, sampled on
  a periodic sim-clock probe.
* :class:`~repro.obs.trace.OpTracer` — deterministic head-sampling of
  client operations (every Nth op, no RNG draws) threaded through
  issue → network hops → delivery → ack, exported as Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``).
* :class:`~repro.obs.profile.HotspotProfiler` — opt-in wall-clock
  attribution per event-handler type on the scheduler loop.
* :mod:`repro.obs.manifest` — run provenance: spec hash, seed, package
  version, wall-phase timings, artifact checksums.

The determinism contract (asserted in CI): probes draw **no** RNG and
mutate **no** protocol state; timeline probes do add scheduler events,
so the runner subtracts their count from the reported
``events_processed`` — a run with observability on emits *byte-identical*
core metrics to the same run with it off, and two same-seed runs emit
byte-identical timeline/trace artifacts. See DESIGN.md,
"Observability".
"""

from repro.obs.manifest import (
    build_environment,
    load_manifest,
    sha256_bytes,
    sha256_file,
    spec_sha256,
    write_manifest,
)
from repro.obs.profile import HotspotProfiler
from repro.obs.recorder import FlightRecorder
from repro.obs.timeline import TimelineRecorder
from repro.obs.trace import OpTracer

__all__ = [
    "FlightRecorder",
    "HotspotProfiler",
    "OpTracer",
    "TimelineRecorder",
    "build_environment",
    "load_manifest",
    "sha256_bytes",
    "sha256_file",
    "spec_sha256",
    "write_manifest",
]

"""Distributed slicing service interface (paper Sections II & IV-A).

Slicing autonomously partitions the system into ``k`` groups ("slices")
ordered by a locally measured node attribute — DATAFLASKS slices by
storage capacity so that nodes with less capacity land in slices holding
less data. Each implementation continuously estimates which slice its
node belongs to, with **no global knowledge**, adapting under churn.

The contract consumed by the DataFlasks core:

* :meth:`my_slice` — current slice index in ``[0, num_slices)``
* :attr:`num_slices` — the configured ``k`` (dynamically adjustable,
  which the paper highlights as the door to autonomous replication
  management)
* :meth:`on_slice_change` — subscribe to reassignments (used for state
  transfer / garbage collection)
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.node import Service

__all__ = ["SlicingService"]

SliceChangeCallback = Callable[[int, int], None]  # (old_slice, new_slice)


class SlicingService(Service):
    """Abstract slicing protocol.

    :param num_slices: the number of slices ``k``.
    :param attribute: this node's locally measured attribute (e.g. storage
        capacity). Ties are broken by node id so the induced order is total.
    """

    name = "slicing"

    def __init__(self, num_slices: int, attribute: float) -> None:
        super().__init__()
        if num_slices <= 0:
            raise ConfigurationError("num_slices must be positive")
        self._num_slices = num_slices
        self.attribute = attribute
        self._slice: Optional[int] = None
        self._callbacks: List[SliceChangeCallback] = []

    # -------------------------------------------------------------- queries

    @property
    def num_slices(self) -> int:
        return self._num_slices

    def my_slice(self) -> Optional[int]:
        """Current slice index, or ``None`` before the first estimate."""
        return self._slice

    def sort_key(self) -> tuple:
        """The totally ordered value slicing sorts by."""
        assert self.node is not None
        return (self.attribute, self.node.id)

    # ------------------------------------------------------------- dynamics

    def set_num_slices(self, num_slices: int) -> None:
        """Reconfigure ``k`` at runtime; the estimate is recomputed."""
        if num_slices <= 0:
            raise ConfigurationError("num_slices must be positive")
        self._num_slices = num_slices
        self._recompute()

    def on_slice_change(self, callback: SliceChangeCallback) -> None:
        """Register ``callback(old_slice, new_slice)`` for reassignments."""
        self._callbacks.append(callback)

    # ----------------------------------------------------- subclass helpers

    def _set_slice(self, new_slice: int) -> None:
        """Record a new estimate, firing callbacks if it changed."""
        new_slice = max(0, min(self._num_slices - 1, new_slice))
        old = self._slice
        if new_slice == old:
            return
        self._slice = new_slice
        for callback in self._callbacks:
            callback(-1 if old is None else old, new_slice)

    def _slice_from_fraction(self, fraction: float) -> int:
        """Map a rank fraction in [0, 1] to a slice index."""
        return max(0, min(self._num_slices - 1, int(fraction * self._num_slices)))

    def _recompute(self) -> None:
        """Recompute the slice estimate after a reconfiguration.

        Subclasses with an internal estimate override this.
        """

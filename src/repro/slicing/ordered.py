"""Ordered slicing (Jelasity & Kermarrec, P2P 2006) — paper reference [13].

Every node draws a uniform random value ``x ∈ [0, 1)``. Periodically a
node gossips with a random PSS peer; if their (attribute, random-value)
pairs are *disordered* — the node with the smaller attribute holds the
larger ``x`` — they swap the ``x`` values. Pairwise swaps progressively
sort the random values by attribute, so each node's ``x`` converges to
its normalised rank and ``slice = floor(x * k)``.

The swap is a two-message exchange guarded against concurrent proposals:
a node that has a proposal in flight rejects incoming ones for that round
(rejection is just a reply carrying no swap), which keeps the multiset of
``x`` values a permutation — the protocol's key invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pss.base import PeerSamplingService
from repro.sim.node import Node
from repro.slicing.base import SlicingService

__all__ = ["OrderedSlicing", "SwapProposal", "SwapReply"]


@dataclass(frozen=True)
class SwapProposal:
    """Initiator's (attribute, node_id, x) triple."""

    attribute: float
    node_id: int
    x: float


@dataclass(frozen=True)
class SwapReply:
    """Responder's answer; ``swapped`` tells the initiator to adopt ``x``."""

    swapped: bool
    x: float


def _disordered(attr_a: tuple, x_a: float, attr_b: tuple, x_b: float) -> bool:
    """True when the pair violates the target order (needs a swap)."""
    if attr_a == attr_b:
        return False
    if attr_a < attr_b:
        return x_a > x_b
    return x_a < x_b


class OrderedSlicing(SlicingService):
    """Jelasity–Kermarrec ordered slicing as a node service.

    :param period: seconds between swap attempts.
    """

    name = "ordered-slicing"

    def __init__(self, num_slices: int, attribute: float, period: float = 1.0) -> None:
        super().__init__(num_slices, attribute)
        self.period = period
        self.x: float = 0.0
        self._awaiting_reply = False
        self.swaps = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        self.x = node.rng.random()
        node.register_handler(SwapProposal, self._on_proposal)
        node.register_handler(SwapReply, self._on_reply)
        node.every(self.period, self._round)
        self._set_slice(self._slice_from_fraction(self.x))

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(SwapProposal)
        node.unregister_handler(SwapReply)

    # -------------------------------------------------------------- rounds

    def _pss(self) -> PeerSamplingService:
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "OrderedSlicing requires a PeerSamplingService"
        return pss

    def _round(self) -> None:
        node = self.node
        assert node is not None
        self._awaiting_reply = False  # clear a lost-reply lock each round
        peer = self._pss().random_peer()
        if peer is None:
            return
        self._awaiting_reply = True
        node.send(peer, SwapProposal(self.attribute, node.id, self.x))

    def _on_proposal(self, msg: SwapProposal, src: int) -> None:
        node = self.node
        assert node is not None
        if self._awaiting_reply:
            # A swap of ours is in flight; refuse to avoid duplicating x's.
            node.send(src, SwapReply(swapped=False, x=0.0))
            return
        their_key = (msg.attribute, msg.node_id)
        if _disordered(self.sort_key(), self.x, their_key, msg.x):
            my_old_x = self.x
            self._adopt(msg.x)
            node.send(src, SwapReply(swapped=True, x=my_old_x))
        else:
            node.send(src, SwapReply(swapped=False, x=0.0))

    def _on_reply(self, msg: SwapReply, src: int) -> None:
        self._awaiting_reply = False
        if msg.swapped:
            self._adopt(msg.x)

    # ------------------------------------------------------------- updates

    def _adopt(self, x: float) -> None:
        self.x = x
        self.swaps += 1
        self._set_slice(self._slice_from_fraction(self.x))

    def _recompute(self) -> None:
        self._set_slice(self._slice_from_fraction(self.x))

"""Sliver-style slicing by rank sampling (Gramoli et al., PODC 2008) —
paper reference [12].

Instead of sorting random values, each node directly *estimates its rank*:
it remembers the attributes it has observed from peers and computes

    rank_fraction = |{observed attribute < mine}| / |observed|

then ``slice = floor(rank_fraction * k)``. Observations are gathered by
polling a few PSS peers each round. The estimate is unbiased as soon as
samples are roughly uniform (which the PSS guarantees) and reacts to
churn because the observation table is bounded and aged: the oldest
entries are evicted, so departed nodes stop weighing on the estimate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.slicing.base import SlicingService

__all__ = ["SliverSlicing", "AttributeQuery", "AttributeReport"]


@dataclass(frozen=True)
class AttributeQuery:
    """Ask a peer for its (attribute, id) sort key."""


@dataclass(frozen=True)
class AttributeReport:
    """A peer's sort key, pushed back to the querier."""

    attribute: float
    node_id: int


class SliverSlicing(SlicingService):
    """Rank-estimation slicing with a bounded observation table.

    :param sample_size: peers polled per round.
    :param table_size: max observations kept (FIFO eviction = aging).
    """

    name = "sliver-slicing"

    def __init__(
        self,
        num_slices: int,
        attribute: float,
        period: float = 1.0,
        sample_size: int = 3,
        table_size: int = 128,
    ) -> None:
        super().__init__(num_slices, attribute)
        if sample_size <= 0 or table_size <= 0:
            raise ConfigurationError("sample_size and table_size must be positive")
        self.period = period
        self.sample_size = sample_size
        self.table_size = table_size
        # node_id -> sort key; insertion order doubles as age (FIFO).
        self._observed: "OrderedDict[int, Tuple[float, int]]" = OrderedDict()

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(AttributeQuery, self._on_query)
        node.register_handler(AttributeReport, self._on_report)
        node.every(self.period, self._round)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(AttributeQuery)
        node.unregister_handler(AttributeReport)

    # -------------------------------------------------------------- rounds

    def _round(self) -> None:
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "SliverSlicing requires a PeerSamplingService"
        for peer in pss.sample(self.sample_size):
            node.send(peer, AttributeQuery())

    def _on_query(self, msg: AttributeQuery, src: int) -> None:
        node = self.node
        assert node is not None
        node.send(src, AttributeReport(self.attribute, node.id))

    def _on_report(self, msg: AttributeReport, src: int) -> None:
        self.observe(msg.node_id, (msg.attribute, msg.node_id))
        self._recompute()

    # ------------------------------------------------------------ estimate

    def observe(self, node_id: int, key: Tuple[float, int]) -> None:
        """Record an observation; re-observation refreshes its age."""
        if node_id in self._observed:
            del self._observed[node_id]
        self._observed[node_id] = key
        while len(self._observed) > self.table_size:
            self._observed.popitem(last=False)

    def rank_fraction(self) -> float:
        """Estimated normalised rank in [0, 1); 0.0 before any observation."""
        if not self._observed:
            return 0.0
        mine = self.sort_key()
        below = sum(1 for key in self._observed.values() if key < mine)
        return below / len(self._observed)

    @property
    def observations(self) -> int:
        return len(self._observed)

    def _recompute(self) -> None:
        if self._observed:
            self._set_slice(self._slice_from_fraction(self.rank_fraction()))

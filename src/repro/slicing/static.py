"""Static hash-based slicing — the "coin toss" baseline.

Section IV-A of the paper: "we could simply toss a coin and decide to
which slice a node belongs to. Provided we had uniformity [...] it would
be enough for partitioning the system. However, such approach is not
resilient to correlated faults." This module implements exactly that
baseline so bench A1 can demonstrate the claim: under a correlated slice
failure, hash slicing never rebalances while the adaptive protocols do.
"""

from __future__ import annotations

import hashlib

from repro.slicing.base import SlicingService

__all__ = ["StaticSlicing", "hash_slice"]


def hash_slice(node_id: int, num_slices: int) -> int:
    """Deterministic uniform slice for a node id (BLAKE2b based)."""
    digest = hashlib.blake2b(str(node_id).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_slices


class StaticSlicing(SlicingService):
    """Slice assignment fixed at boot by hashing the node id.

    Ignores the attribute entirely and never adapts — the non-resilient
    strawman the adaptive protocols are compared against.
    """

    name = "static-slicing"

    def start(self) -> None:
        assert self.node is not None
        self._set_slice(hash_slice(self.node.id, self.num_slices))

    def _recompute(self) -> None:
        assert self.node is not None
        self._set_slice(hash_slice(self.node.id, self.num_slices))

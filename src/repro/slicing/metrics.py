"""Slicing-quality metrics.

Used by tests and bench A1 to compare the protocols: how close is the
emergent partition to the ideal rank-based one, how balanced are slices,
and how often do nodes flap between slices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.sim.node import Node
from repro.slicing.base import SlicingService

__all__ = [
    "slice_assignments",
    "ideal_assignments",
    "assignment_accuracy",
    "slice_histogram",
    "slice_imbalance",
    "unassigned_fraction",
]


def _services(
    nodes: Sequence[Node], service_cls: Type[SlicingService]
) -> List[Tuple[Node, SlicingService]]:
    pairs = []
    for node in nodes:
        if not node.alive:
            continue
        service = node.get_service(service_cls)
        if service is not None:
            pairs.append((node, service))
    return pairs


def slice_assignments(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> Dict[int, Optional[int]]:
    """node id -> currently estimated slice (alive nodes only)."""
    return {node.id: svc.my_slice() for node, svc in _services(nodes, service_cls)}


def ideal_assignments(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> Dict[int, int]:
    """node id -> the slice a global sort by attribute would assign.

    Rank r out of N maps to slice ``floor(r * k / N)`` — the fixed point
    every slicing protocol is converging towards.
    """
    pairs = _services(nodes, service_cls)
    if not pairs:
        return {}
    k = pairs[0][1].num_slices
    ordered = sorted(pairs, key=lambda p: p[1].sort_key())
    n = len(ordered)
    return {
        node.id: min(k - 1, rank * k // n) for rank, (node, _) in enumerate(ordered)
    }


def assignment_accuracy(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> float:
    """Fraction of alive nodes currently sitting in their ideal slice."""
    actual = slice_assignments(nodes, service_cls)
    ideal = ideal_assignments(nodes, service_cls)
    if not ideal:
        return 0.0
    hits = sum(1 for node_id, want in ideal.items() if actual.get(node_id) == want)
    return hits / len(ideal)


def slice_histogram(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> Dict[int, int]:
    """slice index -> number of alive nodes claiming it (None excluded)."""
    hist: Dict[int, int] = {}
    for assigned in slice_assignments(nodes, service_cls).values():
        if assigned is not None:
            hist[assigned] = hist.get(assigned, 0) + 1
    return hist


def slice_imbalance(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> float:
    """max/mean slice population; 1.0 is perfectly balanced.

    Empty slices are counted with population 0 (they drag the mean down
    and signal a dangerous hole in the key space).
    """
    pairs = _services(nodes, service_cls)
    if not pairs:
        return 0.0
    k = pairs[0][1].num_slices
    hist = slice_histogram(nodes, service_cls)
    populations = [hist.get(i, 0) for i in range(k)]
    total = sum(populations)
    if total == 0:
        return 0.0
    mean_pop = total / k
    return max(populations) / mean_pop


def unassigned_fraction(
    nodes: Sequence[Node], service_cls: Type[SlicingService] = SlicingService
) -> float:
    """Fraction of alive nodes with no slice estimate yet."""
    assignments = slice_assignments(nodes, service_cls)
    if not assignments:
        return 1.0
    missing = sum(1 for s in assignments.values() if s is None)
    return missing / len(assignments)

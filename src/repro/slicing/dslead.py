"""DSlead-style slicing: low-memory, *steady* rank estimation.

The paper's Slice Manager is implemented by DSlead (reference [17],
"Slicing as a distributed systems primitive", building on Slead [16],
"low-memory steady distributed systems slicing"). Neither paper's text is
available to us, so this module implements a protocol with the two
properties their titles and the DATAFLASKS paper advertise — see
DESIGN.md, substitutions table:

* **low memory**: *bounded* state, independent of system size — a FIFO
  reservoir of the last ``reservoir_size`` attribute observations (a few
  hundred floats, versus Sliver's per-node table that grows with the
  number of distinct peers ever seen). The reservoir bounds rank
  precision to ``1/reservoir_size``, which comfortably supports the
  slice counts DATAFLASKS uses (tens of slices).
* **steady**: two-stage hysteresis — a node only migrates to a new slice
  when (a) its estimate has pointed at the same different slice for
  ``stability_rounds`` consecutive rounds *and* (b) the estimate sits a
  margin *inside* the proposed slice, so border nodes whose noisy
  estimate straddles a boundary do not flap. Flapping would trigger
  spurious state transfer in DATAFLASKS, the very problem Section VII
  worries about.

Each round the node polls a few PSS peers for their attributes and folds
the replies into the reservoir; churn is handled naturally because a
departed node's samples are pushed out by fresh observations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.slicing.base import SlicingService

__all__ = ["DSleadSlicing", "RankProbe", "RankSample"]


@dataclass(frozen=True)
class RankProbe:
    """Ask a peer for its sort key (DSlead round probe)."""

    round_id: int


@dataclass(frozen=True)
class RankSample:
    """A peer's sort key, tagged with the probe round that asked."""

    round_id: int
    attribute: float
    node_id: int


class DSleadSlicing(SlicingService):
    """Steady low-memory slicing service.

    :param period: seconds between rounds.
    :param sample_size: peers polled per round.
    :param reservoir_size: bounded FIFO of observations the rank estimate
        is computed over; precision is ``1/reservoir_size``.
    :param stability_rounds: consecutive rounds a new slice must persist
        before the node migrates.
    :param boundary_margin_fraction: dead-band around slice boundaries,
        as a fraction of slice width (see class docstring).
    """

    name = "dslead-slicing"

    def __init__(
        self,
        num_slices: int,
        attribute: float,
        period: float = 1.0,
        sample_size: int = 4,
        reservoir_size: int = 256,
        stability_rounds: int = 3,
        boundary_margin_fraction: float = 0.25,
    ) -> None:
        super().__init__(num_slices, attribute)
        if sample_size <= 0 or stability_rounds <= 0 or reservoir_size <= 0:
            raise ConfigurationError(
                "sample_size, reservoir_size and stability_rounds must be positive"
            )
        if not 0 <= boundary_margin_fraction < 0.5:
            raise ConfigurationError("boundary_margin_fraction must be in [0, 0.5)")
        self.period = period
        self.sample_size = sample_size
        self.reservoir_size = reservoir_size
        self.stability_rounds = stability_rounds
        self.boundary_margin_fraction = boundary_margin_fraction
        self._reservoir: Deque[Tuple[float, int]] = deque(maxlen=reservoir_size)
        self.round_id = 0
        self._candidate: Optional[int] = None
        self._candidate_streak = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(RankProbe, self._on_probe)
        node.register_handler(RankSample, self._on_sample)
        node.every(self.period, self._round)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(RankProbe)
        node.unregister_handler(RankSample)

    # -------------------------------------------------------------- rounds

    def _round(self) -> None:
        node = self.node
        assert node is not None
        self.round_id += 1
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "DSleadSlicing requires a PeerSamplingService"
        for peer in pss.sample(self.sample_size):
            node.send(peer, RankProbe(self.round_id))
        # Decide once per round, *before* this round's replies trickle in,
        # so every node follows the same cadence.
        self._consider()

    def _on_probe(self, msg: RankProbe, src: int) -> None:
        node = self.node
        assert node is not None
        node.send(src, RankSample(msg.round_id, self.attribute, node.id))

    def _on_sample(self, msg: RankSample, src: int) -> None:
        self._reservoir.append((msg.attribute, msg.node_id))

    # ------------------------------------------------------------ estimate

    @property
    def estimate(self) -> Optional[float]:
        """Current rank-fraction estimate in [0, 1), or None if empty."""
        if not self._reservoir:
            return None
        mine = self.sort_key()
        below = sum(1 for key in self._reservoir if key < mine)
        return below / len(self._reservoir)

    @property
    def observations(self) -> int:
        return len(self._reservoir)

    def _consider(self) -> None:
        """Apply the two-stage hysteresis to the current estimate."""
        estimate = self.estimate
        if estimate is None:
            return
        proposed = self._slice_from_fraction(estimate)
        if self._slice is None:
            self._set_slice(proposed)
            self._candidate = None
            self._candidate_streak = 0
            return
        if proposed == self._slice:
            self._candidate = None
            self._candidate_streak = 0
            return
        if not self._clears_boundary_margin(estimate, proposed):
            # Estimate hovers near the shared boundary: stay put.
            self._candidate = None
            self._candidate_streak = 0
            return
        if proposed == self._candidate:
            self._candidate_streak += 1
        else:
            self._candidate = proposed
            self._candidate_streak = 1
        if self._candidate_streak >= self.stability_rounds:
            self._set_slice(proposed)
            self._candidate = None
            self._candidate_streak = 0

    def _clears_boundary_margin(self, estimate: float, proposed: int) -> bool:
        """Is the estimate far enough inside ``proposed`` to migrate?

        The margin is measured against the boundary of the proposed slice
        that faces the current slice — the one a noisy border estimate
        would oscillate across.
        """
        assert self._slice is not None
        slice_width = 1.0 / self._num_slices
        margin = self.boundary_margin_fraction * slice_width
        if proposed > self._slice:
            facing_boundary = proposed * slice_width
            return estimate >= facing_boundary + margin
        facing_boundary = (proposed + 1) * slice_width
        return estimate <= facing_boundary - margin

    def _recompute(self) -> None:
        estimate = self.estimate
        if estimate is not None:
            # Reconfiguration is an explicit management action: apply the
            # new k immediately, bypassing hysteresis.
            self._set_slice(self._slice_from_fraction(estimate))

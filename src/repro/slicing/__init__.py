"""Distributed slicing protocols (paper Sections II, IV-A, V).

* :class:`~repro.slicing.dslead.DSleadSlicing` — steady low-memory rank
  estimation; the default Slice Manager, standing in for DSlead [17]
* :class:`~repro.slicing.ordered.OrderedSlicing` — Jelasity–Kermarrec
  random-value swapping [13]
* :class:`~repro.slicing.sliver.SliverSlicing` — Sliver-style rank
  sampling [12]
* :class:`~repro.slicing.static.StaticSlicing` — hash "coin toss" baseline
* :mod:`repro.slicing.metrics` — partition-quality measurements
"""

from repro.slicing.base import SlicingService
from repro.slicing.dslead import DSleadSlicing
from repro.slicing.metrics import (
    assignment_accuracy,
    ideal_assignments,
    slice_assignments,
    slice_histogram,
    slice_imbalance,
    unassigned_fraction,
)
from repro.slicing.ordered import OrderedSlicing
from repro.slicing.sliver import SliverSlicing
from repro.slicing.static import StaticSlicing, hash_slice

__all__ = [
    "DSleadSlicing",
    "OrderedSlicing",
    "SliverSlicing",
    "SlicingService",
    "StaticSlicing",
    "assignment_accuracy",
    "hash_slice",
    "ideal_assignments",
    "slice_assignments",
    "slice_histogram",
    "slice_imbalance",
    "unassigned_fraction",
]

"""Metrics collection for simulations.

The paper's evaluation metric is *the average number of messages each node
had to send/receive* (Figures 3 and 4), so message accounting is a
first-class citizen here: the network layer increments per-node counters
for every send and delivery, and :class:`MetricsRegistry` offers the
aggregations the benches need (totals, per-node means, percentiles).

Counters are organised as ``name -> node_id -> value``; node-independent
counters use ``node_id = None``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "AvailabilityTracker",
    "MetricsRegistry",
    "Histogram",
    "percentile",
    "mean",
    "stdev",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    vals = list(values)
    if len(vals) < 2:
        return 0.0
    mu = mean(vals)
    return math.sqrt(sum((v - mu) ** 2 for v in vals) / len(vals))


def percentile(values: Iterable[float], p: float) -> float:
    """Linear-interpolation percentile, ``p`` in [0, 100]."""
    vals = sorted(values)
    if not vals:
        return 0.0
    if len(vals) == 1:
        return vals[0]
    rank = (p / 100.0) * (len(vals) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return vals[lo]
    frac = rank - lo
    # lo + frac*(hi-lo) rather than the symmetric blend: it is exact for
    # equal endpoints (the blend underflows to 0.0 on denormal values).
    return vals[lo] + frac * (vals[hi] - vals[lo])


class Histogram:
    """A simple reservoir of float samples with summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """The raw samples (not a copy; do not mutate)."""
        return self._samples

    def mean(self) -> float:
        return mean(self._samples)

    def stdev(self) -> float:
        return stdev(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def summary(self) -> Dict[str, float]:
        """Mean/min/max and common percentiles as a dict."""
        if not self._samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": len(self._samples),
            "mean": self.mean(),
            "min": min(self._samples),
            "max": max(self._samples),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class AvailabilityTracker:
    """Per-key unavailability windows, the availability metric the fault
    scenarios report.

    Feed every read probe outcome through :meth:`record`. A key's
    unavailability window opens at its first failed read and closes at
    the next successful one; :meth:`summary` treats still-open windows as
    extending to ``now`` without mutating state, so it can be called at
    any point (and repeatedly) during a run.
    """

    def __init__(self) -> None:
        self._open: Dict[str, float] = {}
        self._closed: List[Tuple[str, float, float]] = []

    def record(self, key: str, time: float, ok: bool) -> None:
        """Account one read of ``key`` at virtual ``time``."""
        if ok:
            start = self._open.pop(key, None)
            if start is not None:
                self._closed.append((key, start, time))
        elif key not in self._open:
            self._open[key] = time

    @property
    def closed_windows(self) -> List[Tuple[str, float, float]]:
        """``(key, start, end)`` windows that have already healed."""
        return list(self._closed)

    @property
    def closed_count(self) -> int:
        """Number of healed windows (cheap; no copy)."""
        return len(self._closed)

    @property
    def open_count(self) -> int:
        """Number of keys currently inside an unavailability window."""
        return len(self._open)

    @property
    def open_windows(self) -> Dict[str, float]:
        """key -> window start time for still-open windows (a copy)."""
        return dict(self._open)

    def summary(self, now: float) -> Dict[str, float]:
        """Window count, distinct keys affected, and duration stats.

        Open windows are counted as lasting until ``now``. A window that
        opened exactly at ``now`` (the run-end boundary tie: the last
        probe fails at the same instant the summary is taken) counts as
        a zero-duration window, and an open window's contribution is
        clamped at zero — a caller passing a ``now`` earlier than the
        last recorded probe must never produce a negative duration.
        """
        windows = self._closed + [
            (key, start, max(start, now)) for key, start in self._open.items()
        ]
        durations = [end - start for _, start, end in windows]
        return {
            "windows": float(len(windows)),
            "keys": float(len({key for key, _, _ in windows})),
            "total": sum(durations),
            "mean": mean(durations),
            "max": max(durations) if durations else 0.0,
        }


class MetricsRegistry:
    """Per-node counters and named histograms for one simulation run.

    ``inc`` sits on the simulation's hottest path (every message send and
    delivery hits it at least twice), so counters are plain nested dicts —
    no ``defaultdict`` factory machinery — and heavy callers can grab the
    live inner dict once via :meth:`counter` and update it directly.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[Optional[int], float]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------------- counters

    def inc(self, name: str, node: Optional[int] = None, by: float = 1.0) -> None:
        """Increment counter ``name`` for ``node`` (or the global slot)."""
        counters = self._counters
        slots = counters.get(name)
        if slots is None:
            slots = counters[name] = {}
        slots[node] = slots.get(node, 0.0) + by

    def counter(self, name: str) -> Dict[Optional[int], float]:
        """The live inner dict for counter ``name`` (created if missing).

        Hot paths cache this and update slots in place
        (``slots[node] = slots.get(node, 0.0) + 1.0``), skipping the
        per-call name lookup :meth:`inc` pays. The mapping is
        ``node_id -> value`` with ``None`` as the global slot, exactly
        what :meth:`get`/:meth:`total`/:meth:`per_node` read.
        """
        slots = self._counters.get(name)
        if slots is None:
            slots = self._counters[name] = {}
        return slots

    def get(self, name: str, node: Optional[int] = None) -> float:
        """Current value of counter ``name`` for ``node`` (0.0 if unset)."""
        return self._counters.get(name, {}).get(node, 0.0)

    def total(self, name: str) -> float:
        """Sum of counter ``name`` over every node (and the global slot)."""
        return sum(self._counters.get(name, {}).values())

    def per_node(self, name: str) -> Dict[int, float]:
        """Mapping of node id to counter value (global slot excluded)."""
        return {
            node: value
            for node, value in self._counters.get(name, {}).items()
            if node is not None
        }

    def mean_per_node(self, name: str, population: Optional[Iterable[int]] = None) -> float:
        """Mean of counter ``name`` across nodes.

        When ``population`` is given, nodes without a recorded value count
        as zero — this matches the paper's "average per node" metric, where
        a node that handled no messages still contributes to the mean.
        """
        values = self.per_node(name)
        if population is not None:
            ids = list(population)
            if not ids:
                return 0.0
            return sum(values.get(i, 0.0) for i in ids) / len(ids)
        return mean(values.values())

    def counter_names(self) -> List[str]:
        """All counter names with at least one recorded slot, sorted.

        Names whose inner dict is still empty are excluded: hot paths
        pre-create inner dicts via :meth:`counter` before any increment
        happens, and a counter that never fired should stay invisible to
        the reporting surface (as it was before :meth:`counter` existed).
        """
        return sorted(name for name, slots in self._counters.items() if slots)

    # --------------------------------------------------------- histograms

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram()
            self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` in histogram ``name``."""
        self.histogram(name).observe(value)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    # ------------------------------------------------------------ reports

    def message_load(self, population: Optional[Iterable[int]] = None) -> Dict[str, float]:
        """The paper's headline metric: per-node message load.

        Returns mean messages sent, received, and their sum ("handled") per
        node. The network layer maintains the ``msg.sent`` / ``msg.received``
        counters this reads.
        """
        pop = list(population) if population is not None else None
        sent = self.mean_per_node("msg.sent", pop)
        received = self.mean_per_node("msg.received", pop)
        return {"sent": sent, "received": received, "handled": sent + received}

    def snapshot(self) -> Dict[str, float]:
        """Totals of every counter — handy for quick debugging/tests."""
        return {name: self.total(name) for name in self.counter_names()}

    def totals(self) -> Dict[str, float]:
        """Like :meth:`snapshot` but unsorted and skipping empty slots —
        the timeline probe calls this every window, so it avoids the
        per-call sort (the consumer serialises with sorted keys anyway).
        """
        return {
            name: sum(slots.values())
            for name, slots in self._counters.items()
            if slots
        }

"""Simulation orchestration.

:class:`Simulation` wires a scheduler, network, metrics registry and RNG
registry into one :class:`~repro.sim.node.SimContext`, owns the node
population, and offers the run-loop helpers the rest of the library (and
the benches) build on. :func:`relaxed_gc` is the companion for long
runs: per-event garbage is acyclic (freed by refcounting), so Python's
cyclic collector contributes nothing on the hot path except repeated
scans of the large live object graph — at 1,000+ nodes those scans can
triple wall-clock time (see DESIGN.md, "Performance").
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError, UnknownNodeError
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node, SimContext
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

__all__ = ["Simulation", "relaxed_gc"]


@contextmanager
def relaxed_gc(gen0_threshold: int = 100_000) -> Iterator[None]:
    """Raise the cyclic-GC allocation trigger for the duration of a run.

    Simulation hot-path garbage — heap entries, events, messages — is
    acyclic and reclaimed immediately by reference counting; the cyclic
    collector only pays to rescan the (large, mostly permanent) live
    graph of nodes, stores and views, and with the default ``gen0=700``
    threshold it does so thousands of times per simulated run. Raising
    the threshold recovers up to ~3x wall-clock at 1,000+ nodes while
    still catching genuine cycles (dead node/service pairs) eventually.

    Thresholds are process-global, so they are restored on exit and a
    full collection sweeps up any cycles that accumulated meanwhile.
    Nesting is harmless (the inner context restores the outer's values).
    """
    old = gc.get_threshold()
    gc.set_threshold(gen0_threshold, old[1], old[2])
    try:
        yield
    finally:
        gc.set_threshold(*old)
        gc.collect()

NodeFactory = Callable[[int, SimContext], Node]


class Simulation:
    """A complete simulated deployment.

    >>> sim = Simulation(seed=7)
    >>> nodes = sim.add_nodes(Node, 3)
    >>> sim.start_all()
    >>> sorted(sim.alive_ids()) == [n.id for n in nodes]
    True
    """

    def __init__(
        self,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.seed = seed
        self.scheduler = Scheduler()
        self.metrics = MetricsRegistry()
        self.rng_registry = RngRegistry(seed)
        self.network = Network(
            self.scheduler,
            self.rng_registry.stream("network"),
            self.metrics,
            latency_model=latency_model,
            loss_rate=loss_rate,
        )
        self.ctx = SimContext(self.scheduler, self.network, self.metrics, self.rng_registry)
        self.nodes: Dict[int, Node] = {}
        self._next_id = 0

    # ----------------------------------------------------------- population

    def allocate_id(self) -> int:
        """Reserve a fresh node id (monotonically increasing)."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def add_node(self, factory: NodeFactory, node_id: Optional[int] = None) -> Node:
        """Create a node via ``factory(node_id, ctx)`` and track it.

        The node is *not* started; call :meth:`Node.start` or
        :meth:`start_all`.
        """
        if node_id is None:
            node_id = self.allocate_id()
        elif node_id in self.nodes:
            raise SimulationError(f"node id {node_id} already exists")
        else:
            self._next_id = max(self._next_id, node_id + 1)
        node = factory(node_id, self.ctx)
        self.nodes[node_id] = node
        return node

    def add_nodes(self, factory: NodeFactory, count: int) -> List[Node]:
        """Create ``count`` nodes in one call."""
        return [self.add_node(factory) for _ in range(count)]

    def remove_node(self, node_id: int) -> None:
        """Stop and forget a node entirely."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(node_id)
        node.stop()

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def start_all(self) -> None:
        for node in self.nodes.values():
            node.start()

    def stop_all(self) -> None:
        for node in self.nodes.values():
            node.stop()

    def alive_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.alive]

    def alive_ids(self) -> List[int]:
        return [n.id for n in self.nodes.values() if n.alive]

    # ------------------------------------------------------------- running

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Advance virtual time to ``time`` (absolute)."""
        self.scheduler.run(until=time, max_events=max_events)

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.run_until(self.scheduler.now + duration)

    def run_until_condition(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        check_interval: float = 0.5,
    ) -> bool:
        """Run until ``predicate()`` is true or ``timeout`` seconds elapse.

        Returns whether the predicate became true. The predicate is polled
        every ``check_interval`` of virtual time, which keeps the check off
        the hot event path.
        """
        deadline = self.scheduler.now + timeout
        while self.scheduler.now < deadline:
            if predicate():
                return True
            self.run_until(min(self.scheduler.now + check_interval, deadline))
        return predicate()

    # -------------------------------------------------------------- metrics

    def message_load(self) -> Dict[str, float]:
        """Per-node message load over *all* nodes ever created.

        This mirrors the paper's figures, which average over the whole
        population of the run.
        """
        return self.metrics.message_load(population=list(self.nodes))

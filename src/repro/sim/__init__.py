"""Simulation substrate: deterministic discrete-event engine.

Public surface:

* :class:`~repro.sim.scheduler.Scheduler` — event heap with virtual time
* :class:`~repro.sim.network.Network` and latency models
* :class:`~repro.sim.node.Node` / :class:`~repro.sim.node.Service`
* :class:`~repro.sim.simulator.Simulation` — a whole deployment
* :class:`~repro.sim.metrics.MetricsRegistry` — message accounting
* :class:`~repro.sim.rng.RngRegistry` — named seeded RNG streams
"""

from repro.sim.metrics import (
    AvailabilityTracker,
    Histogram,
    MetricsRegistry,
    mean,
    percentile,
    stdev,
)
from repro.sim.network import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.node import Node, PeriodicTask, Service, SimContext
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import Event, Scheduler
from repro.sim.simulator import Simulation, relaxed_gc

__all__ = [
    "AvailabilityTracker",
    "Event",
    "FixedLatency",
    "Histogram",
    "LatencyModel",
    "LogNormalLatency",
    "mean",
    "MetricsRegistry",
    "Network",
    "Node",
    "percentile",
    "PeriodicTask",
    "RngRegistry",
    "Scheduler",
    "Service",
    "SimContext",
    "Simulation",
    "relaxed_gc",
    "stdev",
    "UniformLatency",
    "derive_seed",
]

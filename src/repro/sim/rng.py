"""Seeded random-number streams.

Every stochastic component of the simulation (network latency, each
protocol instance, the workload generator, churn) draws from its *own*
named stream derived from the master seed. This keeps runs reproducible
even when components are added or reordered: adding a new protocol does
not perturb the random choices of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("net")
    >>> b = reg.stream("net")
    >>> a is b
    True
    >>> reg.stream("node.1") is reg.stream("node.2")
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed is derived from ``name``.

        Useful when a sub-experiment needs a whole namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, name))

"""Deterministic discrete-event scheduler.

This is the beating heart of the simulation substrate: a binary-heap event
queue with a monotonically increasing sequence number used as a tie breaker,
which makes runs fully deterministic for a given seed — two events scheduled
for the same instant always fire in scheduling order.

The paper evaluated DATAFLASKS inside Minha, an event-driven JVM simulator.
This module plays Minha's role for the Python reproduction (see DESIGN.md,
"substitutions").
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Scheduler"]


class Event:
    """A scheduled callback.

    Events are created through :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at` and can be cancelled with
    :meth:`Scheduler.cancel` (or :meth:`cancel` directly). A cancelled event
    stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, fn={getattr(self.fn, '__name__', self.fn)!r})"


class Scheduler:
    """A deterministic event heap with virtual time.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule(1.5, fired.append, "a")
    >>> _ = sched.schedule(0.5, fired.append, "b")
    >>> sched.run()
    >>> fired
    ['b', 'a']
    >>> sched.now
    1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # -------------------------------------------------------------- execution

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, virtual time is advanced to exactly ``until``
        even if the last event fired earlier, so repeated ``run(until=...)``
        calls compose predictably.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            fired += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the heap completely; returns the number of events fired.

        ``max_events`` guards against runaway periodic timers.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events; "
                    "likely an unbounded periodic timer"
                )
        return fired

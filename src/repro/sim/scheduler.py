"""Deterministic discrete-event scheduler.

This is the beating heart of the simulation substrate: a binary-heap event
queue with a monotonically increasing sequence number used as a tie breaker,
which makes runs fully deterministic for a given seed — two events scheduled
for the same instant always fire in scheduling order.

The paper evaluated DATAFLASKS inside Minha, an event-driven JVM simulator.
This module plays Minha's role for the Python reproduction (see DESIGN.md,
"substitutions").

Hot-path note: the heap stores ``(time, seq, event)`` tuples rather than
:class:`Event` objects, so every sift comparison is a C-level tuple
comparison instead of a Python-level ``Event.__lt__`` call — at paper
scale the scheduler performs tens of comparisons per event, making this
the single largest per-event cost (see DESIGN.md, "Performance"). ``seq``
is unique, so a comparison never reaches the event object itself.
"""

from __future__ import annotations

import heapq
import itertools
from math import isfinite
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "Scheduler"]


class Event:
    """A scheduled callback.

    Events are created through :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at` and can be cancelled with
    :meth:`Scheduler.cancel` (or :meth:`cancel` directly). A cancelled event
    stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # The scheduler itself never compares Events — its heap holds
        # (time, seq, event) tuples (see module docstring). This exists
        # only for external code that heaps Event objects directly, and
        # must mirror the tuple ordering exactly.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, fn={getattr(self.fn, '__name__', self.fn)!r})"


class Scheduler:
    """A deterministic event heap with virtual time.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule(1.5, fired.append, "a")
    >>> _ = sched.schedule(0.5, fired.append, "b")
    >>> sched.run()
    >>> fired
    ['b', 'a']
    >>> sched.now
    1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Opt-in wall-clock hotspot hook (repro.obs.profile): when set,
        # every fired callback is bracketed with perf_counter and
        # reported via profiler.record(fn, args, elapsed). When None
        # (the default) the run loop pays one local None-check per event.
        self.profiler = None

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or not isfinite(delay):
            # NaN fails every comparison, so `delay < 0` alone would let it
            # through and silently corrupt heap ordering; +inf would park
            # the event unreachably. Both must fail loudly.
            raise SimulationError(f"cannot schedule an event with delay {delay}s")
        time = self._now + delay
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual time ``time``."""
        if time < self._now or not isfinite(time):
            raise SimulationError(
                f"cannot schedule an event at t={time} "
                f"(current time t={self._now}; time must be finite and not in the past)"
            )
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # -------------------------------------------------------------- execution

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        heap = self._heap
        profiler = self.profiler
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            if profiler is None:
                event.fn(*event.args)
            else:
                t0 = perf_counter()
                event.fn(*event.args)
                profiler.record(event.fn, event.args, perf_counter() - t0)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, virtual time is advanced to exactly
        ``until`` even if the last event fired earlier, so repeated
        ``run(until=...)`` calls compose predictably. The one exception:
        if ``max_events`` stopped the run while events are still pending
        at or before ``until``, time only advances to the next pending
        event's instant — virtual time never jumps past work that has not
        run (and therefore never rewinds when that work later fires).
        """
        heap = self._heap
        pop = heapq.heappop
        profiler = self.profiler
        fired = 0
        while heap:
            if max_events is not None and fired >= max_events:
                break
            time, _seq, event = heap[0]
            if event.cancelled:
                pop(heap)
                continue
            if until is not None and time > until:
                break
            pop(heap)
            self._now = time
            self._events_processed += 1
            if profiler is None:
                event.fn(*event.args)
            else:
                t0 = perf_counter()
                event.fn(*event.args)
                profiler.record(event.fn, event.args, perf_counter() - t0)
            fired += 1
        if until is not None and until > self._now:
            horizon = until
            # Drop any cancelled prefix so it cannot pin the horizon.
            while heap and heap[0][2].cancelled:
                pop(heap)
            if heap and heap[0][0] < horizon:
                horizon = heap[0][0]
            if horizon > self._now:
                self._now = horizon

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the heap completely; returns the number of events fired.

        ``max_events`` guards against runaway periodic timers.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events; "
                    "likely an unbounded periodic timer"
                )
        return fired

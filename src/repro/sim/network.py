"""Simulated message-passing network.

Delivers messages between registered nodes with configurable latency,
random loss and network partitions. Every send/delivery is accounted in
the :class:`~repro.sim.metrics.MetricsRegistry`, both globally
(``msg.sent`` / ``msg.received``) and per message type
(``msg.sent.<Type>``), because per-node message load is the metric the
paper's evaluation reports. Drops are likewise accounted per cause and
per message type (``msg.dropped.partition.<Type>`` /
``msg.dropped.loss.<Type>``).

Semantics (matching the fault model of epidemic protocols):

* messages to dead or unknown nodes are silently dropped (gossip protocols
  must tolerate this; there is no connection abstraction),
* loss is Bernoulli per message; the effective per-message loss combines
  the global ``loss_rate`` with any burst-loss window and per-node /
  per-link overrides as independent drop chances
  (``1 - prod(1 - p_i)``),
* a partition divides nodes into groups; cross-group messages are
  dropped. Directed :meth:`block` rules additionally express *partial*
  and *asymmetric* partitions (A cannot reach B while B still reaches A),
* latency is drawn per message from a pluggable :class:`LatencyModel`,
  plus any per-node / per-link extra latency ("slow node" conditions).

Determinism: loss is sampled from the network's dedicated RNG stream
(``rng_registry.stream("network")`` — seeded from the scenario's master
seed), **never** from the global :mod:`random` module state, so fault
schedules replay byte-identically for a given spec + seed. The per-link
condition tables are plain dicts keyed by node id, mutated only through
the methods below; iteration order never influences behaviour.

Hot path: :meth:`Network.send` runs once per simulated message, so it
avoids all per-call allocation — counter keys per message type are
interned once into ``_type_cache`` (no f-string per send) and the
always-hit counters update cached inner dicts directly. When no fault
machinery is active (``_fault_free``, maintained by every partition /
block / condition mutator) the partition and condition lookups are
skipped entirely. The fast path consumes the RNG stream identically to
the slow path — loss is sampled iff the effective loss is positive, and
a run with only zero-impact fault layers makes exactly the same
drop/latency decisions as one with none (see DESIGN.md, "Performance").
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsRegistry
from repro.sim.scheduler import Scheduler

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Network",
]

# Shared "no degradation" entry so condition lookups never allocate.
_NO_CONDITIONS = (0.0, 0.0)


class LatencyModel:
    """Strategy object producing one-way message latencies (seconds)."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Latency for one message from ``src`` to ``dst``."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant latency for every message."""

    def __init__(self, latency: float = 0.01) -> None:
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.latency = latency

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.005, high: float = 0.05) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the classic WAN approximation.

    ``median`` is the median latency; ``sigma`` controls tail weight.
    """

    def __init__(self, median: float = 0.02, sigma: float = 0.5, cap: float = 2.0) -> None:
        if median <= 0 or sigma < 0 or cap <= 0:
            raise ConfigurationError("median/cap must be positive and sigma non-negative")
        import math

        self._mu = math.log(median)
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return min(rng.lognormvariate(self._mu, self.sigma), self.cap)


class Network:
    """Message router between simulated nodes.

    Nodes register a delivery callback; :meth:`send` schedules delivery
    through the shared :class:`~repro.sim.scheduler.Scheduler`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        metrics: MetricsRegistry,
        latency_model: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        self.scheduler = scheduler
        self.rng = rng
        self.metrics = metrics
        self.latency_model = latency_model or FixedLatency()
        self.loss_rate = loss_rate
        self._delivery: Dict[int, Callable[[Any, int], None]] = {}
        self._group_of: Dict[int, int] = {}
        self._partitioned = False
        # Directed blackhole rules: rule id -> (src set, dst set).
        self._blocks: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
        self._next_block_id = 0
        # Per-node / per-directed-link degradation: id -> (loss, extra latency).
        self._node_conditions: Dict[int, Tuple[float, float]] = {}
        self._link_conditions: Dict[Tuple[int, int], Tuple[float, float]] = {}
        # Token-based layers, so overlapping faults compose instead of
        # clobbering each other: token -> (node set, loss, extra latency)
        # and token -> burst rate.
        self._condition_layers: Dict[int, Tuple[FrozenSet[int], float, float]] = {}
        self._burst_layers: Dict[int, float] = {}
        self._next_token = 0
        # True while no partition/block/condition/burst machinery is
        # active; every mutator below recomputes it via _refresh_fast_path.
        self._fault_free = True
        # Interned per-message-type counter state:
        # type -> (kind, sent slots, received slots, partition-drop key,
        # loss-drop key). Built once per type, reused for every send.
        self._type_cache: Dict[type, Tuple[str, Dict, Dict, str, str]] = {}
        self._sent_slots = metrics.counter("msg.sent")
        self._recv_slots = metrics.counter("msg.received")
        # Optional repro.obs.trace.OpTracer: when set and activated
        # (tracer.active is a trace id), sends are attributed to the
        # active operation and deliveries re-activate it around the
        # receiving handler so cascaded sends inherit the id. When None
        # (the default) the send path pays one local None-check.
        self.tracer = None

    def _intern_type(self, msg_type: type) -> Tuple[str, Dict, Dict, str, str]:
        kind = msg_type.__name__
        entry = (
            kind,
            self.metrics.counter(f"msg.sent.{kind}"),
            self.metrics.counter(f"msg.received.{kind}"),
            f"msg.dropped.partition.{kind}",
            f"msg.dropped.loss.{kind}",
        )
        self._type_cache[msg_type] = entry
        return entry

    def _refresh_fast_path(self) -> None:
        self._fault_free = not (
            self._partitioned
            or self._blocks
            or self._node_conditions
            or self._link_conditions
            or self._condition_layers
            or self._burst_layers
        )

    # ---------------------------------------------------------- membership

    def register(self, node_id: int, deliver: Callable[[Any, int], None]) -> None:
        """Attach a node's delivery callback. Re-registering replaces it."""
        self._delivery[node_id] = deliver

    def unregister(self, node_id: int) -> None:
        """Detach a node; in-flight messages to it will be dropped."""
        self._delivery.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._delivery

    @property
    def registered_ids(self) -> List[int]:
        return list(self._delivery)

    # ---------------------------------------------------------- partitions

    def set_partitions(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network: messages between different groups drop.

        Nodes not mentioned in any group form an implicit extra group.
        A node listed in more than one group is a contradiction (it
        cannot be on both sides of a cut) and raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        keeping the last assignment.
        """
        group_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                previous = group_of.get(node_id)
                if previous is not None and previous != index:
                    raise ConfigurationError(
                        f"node {node_id} appears in partition groups "
                        f"{previous} and {index}; groups must be disjoint"
                    )
                group_of[node_id] = index
        self._group_of = group_of
        self._partitioned = bool(group_of)
        self._refresh_fast_path()

    def heal_partitions(self) -> None:
        """Remove any group partition and directed blocks; full
        connectivity is restored (degradation conditions are separate —
        see :meth:`clear_conditions`)."""
        self._group_of = {}
        self._partitioned = False
        self._blocks.clear()
        self._refresh_fast_path()

    def block(self, src_ids: Iterable[int], dst_ids: Iterable[int]) -> int:
        """Add a directed blackhole: messages from ``src_ids`` to
        ``dst_ids`` are dropped (counted as partition drops).

        Returns a rule id for :meth:`unblock`. Rules compose — an
        asymmetric partition is one rule, a symmetric one is two — and
        coexist with :meth:`set_partitions` groups.
        """
        rule_id = self._next_block_id
        self._next_block_id += 1
        self._blocks[rule_id] = (frozenset(src_ids), frozenset(dst_ids))
        self._refresh_fast_path()
        return rule_id

    def unblock(self, rule_id: int) -> None:
        """Remove one directed blackhole rule (idempotent)."""
        self._blocks.pop(rule_id, None)
        self._refresh_fast_path()

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if self._partitioned:
            default = -1
            if self._group_of.get(src, default) != self._group_of.get(dst, default):
                return True
        if self._blocks:
            for src_ids, dst_ids in self._blocks.values():
                if src in src_ids and dst in dst_ids:
                    return True
        return False

    # ----------------------------------------------------------- conditions

    def set_node_conditions(
        self, node_id: int, loss: float = 0.0, extra_latency: float = 0.0
    ) -> None:
        """Degrade every link touching ``node_id``: an extra independent
        drop chance and/or added one-way latency (a "slow node" / "lossy
        node"). Zero for both clears the entry."""
        self._node_conditions[node_id] = self._checked_conditions(loss, extra_latency)
        if self._node_conditions[node_id] == (0.0, 0.0):
            del self._node_conditions[node_id]
        self._refresh_fast_path()

    def set_link_conditions(
        self, src: int, dst: int, loss: float = 0.0, extra_latency: float = 0.0
    ) -> None:
        """Degrade one *directed* link ``src -> dst``. ``loss`` may be 1.0
        (a blackhole link), unlike the global ``loss_rate``. Zero for both
        clears the entry."""
        self._link_conditions[(src, dst)] = self._checked_conditions(loss, extra_latency)
        if self._link_conditions[(src, dst)] == (0.0, 0.0):
            del self._link_conditions[(src, dst)]
        self._refresh_fast_path()

    def clear_node_conditions(self, node_id: int) -> None:
        self._node_conditions.pop(node_id, None)
        self._refresh_fast_path()

    def clear_link_conditions(self, src: int, dst: int) -> None:
        self._link_conditions.pop((src, dst), None)
        self._refresh_fast_path()

    def clear_conditions(self) -> None:
        """Drop every degradation override: per-node, per-link, layered
        conditions, and burst-loss windows."""
        self._node_conditions.clear()
        self._link_conditions.clear()
        self._condition_layers.clear()
        self._burst_layers.clear()
        self._refresh_fast_path()

    def add_conditions(
        self, node_ids: Iterable[int], loss: float = 0.0, extra_latency: float = 0.0
    ) -> int:
        """Add one degradation *layer* over a node set: every link
        touching a member gets the extra drop chance / latency.

        Layers stack as independent conditions and are removed by the
        returned token, so overlapping faults whose victim sets intersect
        compose instead of clobbering each other (unlike the single-slot
        :meth:`set_node_conditions` override, which is last-wins).
        """
        conditions = self._checked_conditions(loss, extra_latency)
        token = self._next_token
        self._next_token += 1
        self._condition_layers[token] = (frozenset(node_ids),) + conditions
        self._refresh_fast_path()
        return token

    def remove_conditions(self, token: int) -> None:
        """Remove one degradation layer (idempotent)."""
        self._condition_layers.pop(token, None)
        self._refresh_fast_path()

    def add_burst_loss(self, rate: float) -> int:
        """Open a burst-loss window: a global extra drop chance combined
        independently with ``loss_rate`` and every other condition.
        Returns a token for :meth:`remove_burst_loss`; concurrent windows
        stack."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("burst loss rate must be in [0, 1]")
        token = self._next_token
        self._next_token += 1
        self._burst_layers[token] = rate
        self._refresh_fast_path()
        return token

    def remove_burst_loss(self, token: int) -> None:
        """Close one burst-loss window (idempotent)."""
        self._burst_layers.pop(token, None)
        self._refresh_fast_path()

    @staticmethod
    def _checked_conditions(loss: float, extra_latency: float) -> Tuple[float, float]:
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError("condition loss must be in [0, 1]")
        if extra_latency < 0:
            raise ConfigurationError("extra latency must be non-negative")
        return (loss, extra_latency)

    def _loss_for(self, src: int, dst: int) -> float:
        """Effective drop probability for one message on ``src -> dst``:
        every active condition is an independent Bernoulli drop.

        Composed in place (``keep *= 1 - p_i``) — no intermediate list,
        this runs per message whenever any fault machinery is active.
        When every active condition is zero-impact, ``keep`` stays exactly
        1.0 and the base ``loss_rate`` is returned bit-for-bit, so the
        slow path's drop threshold equals the fast path's (the
        fast/slow-equivalence contract)."""
        keep = 1.0
        node_conditions = self._node_conditions
        if node_conditions:
            keep *= (1.0 - node_conditions.get(src, _NO_CONDITIONS)[0]) * (
                1.0 - node_conditions.get(dst, _NO_CONDITIONS)[0]
            )
        if self._link_conditions:
            keep *= 1.0 - self._link_conditions.get((src, dst), _NO_CONDITIONS)[0]
        if self._burst_layers:
            for rate in self._burst_layers.values():
                keep *= 1.0 - rate
        if self._condition_layers:
            for members, layer_loss, _ in self._condition_layers.values():
                if src in members or dst in members:
                    keep *= 1.0 - layer_loss
        if keep == 1.0:
            return self.loss_rate
        return 1.0 - (1.0 - self.loss_rate) * keep

    def _extra_latency_for(self, src: int, dst: int) -> float:
        extra = 0.0
        node_conditions = self._node_conditions
        if node_conditions:
            extra += (
                node_conditions.get(src, _NO_CONDITIONS)[1]
                + node_conditions.get(dst, _NO_CONDITIONS)[1]
            )
        if self._link_conditions:
            extra += self._link_conditions.get((src, dst), _NO_CONDITIONS)[1]
        if self._condition_layers:
            for members, _, layer_latency in self._condition_layers.values():
                if src in members or dst in members:
                    extra += layer_latency
        return extra

    # -------------------------------------------------------------- sending

    def send(self, src: int, dst: int, msg: Any) -> bool:
        """Send ``msg`` from ``src`` to ``dst``.

        Returns ``True`` if the message was put on the wire (it may still be
        lost or find the destination dead on arrival); ``False`` if it was
        dropped immediately (self-send of network messages is allowed and
        delivered with normal latency).

        Ownership contract: once ``send`` accepts a message, the payload
        belongs to the network until delivery — the sender must not
        mutate it (messages are frozen dataclasses by convention, and
        payload fields should be snapshotted tuples). The ``repro lint``
        I-rules check this statically and
        :func:`repro.lint.isolation.isolation_guard`
        (``scenarios run --isolation-check``) enforces it at run time by
        digesting the payload here and re-verifying it at delivery.
        """
        entry = self._type_cache.get(type(msg))
        if entry is None:
            entry = self._intern_type(type(msg))
        sent = self._sent_slots
        sent[src] = sent.get(src, 0.0) + 1.0
        sent_kind = entry[1]
        sent_kind[None] = sent_kind.get(None, 0.0) + 1.0
        tracer = self.tracer
        trace = tracer.active if tracer is not None else None
        if self._fault_free:
            loss = self.loss_rate
        else:
            if self._crosses_partition(src, dst):
                self.metrics.inc("msg.dropped.partition")
                self.metrics.inc(entry[3])
                if trace is not None:
                    tracer.drop(trace, src, dst, entry[0], "partition", self.scheduler.now)
                return False
            loss = self._loss_for(src, dst)
        if loss > 0.0 and self.rng.random() < loss:
            self.metrics.inc("msg.dropped.loss")
            self.metrics.inc(entry[4])
            if trace is not None:
                tracer.drop(trace, src, dst, entry[0], "loss", self.scheduler.now)
            return False
        latency = self.latency_model.sample(self.rng, src, dst)
        if not self._fault_free:
            latency += self._extra_latency_for(src, dst)
        if trace is None:
            self.scheduler.schedule(latency, self._deliver, src, dst, msg, entry[2])
        else:
            self.scheduler.schedule(
                latency, self._deliver_traced, src, dst, msg, entry[2],
                trace, self.scheduler.now,
            )
        return True

    def _deliver_traced(
        self, src: int, dst: int, msg: Any, received_kind: Dict,
        trace: int, sent_at: float,
    ) -> None:
        """Delivery of a message attributed to an op trace: record the
        hop, then run the normal delivery with the trace re-activated so
        sends the handler causes (fan-out, acks) inherit the trace id."""
        tracer = self.tracer
        if tracer is None:
            self._deliver(src, dst, msg, received_kind)
            return
        tracer.hop(trace, src, dst, type(msg).__name__, sent_at, self.scheduler.now)
        previous = tracer.active
        tracer.active = trace
        try:
            self._deliver(src, dst, msg, received_kind)
        finally:
            tracer.active = previous

    def _deliver(self, src: int, dst: int, msg: Any, received_kind: Dict) -> None:
        # ``received_kind`` is the per-type received-counter slots dict from
        # the sender's interned entry — passed through the event so delivery
        # pays no type lookup.
        deliver = self._delivery.get(dst)
        if deliver is None:
            # Destination died (or never existed) while the message was in
            # flight — epidemic protocols tolerate this silently.
            self.metrics.inc("msg.dropped.dead")
            return
        received = self._recv_slots
        received[dst] = received.get(dst, 0.0) + 1.0
        received_kind[None] = received_kind.get(None, 0.0) + 1.0
        deliver(msg, src)

"""Simulated message-passing network.

Delivers messages between registered nodes with configurable latency,
random loss and network partitions. Every send/delivery is accounted in
the :class:`~repro.sim.metrics.MetricsRegistry`, both globally
(``msg.sent`` / ``msg.received``) and per message type
(``msg.sent.<Type>``), because per-node message load is the metric the
paper's evaluation reports.

Semantics (matching the fault model of epidemic protocols):

* messages to dead or unknown nodes are silently dropped (gossip protocols
  must tolerate this; there is no connection abstraction),
* loss is Bernoulli per message,
* a partition divides nodes into groups; cross-group messages are dropped,
* latency is drawn per message from a pluggable :class:`LatencyModel`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsRegistry
from repro.sim.scheduler import Scheduler

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Network",
]


class LatencyModel:
    """Strategy object producing one-way message latencies (seconds)."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Latency for one message from ``src`` to ``dst``."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant latency for every message."""

    def __init__(self, latency: float = 0.01) -> None:
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.latency = latency

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.005, high: float = 0.05) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the classic WAN approximation.

    ``median`` is the median latency; ``sigma`` controls tail weight.
    """

    def __init__(self, median: float = 0.02, sigma: float = 0.5, cap: float = 2.0) -> None:
        if median <= 0 or sigma < 0 or cap <= 0:
            raise ConfigurationError("median/cap must be positive and sigma non-negative")
        import math

        self._mu = math.log(median)
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return min(rng.lognormvariate(self._mu, self.sigma), self.cap)


class Network:
    """Message router between simulated nodes.

    Nodes register a delivery callback; :meth:`send` schedules delivery
    through the shared :class:`~repro.sim.scheduler.Scheduler`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        metrics: MetricsRegistry,
        latency_model: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        self.scheduler = scheduler
        self.rng = rng
        self.metrics = metrics
        self.latency_model = latency_model or FixedLatency()
        self.loss_rate = loss_rate
        self._delivery: Dict[int, Callable[[Any, int], None]] = {}
        self._group_of: Dict[int, int] = {}
        self._partitioned = False

    # ---------------------------------------------------------- membership

    def register(self, node_id: int, deliver: Callable[[Any, int], None]) -> None:
        """Attach a node's delivery callback. Re-registering replaces it."""
        self._delivery[node_id] = deliver

    def unregister(self, node_id: int) -> None:
        """Detach a node; in-flight messages to it will be dropped."""
        self._delivery.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._delivery

    @property
    def registered_ids(self) -> List[int]:
        return list(self._delivery)

    # ---------------------------------------------------------- partitions

    def set_partitions(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network: messages between different groups drop.

        Nodes not mentioned in any group form an implicit extra group.
        """
        self._group_of = {}
        for index, group in enumerate(groups):
            for node_id in group:
                self._group_of[node_id] = index
        self._partitioned = bool(self._group_of)

    def heal_partitions(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._group_of = {}
        self._partitioned = False

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if not self._partitioned:
            return False
        default = -1
        return self._group_of.get(src, default) != self._group_of.get(dst, default)

    # -------------------------------------------------------------- sending

    def send(self, src: int, dst: int, msg: Any) -> bool:
        """Send ``msg`` from ``src`` to ``dst``.

        Returns ``True`` if the message was put on the wire (it may still be
        lost or find the destination dead on arrival); ``False`` if it was
        dropped immediately (self-send of network messages is allowed and
        delivered with normal latency).
        """
        kind = type(msg).__name__
        self.metrics.inc("msg.sent", node=src)
        self.metrics.inc(f"msg.sent.{kind}")
        if self._crosses_partition(src, dst):
            self.metrics.inc("msg.dropped.partition")
            return False
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.metrics.inc("msg.dropped.loss")
            return False
        latency = self.latency_model.sample(self.rng, src, dst)
        self.scheduler.schedule(latency, self._deliver, src, dst, msg, kind)
        return True

    def _deliver(self, src: int, dst: int, msg: Any, kind: str) -> None:
        deliver = self._delivery.get(dst)
        if deliver is None:
            # Destination died (or never existed) while the message was in
            # flight — epidemic protocols tolerate this silently.
            self.metrics.inc("msg.dropped.dead")
            return
        self.metrics.inc("msg.received", node=dst)
        self.metrics.inc(f"msg.received.{kind}")
        deliver(msg, src)

"""Node and service framework.

A :class:`Node` is a simulated process with an id, a mailbox (the network
calls :meth:`Node.deliver`), and a set of attached :class:`Service`
instances. Services register handlers for message *types* (classes) and
periodic timers; this mirrors the paper's architecture where each
DATAFLASKS host runs four cooperating services (Slice Manager, Peer
Sampling, Load Balancer support, Request Handler) on one process.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import SimulationError
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.sim.scheduler import Event, Scheduler

__all__ = ["SimContext", "Node", "Service", "PeriodicTask"]


class SimContext:
    """Shared simulation environment handed to every node.

    Bundles the scheduler, network, metrics registry and RNG registry so
    that constructing a node needs a single argument.
    """

    def __init__(self, scheduler: Scheduler, network: Network, metrics: MetricsRegistry, rng_registry) -> None:
        self.scheduler = scheduler
        self.network = network
        self.metrics = metrics
        self.rng_registry = rng_registry

    @property
    def now(self) -> float:
        return self.scheduler.now

    def rng(self, name: str) -> random.Random:
        return self.rng_registry.stream(name)


class PeriodicTask:
    """A repeating timer with optional uniform jitter.

    The first firing happens after one (jittered) period, mimicking a
    protocol whose rounds start after the node boots. Call :meth:`stop`
    to cancel; stopping is idempotent and safe from inside the callback.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        period: float,
        fn: Callable[[], None],
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError("period must be positive")
        if jitter < 0 or jitter >= period:
            raise SimulationError("jitter must be in [0, period)")
        self._scheduler = scheduler
        self.period = period
        self.jitter = jitter
        self._fn = fn
        self._rng = rng or random.Random(0)
        self._event: Optional[Event] = None
        self._stopped = False
        self._schedule_next()

    def _delay(self) -> float:
        if self.jitter:
            return self.period + self._rng.uniform(-self.jitter, self.jitter)
        return self.period

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        self._event = self._scheduler.schedule(self._delay(), self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        try:
            self._fn()
        finally:
            self._schedule_next()

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return not self._stopped


class Service:
    """Base class for protocol services attached to a node.

    Subclasses override :meth:`start` (register handlers/timers) and
    optionally :meth:`stop` (cancel timers). ``self.node`` is available
    after :meth:`attach`.
    """

    name = "service"

    def __init__(self) -> None:
        self.node: Optional["Node"] = None

    def attach(self, node: "Node") -> None:
        self.node = node

    def start(self) -> None:
        """Called when the owning node starts."""

    def stop(self) -> None:
        """Called when the owning node stops/crashes."""


class Node:
    """A simulated process: id + message dispatch + timers + services."""

    def __init__(self, node_id: int, ctx: SimContext) -> None:
        self.id = node_id
        self.ctx = ctx
        self.alive = False
        self.started_at: Optional[float] = None
        self._handlers: Dict[Type[Any], Callable[[Any, int], None]] = {}
        self._timers: List[PeriodicTask] = []
        self._services: List[Service] = []
        # Interned per-type dead-letter counter slots, mirroring the
        # Network's per-type send/receive cache: type -> live inner dict
        # of `msg.unhandled.<Type>` (built on first dead-letter of that
        # type, reused for every later one).
        self._unhandled_slots: Dict[Type[Any], Dict[Optional[int], float]] = {}
        self.rng = ctx.rng(f"node.{node_id}")

    # ------------------------------------------------------------ plumbing

    @property
    def scheduler(self) -> Scheduler:
        return self.ctx.scheduler

    @property
    def network(self) -> Network:
        return self.ctx.network

    @property
    def metrics(self) -> MetricsRegistry:
        return self.ctx.metrics

    @property
    def now(self) -> float:
        return self.ctx.now

    # ------------------------------------------------------------ services

    def add_service(self, service: Service) -> Service:
        """Attach a service; it starts when the node starts."""
        service.attach(self)
        self._services.append(service)
        if self.alive:
            service.start()
        return service

    def get_service(self, cls: Type[Service]) -> Optional[Service]:
        """First attached service that is an instance of ``cls``."""
        for service in self._services:
            if isinstance(service, cls):
                return service
        return None

    @property
    def services(self) -> List[Service]:
        return list(self._services)

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Boot the node: register with the network, start services."""
        if self.alive:
            return
        self.alive = True
        self.started_at = self.now
        self.network.register(self.id, self.deliver)
        for service in self._services:
            service.start()
        self.on_start()

    def stop(self) -> None:
        """Cleanly stop the node (timers cancelled, network detached)."""
        if not self.alive:
            return
        self.alive = False
        for service in self._services:
            service.stop()
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        self.network.unregister(self.id)
        self.on_stop()

    def crash(self) -> None:
        """Fail-stop: identical to :meth:`stop` but kept distinct for
        readability of churn code and for subclass hooks (a crash must not
        flush state, for example)."""
        self.stop()

    def on_start(self) -> None:
        """Subclass hook, runs after services start."""

    def on_stop(self) -> None:
        """Subclass hook, runs after services stop."""

    # ------------------------------------------------------------ messaging

    def register_handler(self, msg_cls: Type[Any], fn: Callable[[Any, int], None]) -> None:
        """Route messages of ``msg_cls`` (exact type) to ``fn(msg, src)``."""
        if msg_cls in self._handlers:
            raise SimulationError(
                f"node {self.id}: handler for {msg_cls.__name__} already registered"
            )
        self._handlers[msg_cls] = fn

    def unregister_handler(self, msg_cls: Type[Any]) -> None:
        self._handlers.pop(msg_cls, None)

    def deliver(self, msg: Any, src: int) -> None:
        """Network entry point; dispatches by exact message type.

        A message with no handler dead-letters into a per-type counter
        (``msg.unhandled.<Type>``), so a scenario report names *which*
        protocol's messages went unheard instead of one opaque total.
        """
        if not self.alive:
            return
        handler = self._handlers.get(type(msg))
        if handler is None:
            slots = self._unhandled_slots.get(type(msg))
            if slots is None:
                slots = self._unhandled_slots[type(msg)] = self.metrics.counter(
                    f"msg.unhandled.{type(msg).__name__}"
                )
            slots[None] = slots.get(None, 0.0) + 1.0
            return
        handler(msg, src)

    def send(self, dst: int, msg: Any) -> bool:
        """Send ``msg`` to node ``dst``; drops silently if this node is dead."""
        if not self.alive:
            return False
        return self.network.send(self.id, dst, msg)

    # -------------------------------------------------------------- timers

    def every(
        self,
        period: float,
        fn: Callable[[], None],
        jitter: Optional[float] = None,
    ) -> PeriodicTask:
        """Run ``fn`` every ``period`` seconds while the node is alive.

        ``jitter`` defaults to 10% of the period, desynchronising protocol
        rounds across nodes the way real deployments are desynchronised.
        """
        if jitter is None:
            jitter = 0.1 * period
        task = PeriodicTask(self.scheduler, period, fn, jitter=jitter, rng=self.rng)
        self._timers.append(task)
        return task

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """One-shot timer; silently skipped if the node is dead by then."""

        def guarded(*inner: Any) -> None:
            if self.alive:
                fn(*inner)

        return self.scheduler.schedule(delay, guarded, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} id={self.id} {state}>"

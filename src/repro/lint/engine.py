"""The lint engine: walk files, parse, audit, apply suppressions and the
baseline, and return one structured result.

Dogfooding note: the engine itself obeys the rules it enforces — file
discovery sorts every directory listing, so a lint run visits files in
the same order on every platform and the JSON report is byte-stable.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.baseline import apply_baseline
from repro.lint.config import BaselineEntry, LintConfig
from repro.lint.protocol import analyze_modules, build_graph, extract_module
from repro.lint.protograph import ProtocolGraph
from repro.lint.rules import FAMILIES, Violation, is_known_rule
from repro.lint.visitors import audit_module

__all__ = ["LintResult", "build_protocol_graph", "lint_paths", "lint_source"]

# `# repro-lint: ignore[D301] reason` — rule ids comma-separated; the
# trailing reason is mandatory (enforced as rule D002, not by parsing).
_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9*,\s]+)\]\s*(.*)$"
)


@dataclass
class LintResult:
    """Everything one lint run learned about a tree."""

    files: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    allowed: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    select: Optional[Sequence[str]] = None,
    ignore_families: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    ``select`` scopes the run to the named rule ids/families;
    ``ignore_families`` drops whole families. Unknown selectors raise
    :class:`~repro.errors.ConfigurationError` — a typo'd ``--select``
    must not pass as a vacuously clean run.
    """
    config = config if config is not None else LintConfig()
    keep = _make_filter(select, ignore_families)
    result = LintResult()
    raw: List[Violation] = []
    suppressed: List[Violation] = []
    allowed: List[Violation] = []
    for target in paths:
        # A vanished target must fail loudly: "0 files checked, clean"
        # on a typo'd path would be a vacuously green CI gate.
        if not os.path.exists(target):
            result.errors.append(f"{target}: no such file or directory")
    sources: Dict[str, str] = {}
    modules = []
    for path in _iter_python_files(paths):
        result.files.append(path)
        try:
            with open(path, "r", encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            result.errors.append(f"{path}: unreadable: {exc}")
            continue
        file_raw, file_errors, tree = _lint_one(source, path, config)
        result.errors.extend(file_errors)
        if tree is not None and config.is_simpath(path):
            modules.append(extract_module(tree, path))
            sources[path] = source
        for violation in file_raw:
            if keep is not None and not keep(violation):
                continue
            status = _classify(violation, source, config, raw_list=raw)
            if status == "suppressed":
                suppressed.append(violation)
            elif status == "allowed":
                allowed.append(violation)
    # The protocol pass is whole-program: it runs once over every
    # sim-path module collected above, then each P-violation routes
    # through the same suppression/allow/baseline machinery, judged
    # against the source of the file it anchors in.
    _, protocol_violations = analyze_modules(modules, config)
    for violation in protocol_violations:
        if keep is not None and not keep(violation):
            continue
        status = _classify(
            violation, sources.get(violation.path, ""), config, raw_list=raw
        )
        if status == "suppressed":
            suppressed.append(violation)
        elif status == "allowed":
            allowed.append(violation)
    remaining, baselined, stale = apply_baseline(raw, config)
    result.violations = remaining
    result.suppressed = sorted(suppressed, key=Violation.sort_key)
    result.allowed = sorted(allowed, key=Violation.sort_key)
    result.baselined = baselined
    result.stale_baseline = stale
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    select: Optional[Sequence[str]] = None,
    ignore_families: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one in-memory module — the test-fixture entry point.

    Suppressions and the allowlist apply; the baseline applies too, so a
    config carrying baseline entries round-trips through the same logic
    as a tree walk.
    """
    config = config if config is not None else LintConfig()
    keep = _make_filter(select, ignore_families)
    result = LintResult(files=[path])
    file_raw, file_errors, tree = _lint_one(source, path, config)
    result.errors.extend(file_errors)
    if tree is not None and config.is_simpath(path):
        # Single-module protocol pass: fixtures exercise the P-rules
        # without a tree walk. Whole-program caveats apply (see
        # repro.lint.protocol).
        _, protocol_violations = analyze_modules(
            [extract_module(tree, path)], config
        )
        file_raw = file_raw + protocol_violations
    raw: List[Violation] = []
    for violation in file_raw:
        if keep is not None and not keep(violation):
            continue
        status = _classify(violation, source, config, raw_list=raw)
        if status == "suppressed":
            result.suppressed.append(violation)
        elif status == "allowed":
            result.allowed.append(violation)
    remaining, baselined, stale = apply_baseline(raw, config)
    result.violations = remaining
    result.baselined = baselined
    result.stale_baseline = stale
    return result


def build_protocol_graph(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> ProtocolGraph:
    """Extract and link the protocol graph of every sim-path module
    under ``paths`` — the ``repro protocol graph`` artifact. Uses the
    same sorted file walk as :func:`lint_paths`, so two invocations over
    the same tree serialise byte-identically."""
    config = config if config is not None else LintConfig()
    modules = []
    for path in _iter_python_files(paths):
        if not config.is_simpath(path):
            continue
        try:
            with open(path, "r", encoding="utf-8") as f:
                source = f.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError):
            continue
        modules.append(extract_module(tree, path))
    return build_graph(modules)


# ------------------------------------------------------------------ internals


def _make_filter(
    select: Optional[Sequence[str]],
    ignore_families: Optional[Sequence[str]],
):
    """Build a violation predicate from ``--select``/``--ignore-family``
    values, validating every selector up front."""
    if not select and not ignore_families:
        return None
    chosen = tuple(select or ())
    for selector in chosen:
        if not is_known_rule(selector):
            raise ConfigurationError(
                f"unknown rule selector {selector!r} (expected a rule id "
                f"like D301/I203 or a family prefix like D3/I2)"
            )
    ignored = tuple(ignore_families or ())
    for family in ignored:
        if family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise ConfigurationError(
                f"unknown rule family {family!r} (known families: {known})"
            )

    def keep(violation: Violation) -> bool:
        if chosen and not any(violation.rule.startswith(s) for s in chosen):
            return False
        return violation.rule[:2] not in ignored

    return keep


def _lint_one(
    source: str, path: str, config: LintConfig
) -> Tuple[List[Violation], List[str], Optional[ast.Module]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [],
            [f"{path}: syntax error: {exc.msg} (line {exc.lineno})"],
            None,
        )
    module_name = os.path.basename(path).rsplit(".", 1)[0]
    violations = audit_module(tree, path, config, module_name)
    violations.extend(_audit_suppression_comments(source, path))
    return violations, [], tree


def _audit_suppression_comments(source: str, path: str) -> List[Violation]:
    """D002: every suppression must carry a written reason."""
    violations: List[Violation] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        reason = match.group(2).strip()
        if not reason:
            violations.append(
                Violation(
                    rule="D002",
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message="suppression without a written justification",
                )
            )
        for rule in rules:
            if rule != "*" and not is_known_rule(rule):
                violations.append(
                    Violation(
                        rule="D002",
                        path=path,
                        line=lineno,
                        col=match.start(),
                        message=f"suppression names unknown rule {rule!r}",
                    )
                )
    return violations


def _classify(
    violation: Violation,
    source: str,
    config: LintConfig,
    raw_list: List[Violation],
) -> str:
    """Route one raw violation: suppressed inline, allowlisted, or kept
    for the baseline pass (appended to ``raw_list``)."""
    if violation.rule != "D002" and _is_suppressed(violation, source):
        return "suppressed"
    entry = config.allowed(violation.rule, violation.path)
    if entry is not None:
        return "allowed"
    raw_list.append(violation)
    return "kept"


def _is_suppressed(violation: Violation, source: str) -> bool:
    lines = source.splitlines()
    if not 1 <= violation.line <= len(lines):
        return False
    match = _SUPPRESSION.search(lines[violation.line - 1])
    if match is None:
        return False
    rules = {r.strip() for r in match.group(1).split(",")}
    return "*" in rules or violation.rule in rules or violation.rule[:2] in rules


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``*.py`` file under ``paths``, each exactly once, in sorted
    posix-path order (byte-stable reports whatever the platform)."""
    seen = set()
    collected: List[str] = []
    for target in paths:
        if os.path.isfile(target):
            candidate = _posix(target)
            if candidate not in seen:
                seen.add(candidate)
                collected.append(candidate)
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                candidate = _posix(os.path.join(dirpath, filename))
                if candidate not in seen:
                    seen.add(candidate)
                    collected.append(candidate)
    return sorted(collected)


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")

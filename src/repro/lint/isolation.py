"""The runtime half of the isolation contract.

The static I-rules prove no *source line* retains-and-mutates a sent
payload or reaches through a node boundary; :func:`isolation_guard`
proves no *code path* does at run time. While the guard is armed, every
payload accepted by :meth:`~repro.sim.network.Network.send` is
fingerprinted with a deterministic structural digest, and the digest is
re-verified the moment the message is delivered (or dropped on a dead
destination). Any difference means some code kept a reference to the
object after sending it and mutated it while it was in flight —
:class:`~repro.errors.IsolationError` is raised naming sender, receiver,
message type, and both simulated times.

Design constraints, in order:

* **Trajectory-neutral.** The digest is pure SHA-256 over the payload's
  structure — no ``hash()`` (salted per process), no wall clock, no RNG
  — and the wrapped methods add no events and change no return values,
  so a checked run byte-compares against a plain run. The determinism
  CI matrix enforces exactly that.
* **Fan-out aware.** Protocols legitimately send *one* immutable message
  object to several peers (replication re-home, advert fan-out). The
  in-flight registry refcounts by object identity: each send of the same
  unmutated object bumps the count, each delivery drops it, and the
  entry keeps a reference to the object so CPython cannot reuse its id
  while copies are still in flight. Re-sending an object whose content
  changed while copies are in flight trips the same wire.
* **Re-entrant.** Nested activations patch once and restore once,
  mirroring :func:`~repro.lint.sanitizer.determinism_guard`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Set

from repro.errors import IsolationError

__all__ = ["isolation_active", "isolation_guard", "payload_digest"]

_depth = 0
_saved: Dict[str, Any] = {}
# id(msg) -> [msg, digest, refcount, src, dst, kind, sent_at]
_inflight: Dict[int, list] = {}


def isolation_active() -> bool:
    """Is an :func:`isolation_guard` currently armed?"""
    return _depth > 0


# ------------------------------------------------------------------ digest


def payload_digest(obj: Any) -> str:
    """Deterministic structural SHA-256 of an arbitrary payload.

    Equal-by-structure objects digest equally across processes and runs:
    sequences feed elements in order, sets and dicts feed elements by
    their *own* sub-digests in sorted order (no reliance on element
    comparability or hash order), dataclasses feed fields in declaration
    order, and plain objects feed ``__dict__`` in sorted key order.
    Cycles are cut by identity, opaque leaves fall back to the type name.
    """
    hasher = hashlib.sha256()
    _feed(hasher, obj, set())
    return hasher.hexdigest()


def _sub_digest(obj: Any, stack: Set[int]) -> bytes:
    hasher = hashlib.sha256()
    _feed(hasher, obj, stack)
    return hasher.digest()


def _feed(hasher, obj: Any, stack: Set[int]) -> None:
    if obj is None or obj is True or obj is False:
        hasher.update(repr(obj).encode("ascii"))
        return
    if isinstance(obj, (int, float, complex)):
        hasher.update(b"n")
        hasher.update(repr(obj).encode("ascii"))
        hasher.update(b"\x00")
        return
    if isinstance(obj, str):
        hasher.update(b"s")
        hasher.update(obj.encode("utf-8", "surrogatepass"))
        hasher.update(b"\x00")
        return
    if isinstance(obj, (bytes, bytearray, memoryview)):
        hasher.update(b"b")
        hasher.update(bytes(obj))
        hasher.update(b"\x00")
        return
    oid = id(obj)
    if oid in stack:
        hasher.update(b"cycle")
        return
    stack.add(oid)
    try:
        if isinstance(obj, (list, tuple)):
            hasher.update(b"l" if isinstance(obj, list) else b"t")
            for item in obj:
                _feed(hasher, item, stack)
            hasher.update(b"\x00")
        elif isinstance(obj, (set, frozenset)):
            hasher.update(b"S")
            for encoded in sorted(_sub_digest(item, stack) for item in obj):
                hasher.update(encoded)
            hasher.update(b"\x00")
        elif isinstance(obj, dict):
            hasher.update(b"d")
            entries = [
                _sub_digest(key, stack) + _sub_digest(value, stack)
                for key, value in obj.items()
            ]
            for encoded in sorted(entries):
                hasher.update(encoded)
            hasher.update(b"\x00")
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            hasher.update(b"D")
            hasher.update(type(obj).__name__.encode("utf-8"))
            hasher.update(b"\x00")
            for field in dataclasses.fields(obj):
                _feed(hasher, getattr(obj, field.name), stack)
            hasher.update(b"\x00")
        elif hasattr(obj, "__dict__"):
            hasher.update(b"o")
            hasher.update(type(obj).__name__.encode("utf-8"))
            hasher.update(b"\x00")
            attrs = vars(obj)
            for key in sorted(attrs):
                hasher.update(key.encode("utf-8"))
                hasher.update(b"\x00")
                _feed(hasher, attrs[key], stack)
            hasher.update(b"\x00")
        else:
            # Opaque leaf (a __slots__ object, a function …): the type
            # name is all the structure we can see.
            hasher.update(b"x")
            hasher.update(type(obj).__name__.encode("utf-8"))
            hasher.update(b"\x00")
    finally:
        stack.discard(oid)


# ------------------------------------------------------------------- guard


def _checked_send(self, src: int, dst: int, msg: Any) -> bool:
    """``Network.send`` with the in-flight registry armed."""
    on_wire = _saved["send"](self, src, dst, msg)
    if on_wire:
        digest = payload_digest(msg)
        entry = _inflight.get(id(msg))
        if entry is None:
            _inflight[id(msg)] = [
                msg, digest, 1, src, dst, type(msg).__name__,
                self.scheduler.now,
            ]
        elif entry[1] != digest:
            # The object is being re-sent, but copies already in flight
            # were fingerprinted with different content — the sender
            # mutated it between sends.
            raise IsolationError(
                entry[3], entry[4], entry[5], entry[6], self.scheduler.now,
                detail="object re-sent with different content while "
                "earlier copies are still in flight",
            )
        else:
            entry[2] += 1
    return on_wire


def _checked_deliver(self, src: int, dst: int, msg: Any, received_kind) -> None:
    """``Network._deliver`` with the digest re-verified on arrival."""
    entry = _inflight.get(id(msg))
    if entry is not None and entry[0] is msg:
        if payload_digest(msg) != entry[1]:
            raise IsolationError(
                src, dst, type(msg).__name__, entry[6], self.scheduler.now
            )
        entry[2] -= 1
        if entry[2] == 0:
            del _inflight[id(msg)]
    _saved["_deliver"](self, src, dst, msg, received_kind)


@contextmanager
def isolation_guard() -> Iterator[None]:
    """Arm the copy-on-send payload checker for the duration of the block.

    Patches :class:`~repro.sim.network.Network` at the *class* level:
    ``send`` looks its delivery callback up on ``self`` at send time, so
    every delivery scheduled while the guard is armed resolves to the
    checked method (traced deliveries delegate to ``_deliver`` and are
    covered too).
    """
    global _depth
    from repro.sim.network import Network  # deferred: keep lint import light

    if _depth == 0:
        _saved["send"] = Network.send
        _saved["_deliver"] = Network._deliver
        Network.send = _checked_send
        Network._deliver = _checked_deliver
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            Network.send = _saved["send"]
            Network._deliver = _saved["_deliver"]
            _saved.clear()
            _inflight.clear()

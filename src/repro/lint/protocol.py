"""Whole-program protocol-flow analysis: the P-rule families.

Unlike the D/I visitors, which judge one file at a time, the protocol
pass runs over *all* sim-path modules of a lint run at once: it
extracts each module's protocol surface (message dataclasses, send
sites, handler registrations), links them into one
:class:`~repro.lint.protograph.ProtocolGraph`, and only then judges the
graph. The consequence is worth stating plainly: P-rule results depend
on the lint target set. Linting a single module can report a P101 dead
letter whose handler lives in a file that was not linted; the committed
policy always lints ``src`` whole.

Extraction is deliberately syntactic and covers the repo's idioms:

* **Message classes** — ``@dataclass`` classes (frozen or not) that
  participate in at least one send/registration edge, plus any
  dataclass defined in a module where another dataclass participates
  (so a dead message added to ``core/messages.py`` is still seen).
  Classes are keyed by bare name across the whole tree.
* **Send sites** — ``*.send(dst, payload)`` and
  ``network.send(src, dst, payload)`` calls. Payloads resolve through
  direct constructor calls, function-local variables (``advert =
  SliceAdvert(...)`` … ``node.send(t, advert)``), and helper calls
  whose ``return`` statements construct messages
  (``self._request_message(op)``, ``_with_ttl(msg, ttl)``), up to a
  small recursion depth. Unresolvable payloads (a generic forwarder
  re-sending its own parameter) are recorded on the graph's
  ``unresolved`` list — visible in the artifact, exempt from P-rules.
* **Handler registrations** — ``*.register_handler(Message, handler)``
  and ``*.unregister_handler(Message)`` calls; the registering class is
  the graph endpoint, matching the runtime coverage collector's
  per-handler-owner accounting.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.protograph import (
    MODULE_ENDPOINT,
    FieldDef,
    HandlerReg,
    HandlerUnreg,
    MessageDef,
    ProtocolGraph,
    SendSite,
)
from repro.lint.rules import Violation

__all__ = [
    "ModuleProtocol",
    "analyze_modules",
    "build_graph",
    "check_graph",
    "extract_module",
]

# Annotation tokens that make a frozen message only shallowly immutable
# (P203). Word boundaries keep frozenset/FrozenSet/Settings clean.
_MUTABLE_ANNOTATION = re.compile(
    r"\b(list|List|dict|Dict|set|Set|bytearray|deque|Deque|"
    r"defaultdict|DefaultDict|MutableMapping|MutableSequence|MutableSet)\b"
)

# Descriptor of a payload/return expression: ("ctor", name) for a call,
# ("var", name) for a bare name; None when the expression is opaque.
_Descriptor = Optional[Tuple[str, str]]


@dataclass
class _RawSend:
    descriptor: _Descriptor
    line: int
    col: int


@dataclass
class _CtorCall:
    callee: str
    n_pos: int
    keywords: Tuple[str, ...]
    has_star: bool
    line: int
    col: int


@dataclass
class _FunctionInfo:
    name: str
    endpoint: str
    path: str
    params: Tuple[str, ...]
    assigns: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    returns: List[Tuple[str, str]] = field(default_factory=list)
    raw_sends: List[_RawSend] = field(default_factory=list)
    attr_reads: List[Tuple[str, str, int, int]] = field(default_factory=list)
    top_ops: List[Tuple[str, str, int, int]] = field(default_factory=list)
    # Filled in by build_graph: message names this function's sends
    # resolve to (drives P301/P302).
    sent_messages: Set[str] = field(default_factory=set)


@dataclass
class _ClassProto:
    name: str
    line: int
    col: int
    is_dataclass: bool
    frozen: bool
    fields: List[FieldDef] = field(default_factory=list)
    attrs: Set[str] = field(default_factory=set)
    methods: Dict[str, _FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleProtocol:
    """One module's extracted protocol surface (pre-linking)."""

    path: str
    classes: Dict[str, _ClassProto] = field(default_factory=dict)
    functions: Dict[str, _FunctionInfo] = field(default_factory=dict)
    registrations: List[HandlerReg] = field(default_factory=list)
    unregistrations: List[HandlerUnreg] = field(default_factory=list)
    ctor_calls: List[_CtorCall] = field(default_factory=list)

    def all_functions(self) -> List[_FunctionInfo]:
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out


# ------------------------------------------------------------- extraction


def extract_module(tree: ast.Module, path: str) -> ModuleProtocol:
    """Extract one module's message classes, sends, and registrations."""
    mp = ModuleProtocol(path=path)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            mp.classes[stmt.name] = _extract_class(stmt, mp)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mp.functions[stmt.name] = _extract_function(
                stmt, MODULE_ENDPOINT, mp
            )
    return mp


def _extract_class(node: ast.ClassDef, mp: ModuleProtocol) -> _ClassProto:
    is_dataclass, frozen = _dataclass_decorator(node)
    cls = _ClassProto(
        name=node.name,
        line=node.lineno,
        col=node.col_offset,
        is_dataclass=is_dataclass,
        frozen=frozen,
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotation = ast.unparse(stmt.annotation)
            cls.attrs.add(stmt.target.id)
            if "ClassVar" not in annotation:
                cls.fields.append(
                    FieldDef(stmt.target.id, annotation, stmt.lineno)
                )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.attrs.add(target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.attrs.add(stmt.name)
            cls.methods[stmt.name] = _extract_function(stmt, node.name, mp)
    return cls


def _dataclass_decorator(node: ast.ClassDef) -> Tuple[bool, bool]:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _rightmost_name(target)
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if kw.arg == "frozen":
                    frozen = (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    )
        return True, frozen
    return False, False


def _extract_function(
    node: ast.AST, endpoint: str, mp: ModuleProtocol
) -> _FunctionInfo:
    params = tuple(
        a.arg for a in (node.args.posonlyargs + node.args.args)
    )
    fn = _FunctionInfo(
        name=node.name, endpoint=endpoint, path=mp.path, params=params
    )
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            if len(sub.targets) == 1 and isinstance(sub.targets[0], ast.Name):
                desc = _descriptor(sub.value)
                if desc is not None:
                    fn.assigns.setdefault(sub.targets[0].id, []).append(desc)
        elif isinstance(sub, ast.Return) and sub.value is not None:
            desc = _descriptor(sub.value)
            if desc is not None:
                fn.returns.append(desc)
        elif isinstance(sub, ast.Attribute) and isinstance(
            sub.value, ast.Name
        ):
            fn.attr_reads.append(
                (sub.value.id, sub.attr, sub.lineno, sub.col_offset)
            )
        elif isinstance(sub, ast.Call):
            _extract_call(sub, fn, mp)
    # P103 looks only at the function body's top level: a register
    # followed by an unregister there shadows the handler on every path.
    for stmt in node.body:
        call = stmt.value if isinstance(stmt, ast.Expr) else None
        if not isinstance(call, ast.Call):
            continue
        kind = _protocol_call_kind(call)
        if kind is None:
            continue
        message = _rightmost_name(call.args[0]) if call.args else None
        if message:
            fn.top_ops.append((kind, message, call.lineno, call.col_offset))
    return fn


def _extract_call(
    call: ast.Call, fn: _FunctionInfo, mp: ModuleProtocol
) -> None:
    kind = _protocol_call_kind(call)
    if kind == "reg" and len(call.args) >= 2:
        message = _rightmost_name(call.args[0])
        if message:
            mp.registrations.append(
                HandlerReg(
                    message=message,
                    endpoint=fn.endpoint,
                    handler=_handler_name(call.args[1]),
                    path=mp.path,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
        return
    if kind == "unreg" and call.args:
        message = _rightmost_name(call.args[0])
        if message:
            mp.unregistrations.append(
                HandlerUnreg(
                    message=message,
                    endpoint=fn.endpoint,
                    function=fn.name,
                    path=mp.path,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
        return
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "send"
        and len(call.args) in (2, 3)
        and not any(isinstance(a, ast.Starred) for a in call.args)
    ):
        # node.send(dst, payload) or network.send(src, dst, payload).
        fn.raw_sends.append(
            _RawSend(
                descriptor=_descriptor(call.args[-1]),
                line=call.lineno,
                col=call.col_offset,
            )
        )
        return
    callee = _rightmost_name(call.func)
    if callee:
        keywords = tuple(kw.arg for kw in call.keywords if kw.arg is not None)
        has_star = any(
            isinstance(a, ast.Starred) for a in call.args
        ) or any(kw.arg is None for kw in call.keywords)
        mp.ctor_calls.append(
            _CtorCall(
                callee=callee,
                n_pos=len(call.args),
                keywords=keywords,
                has_star=has_star,
                line=call.lineno,
                col=call.col_offset,
            )
        )


def _protocol_call_kind(call: ast.Call) -> Optional[str]:
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr == "register_handler":
        return "reg"
    if call.func.attr == "unregister_handler":
        return "unreg"
    return None


def _rightmost_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _handler_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _descriptor(node: ast.AST) -> _Descriptor:
    if isinstance(node, ast.Call):
        name = _rightmost_name(node.func)
        return ("ctor", name) if name else None
    if isinstance(node, ast.Name):
        return ("var", node.id)
    return None


# ---------------------------------------------------------------- linking


def build_graph(modules: Sequence[ModuleProtocol]) -> ProtocolGraph:
    """Link extracted modules into one resolved protocol graph."""
    graph = ProtocolGraph()
    # Dataclasses across the whole tree, keyed by bare name (collisions:
    # the lexically last definition wins — acceptable for this tree and
    # documented in the module docstring).
    candidates: Dict[str, Tuple[ModuleProtocol, _ClassProto]] = {}
    for mp in modules:
        for cls in mp.classes.values():
            if cls.is_dataclass:
                candidates[cls.name] = (mp, cls)

    for mp in modules:
        graph.registrations.extend(mp.registrations)
        graph.unregistrations.extend(mp.unregistrations)
        for fn in mp.all_functions():
            for raw in fn.raw_sends:
                resolved = sorted(
                    name
                    for name in _resolve(raw.descriptor, fn, mp, candidates)
                    if name in candidates
                )
                fn.sent_messages.update(resolved)
                if not resolved:
                    graph.unresolved.append(
                        SendSite(
                            message="",
                            endpoint=fn.endpoint,
                            function=fn.name,
                            path=mp.path,
                            line=raw.line,
                            col=raw.col,
                        )
                    )
                    continue
                for name in resolved:
                    graph.sends.append(
                        SendSite(
                            message=name,
                            endpoint=fn.endpoint,
                            function=fn.name,
                            path=mp.path,
                            line=raw.line,
                            col=raw.col,
                        )
                    )

    edged = {s.message for s in graph.sends}
    edged.update(r.message for r in graph.registrations)
    edged.update(u.message for u in graph.unregistrations)
    # Message set: every edged dataclass, plus dataclasses sharing a
    # module with an edged one (so dead code in a message module is
    # still judged, while unrelated spec/config dataclasses stay out).
    edged_paths = {
        candidates[name][0].path for name in edged if name in candidates
    }
    for name, (mp, cls) in sorted(candidates.items()):
        if name in edged or mp.path in edged_paths:
            graph.messages[name] = MessageDef(
                name=cls.name,
                path=mp.path,
                line=cls.line,
                frozen=cls.frozen,
                fields=tuple(cls.fields),
                attrs=tuple(sorted(cls.attrs)),
            )
    graph.sends.sort(key=lambda s: (s.path, s.line, s.col, s.message))
    graph.registrations.sort(key=lambda r: (r.path, r.line, r.col))
    graph.unregistrations.sort(key=lambda u: (u.path, u.line, u.col))
    graph.unresolved.sort(key=lambda s: (s.path, s.line, s.col))
    return graph


def _resolve(
    desc: _Descriptor,
    fn: _FunctionInfo,
    mp: ModuleProtocol,
    candidates: Dict[str, Tuple[ModuleProtocol, _ClassProto]],
    depth: int = 3,
) -> Set[str]:
    if desc is None or depth <= 0:
        return set()
    kind, name = desc
    if kind == "ctor":
        if name in candidates:
            return {name}
        # A helper call: same-class method first, then a module-level
        # function; its return statements name the messages it builds.
        cls = mp.classes.get(fn.endpoint)
        helper = (cls.methods.get(name) if cls is not None else None) or (
            mp.functions.get(name)
        )
        if helper is None or helper is fn:
            return set()
        out: Set[str] = set()
        for ret in helper.returns:
            out |= _resolve(ret, helper, mp, candidates, depth - 1)
        return out
    out = set()
    for assigned in fn.assigns.get(name, ()):
        out |= _resolve(assigned, fn, mp, candidates, depth - 1)
    return out


# ----------------------------------------------------------------- checks


def check_graph(
    graph: ProtocolGraph,
    modules: Sequence[ModuleProtocol],
    config: LintConfig,
) -> List[Violation]:
    """Judge a linked graph: every P-rule, violations in sorted order."""
    violations: List[Violation] = []
    seen: Set[Tuple[str, str, int, int, str]] = set()

    def emit(rule: str, path: str, line: int, col: int, message: str) -> None:
        key = (rule, path, line, col, message)
        if key not in seen:
            seen.add(key)
            violations.append(Violation(rule, path, line, col, message))

    func_index: Dict[Tuple[str, str], _FunctionInfo] = {}
    for mp in modules:
        for fn in mp.all_functions():
            func_index[(fn.endpoint, fn.name)] = fn

    sends_by_msg: Dict[str, List[SendSite]] = {}
    for site in graph.sends:
        sends_by_msg.setdefault(site.message, []).append(site)
    regs_by_msg: Dict[str, List[HandlerReg]] = {}
    for reg in graph.registrations:
        regs_by_msg.setdefault(reg.message, []).append(reg)
    unregs_by_msg: Dict[str, List[HandlerUnreg]] = {}
    for unreg in graph.unregistrations:
        unregs_by_msg.setdefault(unreg.message, []).append(unreg)

    # P101 — sent but never handled; P401 — no edges at all.
    for name, message in sorted(graph.messages.items()):
        sends = sends_by_msg.get(name, [])
        regs = regs_by_msg.get(name, [])
        unregs = unregs_by_msg.get(name, [])
        if sends and not regs:
            for site in sends:
                emit(
                    "P101",
                    site.path,
                    site.line,
                    site.col,
                    f"{name} is sent here but no handler for it is "
                    f"registered anywhere in the linted tree",
                )
        if not sends and not regs and not unregs:
            emit(
                "P401",
                message.path,
                message.line,
                0,
                f"message class {name} is never sent nor handled "
                f"anywhere in the linted tree",
            )

    # P102 — handler registered for a type nothing sends.
    for reg in graph.registrations:
        if reg.message not in graph.messages:
            continue
        if not sends_by_msg.get(reg.message):
            handler = reg.handler or "<handler>"
            emit(
                "P102",
                reg.path,
                reg.line,
                reg.col,
                f"handler {handler} registered for {reg.message}, which "
                f"nothing in the linted tree sends",
            )

    # P103 — register + unconditional unregister in one function body.
    for mp in modules:
        for fn in mp.all_functions():
            registered_at: Dict[str, int] = {}
            for kind, message, line, col in fn.top_ops:
                if kind == "reg":
                    registered_at[message] = line
                elif message in registered_at:
                    emit(
                        "P103",
                        mp.path,
                        line,
                        col,
                        f"{message} handler registered at line "
                        f"{registered_at[message]} is unconditionally "
                        f"unregistered in the same body — it can never "
                        f"fire",
                    )

    # P201 — handler reads an attribute the message does not define.
    for reg in graph.registrations:
        message = graph.messages.get(reg.message)
        fn = func_index.get((reg.endpoint, reg.handler))
        if message is None or fn is None or not fn.params:
            continue
        params = fn.params
        if params[0] in ("self", "cls"):
            params = params[1:]
        if not params:
            continue
        msg_param = params[0]
        for base, attr, line, col in fn.attr_reads:
            if base != msg_param or attr.startswith("__"):
                continue
            if attr not in message.attrs:
                fields = ", ".join(message.field_names()) or "none"
                emit(
                    "P201",
                    fn.path,
                    line,
                    col,
                    f"handler {reg.handler} reads {reg.message}.{attr}, "
                    f"which the message does not define (fields: "
                    f"{fields})",
                )

    # P202 — constructor call with unknown keyword / too many positionals.
    for mp in modules:
        for call in mp.ctor_calls:
            message = graph.messages.get(call.callee)
            if message is None or call.has_star:
                continue
            fields = message.field_names()
            if call.n_pos > len(fields):
                emit(
                    "P202",
                    mp.path,
                    call.line,
                    call.col,
                    f"{call.callee}() called with {call.n_pos} positional "
                    f"arguments but the message has {len(fields)} fields",
                )
            for kw in call.keywords:
                if kw not in fields:
                    emit(
                        "P202",
                        mp.path,
                        call.line,
                        call.col,
                        f"{call.callee}() called with unknown keyword "
                        f"{kw!r} (fields: {', '.join(fields) or 'none'})",
                    )

    # P203 — mutable field type on a frozen message class.
    for name, message in sorted(graph.messages.items()):
        if not message.frozen:
            continue
        for fld in message.fields:
            if _MUTABLE_ANNOTATION.search(fld.annotation):
                emit(
                    "P203",
                    message.path,
                    fld.line,
                    0,
                    f"frozen message {name} has mutable field "
                    f"{fld.name}: {fld.annotation}; receivers can alias "
                    f"and mutate it — snapshot with "
                    f"tuple/frozenset/Mapping",
                )

    # P301/P302 — configured request/reply pairs.
    for request, reply in sorted(config.request_reply):
        regs = regs_by_msg.get(request, [])
        if not regs:
            continue
        handler_sites = set()
        for reg in regs:
            handler_sites.add((reg.endpoint, reg.handler))
            fn = func_index.get((reg.endpoint, reg.handler))
            if fn is None:
                continue
            if reply not in fn.sent_messages:
                emit(
                    "P301",
                    reg.path,
                    reg.line,
                    reg.col,
                    f"handler {reg.handler or '<handler>'} for request "
                    f"{request} never sends the reply type {reply}",
                )
        for site in sends_by_msg.get(reply, []):
            if (site.endpoint, site.function) not in handler_sites:
                emit(
                    "P302",
                    site.path,
                    site.line,
                    site.col,
                    f"reply {reply} sent outside any handler registered "
                    f"for its request type {request}",
                )

    violations.sort(key=Violation.sort_key)
    return violations


def analyze_modules(
    modules: Sequence[ModuleProtocol], config: LintConfig
) -> Tuple[ProtocolGraph, List[Violation]]:
    """Link + check in one step — the engine's entry point."""
    graph = build_graph(modules)
    return graph, check_graph(graph, modules, config)

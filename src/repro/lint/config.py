"""Lint policy: what counts as sim-path, what is allowlisted, where the
baseline lives.

Policy is data, not code: the committed ``.repro-lint.toml`` at the repo
root carries the whole contract — sim-path classification for the D3xx
order rules, set-returning helper names the visitor should treat as
set-valued, permanent ``[[allow]]`` exemptions, and the ``[[baseline]]``
of grandfathered violations (each entry with a written justification;
the acceptance bar is a handful, trending to zero). The defaults baked
in here mirror the committed file so ``lint_paths`` works without one
(fixture tests, external trees).
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.rules import is_known_rule

__all__ = [
    "AllowEntry",
    "BaselineEntry",
    "LintConfig",
    "DEFAULT_CONFIG_NAME",
    "baseline_from_violations",
    "reset_baseline",
]

DEFAULT_CONFIG_NAME = ".repro-lint.toml"

# Packages whose code runs inside the event loop or feeds it: modules
# here schedule events, draw RNG, or build the messages that do. The
# D3xx order rules apply only to them — iteration order elsewhere
# (analysis tables, obs artifacts) cannot perturb a trajectory.
DEFAULT_SIMPATH: Tuple[str, ...] = (
    "repro/backends/",
    "repro/churn/",
    "repro/core/",
    "repro/dht/",
    "repro/droplets/",
    "repro/faults/",
    "repro/gossip/",
    "repro/pss/",
    "repro/scenarios/",
    "repro/search/",
    "repro/sim/",
    "repro/slicing/",
    "repro/workload/",
)

# Call names (bare functions or trailing attributes) the D301 visitor
# treats as set-valued even though it cannot see their return type:
# the store digest and the anti-entropy set algebra.
DEFAULT_SET_RETURNING: Tuple[str, ...] = (
    "digest",
    "make_digest",
    "merge_digests",
    "missing_from",
)

# Attribute names whose iteration or subscript yields *node* objects —
# the I1xx rules treat anything pulled out of these as another process.
DEFAULT_NODE_COLLECTIONS: Tuple[str, ...] = ("servers",)

# Helper call names that return node lists (cluster facades expose these
# so analysis code never touches the raw collection).
DEFAULT_NODE_RETURNING: Tuple[str, ...] = ("alive_servers",)

# Attribute names that are node-private state: reading them on a node
# obtained from a collection/directory is a reach-through (I1xx).
DEFAULT_NODE_STATE: Tuple[str, ...] = ("store", "view", "scheduler")

# Message attribute names that carry the payload proper — aliasing one
# of these into an outbound send without a copy wrapper is I204.
DEFAULT_PAYLOAD_ATTRS: Tuple[str, ...] = ("payload", "value")

# Request/reply message pairs the P3xx rules enforce: the request's
# handler must send the reply type (P301), and the reply type may only
# be sent from a request handler (P302). Push-pull exchanges that
# answer with their own type (MinSketchShare) are deliberately absent.
DEFAULT_REQUEST_REPLY: Tuple[Tuple[str, str], ...] = (
    ("AttributeQuery", "AttributeReport"),
    ("GetRequest", "GetReply"),
    ("NewsExchange", "NewsReply"),
    ("OracleGet", "OracleGetReply"),
    ("OraclePut", "OraclePutAck"),
    ("PutRequest", "PutAck"),
    ("RankProbe", "RankSample"),
    ("RpcRequest", "RpcReply"),
    ("ShuffleRequest", "ShuffleReply"),
    ("SwapProposal", "SwapReply"),
    ("SyncDigest", "SyncResponse"),
)


@dataclass(frozen=True)
class AllowEntry:
    """A permanent exemption: ``rule`` (id or family prefix) at ``path``
    (substring match), with a written justification."""

    rule: str
    path: str
    justification: str

    def matches(self, rule: str, path: str) -> bool:
        return rule.startswith(self.rule) and self.path in path


@dataclass
class BaselineEntry:
    """A grandfathered violation budget: up to ``max_count`` violations
    of ``rule`` (id or family prefix) under ``path`` are tolerated.
    Unlike an allow entry the budget is finite and audited — a stale
    entry (nothing matched) is reported so the baseline only shrinks."""

    rule: str
    path: str
    max_count: int
    justification: str
    matched: int = field(default=0, compare=False)

    def matches(self, rule: str, path: str) -> bool:
        return (
            self.matched < self.max_count
            and rule.startswith(self.rule)
            and self.path in path
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "max": self.max_count,
            "justification": self.justification,
        }


@dataclass
class LintConfig:
    """Everything the engine needs to judge a tree."""

    simpath: Tuple[str, ...] = DEFAULT_SIMPATH
    set_returning: Tuple[str, ...] = DEFAULT_SET_RETURNING
    node_collections: Tuple[str, ...] = DEFAULT_NODE_COLLECTIONS
    node_returning: Tuple[str, ...] = DEFAULT_NODE_RETURNING
    node_state: Tuple[str, ...] = DEFAULT_NODE_STATE
    payload_attrs: Tuple[str, ...] = DEFAULT_PAYLOAD_ATTRS
    request_reply: Tuple[Tuple[str, str], ...] = DEFAULT_REQUEST_REPLY
    allow: List[AllowEntry] = field(default_factory=list)
    baseline: List[BaselineEntry] = field(default_factory=list)
    source: Optional[str] = None  # config file path, for reporting

    def is_simpath(self, path: str) -> bool:
        return any(pattern in path for pattern in self.simpath)

    def allowed(self, rule: str, path: str) -> Optional[AllowEntry]:
        for entry in self.allow:
            if entry.matches(rule, path):
                return entry
        return None

    # ----------------------------------------------------------- loading

    @classmethod
    def load(cls, path: Optional[str] = None) -> "LintConfig":
        """Load policy from ``path``; with ``None``, look for
        ``.repro-lint.toml`` in the working directory and fall back to
        pure defaults (empty allowlist and baseline) when absent."""
        if path is None:
            candidate = os.path.join(os.getcwd(), DEFAULT_CONFIG_NAME)
            if not os.path.exists(candidate):
                return cls()
            path = candidate
        try:
            with open(path, "rb") as f:
                doc = tomllib.load(f)
        except OSError as exc:
            raise ConfigurationError(f"cannot read lint config {path}: {exc}")
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid lint config {path}: {exc}")
        return cls.from_dict(doc, source=path)

    @classmethod
    def from_dict(cls, doc: Dict, source: Optional[str] = None) -> "LintConfig":
        lint = doc.get("lint", {})
        simpath = tuple(lint.get("simpath", DEFAULT_SIMPATH))
        set_returning = tuple(lint.get("set_returning", DEFAULT_SET_RETURNING))
        node_collections = tuple(
            lint.get("node_collections", DEFAULT_NODE_COLLECTIONS)
        )
        node_returning = tuple(lint.get("node_returning", DEFAULT_NODE_RETURNING))
        node_state = tuple(lint.get("node_state", DEFAULT_NODE_STATE))
        payload_attrs = tuple(lint.get("payload_attrs", DEFAULT_PAYLOAD_ATTRS))
        protocol = lint.get("protocol", {})
        raw_pairs = protocol.get("request_reply", DEFAULT_REQUEST_REPLY)
        request_reply = []
        for pair in raw_pairs:
            if (
                len(pair) != 2
                or not all(isinstance(half, str) and half for half in pair)
            ):
                raise ConfigurationError(
                    "every [lint.protocol] request_reply entry must be a "
                    '["Request", "Reply"] pair of class names'
                    + (f" ({source})" if source else "")
                )
            request_reply.append((pair[0], pair[1]))
        allow = [
            AllowEntry(
                rule=_required(entry, "rule", source, "allow"),
                path=_required(entry, "path", source, "allow"),
                justification=_required(entry, "justification", source, "allow"),
            )
            for entry in doc.get("allow", ())
        ]
        baseline = [
            BaselineEntry(
                rule=_required(entry, "rule", source, "baseline"),
                path=_required(entry, "path", source, "baseline"),
                max_count=int(entry.get("max", 1)),
                justification=_required(entry, "justification", source, "baseline"),
            )
            for entry in doc.get("baseline", ())
        ]
        for entry in list(allow) + list(baseline):
            if not is_known_rule(entry.rule):
                raise ConfigurationError(
                    f"lint config names unknown rule {entry.rule!r} "
                    f"(expected a Dxxx/Ixxx/Pxxx id or a Dx/Ix/Px family "
                    f"prefix)"
                )
        return cls(
            simpath=simpath,
            set_returning=set_returning,
            node_collections=node_collections,
            node_returning=node_returning,
            node_state=node_state,
            payload_attrs=payload_attrs,
            request_reply=tuple(request_reply),
            allow=allow,
            baseline=baseline,
            source=source,
        )


def _required(entry: Dict, key: str, source: Optional[str], kind: str) -> str:
    value = entry.get(key)
    if not isinstance(value, str) or not value.strip():
        raise ConfigurationError(
            f"every [[{kind}]] entry needs a non-empty {key!r} string"
            + (f" ({source})" if source else "")
        )
    return value


def reset_baseline(config: LintConfig) -> None:
    """Zero the matched counters so one config can judge several trees."""
    for entry in config.baseline:
        entry.matched = 0


def baseline_from_violations(
    violations: Sequence, justification: str = "TODO: justify this exemption"
) -> List[BaselineEntry]:
    """Collapse violations into per-(rule, path) baseline entries — the
    ``--update-baseline`` path. Every generated entry carries the
    placeholder justification; committing it unedited is a review smell
    by design."""
    counts: Dict[Tuple[str, str], int] = {}
    for violation in violations:
        key = (violation.rule, violation.path)
        counts[key] = counts.get(key, 0) + 1
    return [
        BaselineEntry(rule=rule, path=path, max_count=count, justification=justification)
        for (rule, path), count in sorted(counts.items())
    ]

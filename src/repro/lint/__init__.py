"""Determinism sanitizer: static lint pass + runtime guard.

Every claim the reproduction makes rests on byte-identical same-seed
replay. This package enforces that contract from two directions:

* ``repro lint`` — an AST pass over the source tree flagging determinism
  hazards before any event runs: ambient randomness (D1xx), wall-clock
  reads (D2xx), hash/filesystem order dependence (D3xx) and ``__all__``
  drift (D4xx), governed by inline suppressions and the committed
  ``.repro-lint.toml`` policy (see :mod:`repro.lint.rules` for the
  catalogue).
* :func:`~repro.lint.sanitizer.determinism_guard` — a runtime tripwire
  (``scenarios run --sanitize``) that makes the same ambient calls raise
  mid-run, catching the code paths static analysis cannot see.

The same split enforces the *isolation* contract (nodes are
shared-nothing; payload ownership transfers to the network at send):

* the I-families of ``repro lint`` — cross-node reach-through (I1xx),
  payload aliasing (I2xx), mutation-after-forward (I3xx) and
  callback-capture hazards (I4xx);
* :func:`~repro.lint.isolation.isolation_guard` — the copy-on-send
  payload checker (``scenarios run --isolation-check``) that digests
  every payload at ``Network.send`` and re-verifies it at delivery.

All halves enforce two contracts; DESIGN.md ("Determinism contract &
static analysis", "Isolation contract") is the narrative version.
"""

from repro.lint.baseline import apply_baseline, render_policy_toml
from repro.lint.config import (
    AllowEntry,
    BaselineEntry,
    LintConfig,
    baseline_from_violations,
)
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.isolation import isolation_active, isolation_guard, payload_digest
from repro.lint.report import format_json, format_text
from repro.lint.rules import CATALOG, FAMILIES, Rule, Violation
from repro.lint.sanitizer import determinism_guard, guard_active

__all__ = [
    "AllowEntry",
    "BaselineEntry",
    "CATALOG",
    "FAMILIES",
    "LintConfig",
    "LintResult",
    "Rule",
    "Violation",
    "apply_baseline",
    "baseline_from_violations",
    "determinism_guard",
    "format_json",
    "format_text",
    "guard_active",
    "isolation_active",
    "isolation_guard",
    "lint_paths",
    "lint_source",
    "payload_digest",
    "render_policy_toml",
]

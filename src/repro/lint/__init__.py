"""Determinism sanitizer: static lint pass + runtime guard.

Every claim the reproduction makes rests on byte-identical same-seed
replay. This package enforces that contract from two directions:

* ``repro lint`` — an AST pass over the source tree flagging determinism
  hazards before any event runs: ambient randomness (D1xx), wall-clock
  reads (D2xx), hash/filesystem order dependence (D3xx) and ``__all__``
  drift (D4xx), governed by inline suppressions and the committed
  ``.repro-lint.toml`` policy (see :mod:`repro.lint.rules` for the
  catalogue).
* :func:`~repro.lint.sanitizer.determinism_guard` — a runtime tripwire
  (``scenarios run --sanitize``) that makes the same ambient calls raise
  mid-run, catching the code paths static analysis cannot see.

The same split enforces the *isolation* contract (nodes are
shared-nothing; payload ownership transfers to the network at send):

* the I-families of ``repro lint`` — cross-node reach-through (I1xx),
  payload aliasing (I2xx), mutation-after-forward (I3xx) and
  callback-capture hazards (I4xx);
* :func:`~repro.lint.isolation.isolation_guard` — the copy-on-send
  payload checker (``scenarios run --isolation-check``) that digests
  every payload at ``Network.send`` and re-verifies it at delivery.

A third contract covers protocol *flow* (messages reach a handler, and
handlers only read fields the message defines):

* the P-families of ``repro lint`` — dead letters (P1xx), payload
  schema (P2xx), request/reply discipline (P3xx) and dead protocol
  code (P4xx), judged against the whole-program message graph
  (``repro protocol graph`` serialises it);
* :func:`~repro.lint.coverage.protocol_coverage` — the runtime edge
  accountant (``scenarios run --protocol-coverage``) that records which
  static ``(endpoint, message)`` edges a scenario actually exercised.

All halves enforce three contracts; DESIGN.md ("Determinism contract &
static analysis", "Isolation contract", "Protocol graph & flow
analysis") is the narrative version.
"""

from repro.lint.baseline import apply_baseline, render_policy_toml
from repro.lint.config import (
    AllowEntry,
    BaselineEntry,
    LintConfig,
    baseline_from_violations,
)
from repro.lint.coverage import (
    coverage_snapshot,
    protocol_coverage,
    protocol_coverage_active,
    unexercised_edges,
)
from repro.lint.engine import (
    LintResult,
    build_protocol_graph,
    lint_paths,
    lint_source,
)
from repro.lint.isolation import isolation_active, isolation_guard, payload_digest
from repro.lint.protograph import MessageDef, ProtocolGraph, SendSite
from repro.lint.report import format_json, format_text
from repro.lint.rules import CATALOG, FAMILIES, Rule, Violation
from repro.lint.sanitizer import determinism_guard, guard_active

__all__ = [
    "AllowEntry",
    "BaselineEntry",
    "CATALOG",
    "FAMILIES",
    "LintConfig",
    "LintResult",
    "MessageDef",
    "ProtocolGraph",
    "Rule",
    "SendSite",
    "Violation",
    "apply_baseline",
    "baseline_from_violations",
    "build_protocol_graph",
    "coverage_snapshot",
    "determinism_guard",
    "format_json",
    "format_text",
    "guard_active",
    "isolation_active",
    "isolation_guard",
    "lint_paths",
    "lint_source",
    "payload_digest",
    "protocol_coverage",
    "protocol_coverage_active",
    "render_policy_toml",
    "unexercised_edges",
]

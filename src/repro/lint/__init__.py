"""Determinism sanitizer: static lint pass + runtime guard.

Every claim the reproduction makes rests on byte-identical same-seed
replay. This package enforces that contract from two directions:

* ``repro lint`` — an AST pass over the source tree flagging determinism
  hazards before any event runs: ambient randomness (D1xx), wall-clock
  reads (D2xx), hash/filesystem order dependence (D3xx) and ``__all__``
  drift (D4xx), governed by inline suppressions and the committed
  ``.repro-lint.toml`` policy (see :mod:`repro.lint.rules` for the
  catalogue).
* :func:`~repro.lint.sanitizer.determinism_guard` — a runtime tripwire
  (``scenarios run --sanitize``) that makes the same ambient calls raise
  mid-run, catching the code paths static analysis cannot see.

Both halves enforce one contract; DESIGN.md ("Determinism contract &
static analysis") is the narrative version.
"""

from repro.lint.baseline import apply_baseline, render_policy_toml
from repro.lint.config import (
    AllowEntry,
    BaselineEntry,
    LintConfig,
    baseline_from_violations,
)
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.report import format_json, format_text
from repro.lint.rules import CATALOG, FAMILIES, Rule, Violation
from repro.lint.sanitizer import determinism_guard, guard_active

__all__ = [
    "AllowEntry",
    "BaselineEntry",
    "CATALOG",
    "FAMILIES",
    "LintConfig",
    "LintResult",
    "Rule",
    "Violation",
    "apply_baseline",
    "baseline_from_violations",
    "determinism_guard",
    "format_json",
    "format_text",
    "guard_active",
    "lint_paths",
    "lint_source",
    "render_policy_toml",
]

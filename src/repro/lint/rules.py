"""The determinism-hazard rule catalogue.

Every experimental claim this reproduction makes rests on byte-identical
same-seed replay (DESIGN.md, "Determinism guarantees"). The rules here
name the source-level constructs that silently break that contract, so
the lint pass can reject them before any event runs — instead of an
after-the-fact CI byte-compare catching the drift on whichever code path
a smoke spec happens to exercise.

Rule families:

* **D0xx — suppression hygiene.** The suppression syntax itself is
  policed: a ``# repro-lint: ignore[...]`` without a written reason is a
  violation, so every exemption in the tree carries its justification.
* **D1xx — ambient randomness.** Anything that draws entropy outside the
  simulation's seeded :class:`~repro.sim.rng.RngRegistry` streams:
  module-level ``random.*`` functions (hidden shared state), unseeded
  ``random.Random()``, ``uuid1/uuid4``, ``os.urandom``, ``secrets``.
* **D2xx — wall-clock reads.** ``time.time``, ``perf_counter`` and
  friends, ``datetime.now``: real time leaking into simulated time. The
  few legitimate sites (the opt-in hotspot profiler bracket, flight-
  recorder provenance) live in the committed baseline with written
  justifications.
* **D3xx — order hazards.** Constructs whose result depends on hash
  seeding or filesystem order: iterating a ``set``/``frozenset`` without
  ``sorted()`` in sim-path modules, unsorted ``os.listdir``/``glob``,
  ``id()``-based ordering, the salted ``hash()`` builtin.
* **D4xx — export hygiene.** ``__all__`` entries that don't resolve,
  duplicates, modules missing ``__all__`` — the class of API drift PR 5
  fixed by hand for the slicing package.

The I-families police the *isolation* contract (DESIGN.md, "Isolation
contract"): simulated nodes are shared-nothing and may interact only
through :class:`~repro.sim.network.Network` messages. Ownership of a
payload transfers to the network at ``send``; the receiver owns what it
is handed and the sender must not retain-and-mutate.

* **I1xx — cross-node reach-through.** Attribute access into another
  node's private state (``.store`` / ``.view`` / ``.scheduler``) on a
  node object obtained from a directory, a server collection, or a
  helper — protocol state may only cross node boundaries inside a
  message payload.
* **I2xx — payload aliasing.** A mutable local sent and then mutated, a
  mutable default payload, re-sending a received message object, or
  aliasing a received payload into an outbound message.
* **I3xx — mutation after forward.** A handler that mutates the message
  it received — worst after forwarding it, when the mutation races the
  in-flight copies.
* **I4xx — callback capture.** Scheduler callbacks (``after`` /
  ``every`` / ``schedule``) closing over a loop variable (late binding)
  or over a mutable local that keeps changing after scheduling.

The runtime counterpart is :func:`repro.lint.isolation.isolation_guard`
(``scenarios run --isolation-check``), which digests every payload at
send and re-verifies it at delivery.

The P-families police the *protocol flow* (DESIGN.md, "Protocol graph &
flow analysis"): unlike every rule above, they are whole-program — the
engine extracts a message graph (message dataclasses × send sites ×
handler registrations) across the entire linted tree first, then judges
it. Linting a subtree can therefore report spurious dead letters; the
committed policy always lints ``src`` whole.

* **P1xx — dead letters.** A message type sent that no handler anywhere
  registers for, a handler registered for a type nothing sends, or a
  handler registered and then unconditionally unregistered in the same
  function body (shadowed on all paths).
* **P2xx — payload schema.** A handler reading ``msg.<attr>`` that the
  message dataclass does not define, a constructor call with an unknown
  keyword, or a mutable field type on a frozen message class (the
  static face of the I2xx aliasing contract).
* **P3xx — request/reply discipline.** For each configured
  ``[lint.protocol] request_reply`` pair, the request handler must send
  the reply type, and the reply type may only be sent from a request
  handler.
* **P4xx — dead protocol code.** A message class that participates in
  no send and no registration at all.

The runtime counterpart is
:func:`repro.lint.coverage.protocol_coverage` (``scenarios run
--protocol-coverage``), which counts delivered/handled edges per
(node class, message type) and reports static edges a run never
exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "Violation", "CATALOG", "FAMILIES", "is_known_rule"]


@dataclass(frozen=True)
class Rule:
    """One lintable determinism hazard."""

    id: str
    title: str
    advice: str

    @property
    def family(self) -> str:
        """The family prefix (``D1`` for ``D101``)."""
        return self.id[:2]


@dataclass(frozen=True)
class Violation:
    """One occurrence of a rule in a source file.

    ``path`` is kept exactly as the engine walked it (forward slashes),
    so baseline entries can match by substring regardless of the
    directory the linter was invoked from.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


FAMILIES: Dict[str, str] = {
    "D0": "suppression hygiene",
    "D1": "ambient randomness",
    "D2": "wall-clock reads",
    "D3": "order hazards",
    "D4": "export hygiene",
    "I1": "cross-node reach-through",
    "I2": "payload aliasing",
    "I3": "mutation after forward",
    "I4": "callback capture",
    "P1": "protocol dead letters",
    "P2": "message payload schema",
    "P3": "request/reply discipline",
    "P4": "dead protocol code",
}

_RULES = (
    Rule(
        "D002",
        "suppression without justification",
        "append a reason after the bracket: "
        "`# repro-lint: ignore[D301] digest feeds a frozenset`",
    ),
    Rule(
        "D101",
        "ambient random-module function",
        "draw from a named stream: `ctx.rng_registry.stream(name)` or "
        "`random.Random(derive_seed(seed, name))`",
    ),
    Rule(
        "D102",
        "unseeded random.Random()",
        "pass an explicit seed, usually via repro.sim.rng.derive_seed",
    ),
    Rule(
        "D103",
        "external entropy source",
        "uuid1/uuid4, os.urandom, secrets and SystemRandom read OS entropy; "
        "derive ids from the run seed instead",
    ),
    Rule(
        "D104",
        "from-import of ambient random function",
        "import the module for typing, or use a seeded random.Random",
    ),
    Rule(
        "D201",
        "wall-clock read",
        "simulated time is `sim.now` / `node.now`; wall time may only "
        "appear in baselined provenance/profiling sites",
    ),
    Rule(
        "D202",
        "wall-clock timer read",
        "perf_counter/monotonic/process_time/sleep never belong on a sim "
        "path; profiling sites must be baselined with a justification",
    ),
    Rule(
        "D203",
        "datetime wall-clock read",
        "datetime.now/utcnow/today reads real time; stamp artifacts after "
        "the run, never sim state",
    ),
    Rule(
        "D204",
        "from-import of wall-clock function",
        "importing time.time/perf_counter by name hides D201/D202 call "
        "sites from review; keep the module prefix or baseline the module",
    ),
    Rule(
        "D301",
        "unsorted set iteration",
        "wrap in sorted(): set/frozenset order is hash-seed-dependent, so "
        "iteration order differs between processes",
    ),
    Rule(
        "D302",
        "unsorted directory listing",
        "wrap os.listdir/glob results in sorted(): filesystem order is "
        "platform-dependent",
    ),
    Rule(
        "D303",
        "id()-based ordering",
        "CPython id() is an address — it varies run to run; order by a "
        "stable key (node id, name) instead",
    ),
    Rule(
        "D304",
        "salted hash() builtin",
        "str/bytes hash() is salted per process (PYTHONHASHSEED); use "
        "repro.sim.rng.derive_seed or hashlib for stable digests",
    ),
    Rule(
        "D401",
        "__all__ entry does not resolve",
        "every name in __all__ must be bound at module top level",
    ),
    Rule(
        "D402",
        "duplicate __all__ entry",
        "each public name belongs in __all__ exactly once",
    ),
    Rule(
        "D403",
        "module missing __all__",
        "declare the public surface; star-imports and doc tooling rely on it",
    ),
    Rule(
        "I101",
        "cross-node state reach-through",
        "a node obtained from a directory or server collection is another "
        "process; read its state via a message round-trip or a facade "
        "method (e.g. node.holds(key, version)), never its attributes",
    ),
    Rule(
        "I102",
        "cross-node reach-through via collection",
        "indexing straight into a server collection's private state "
        "(self.servers[i].store) crosses the node boundary; add a facade "
        "method on the node and call that",
    ),
    Rule(
        "I201",
        "mutable payload mutated after send",
        "the network owns a payload once sent; snapshot it at send time "
        "(tuple(batch)) or build a fresh object for the next send",
    ),
    Rule(
        "I202",
        "mutable default payload",
        "a mutable default ([] / {} / set()) is shared across every call "
        "and every message it rides in; default to None and allocate "
        "per call",
    ),
    Rule(
        "I203",
        "received message re-sent without copy",
        "the received object may be aliased by the sender or other "
        "receivers; rebuild the message (dataclasses.replace or the "
        "constructor) before forwarding",
    ),
    Rule(
        "I204",
        "received payload aliased into outbound message",
        "wrap the received payload in a snapshot (tuple(msg.payload)) or "
        "rebuild it before re-sending; aliasing couples the two messages' "
        "fates",
    ),
    Rule(
        "I301",
        "received message mutated after forward",
        "the forwarded copy is in flight; mutating the shared object "
        "races delivery — rebuild the message instead of editing it",
    ),
    Rule(
        "I302",
        "received message mutated in handler",
        "handlers borrow the message they are handed (copy-on-receive "
        "rule); derive new state instead of editing the payload in place",
    ),
    Rule(
        "I401",
        "scheduler callback captures loop variable",
        "lambdas bind names late: every callback sees the loop's final "
        "value; rebind as a default (lambda peer=peer: ...) or pass it "
        "as a callback argument",
    ),
    Rule(
        "I402",
        "scheduler callback captures mutated local",
        "the callback runs later and sees the local's latest value, not "
        "the value at scheduling time; snapshot it as a lambda default "
        "or pass it as an argument",
    ),
    Rule(
        "P101",
        "message type sent but never handled",
        "no handler anywhere in the linted tree registers for this type, "
        "so every copy dead-letters into msg.unhandled.<Type>; register "
        "a handler or delete the send",
    ),
    Rule(
        "P102",
        "handler registered for a type never sent",
        "nothing in the linted tree sends this type, so the handler is "
        "dead wiring; delete the registration or add the missing sender",
    ),
    Rule(
        "P103",
        "handler registered then unconditionally unregistered",
        "the same function body registers and then unregisters this "
        "type, so the handler is shadowed on every path; split lifecycle "
        "across start()/stop() instead",
    ),
    Rule(
        "P201",
        "handler reads undefined message attribute",
        "the message dataclass defines neither this field nor a "
        "property/method of that name; the read raises AttributeError "
        "at dispatch time",
    ),
    Rule(
        "P202",
        "message constructor called with unknown argument",
        "the keyword (or extra positional) does not match any dataclass "
        "field; the call raises TypeError when it runs",
    ),
    Rule(
        "P203",
        "mutable field type on a frozen message class",
        "a frozen message with a list/dict/set field is only shallowly "
        "immutable — receivers can alias and mutate the payload (the "
        "I2xx hazard); use tuple/frozenset/Mapping snapshots",
    ),
    Rule(
        "P301",
        "request handler never sends the reply type",
        "this type is the request half of a configured request_reply "
        "pair, but its handler contains no send of the reply type; "
        "every requester will time out",
    ),
    Rule(
        "P302",
        "reply sent outside any request handler",
        "this type is the reply half of a configured request_reply "
        "pair, but this send is not inside a handler registered for the "
        "request type — an unsolicited reply",
    ),
    Rule(
        "P401",
        "message class never sent nor handled",
        "no send site or handler registration anywhere in the linted "
        "tree touches this class; delete it or wire it into the "
        "protocol",
    ),
)

CATALOG: Dict[str, Rule] = {rule.id: rule for rule in _RULES}


def is_known_rule(rule_id: str) -> bool:
    """True for exact ids (``D301``, ``I203``, ``P101``), family
    prefixes (``D3``, ``I2``, ``P1``), and the bare ``P`` super-family
    (all protocol rules, the ``--select P`` convenience)."""
    return rule_id in CATALOG or rule_id in FAMILIES or rule_id == "P"

"""The determinism-hazard rule catalogue.

Every experimental claim this reproduction makes rests on byte-identical
same-seed replay (DESIGN.md, "Determinism guarantees"). The rules here
name the source-level constructs that silently break that contract, so
the lint pass can reject them before any event runs — instead of an
after-the-fact CI byte-compare catching the drift on whichever code path
a smoke spec happens to exercise.

Rule families:

* **D0xx — suppression hygiene.** The suppression syntax itself is
  policed: a ``# repro-lint: ignore[...]`` without a written reason is a
  violation, so every exemption in the tree carries its justification.
* **D1xx — ambient randomness.** Anything that draws entropy outside the
  simulation's seeded :class:`~repro.sim.rng.RngRegistry` streams:
  module-level ``random.*`` functions (hidden shared state), unseeded
  ``random.Random()``, ``uuid1/uuid4``, ``os.urandom``, ``secrets``.
* **D2xx — wall-clock reads.** ``time.time``, ``perf_counter`` and
  friends, ``datetime.now``: real time leaking into simulated time. The
  few legitimate sites (the opt-in hotspot profiler bracket, flight-
  recorder provenance) live in the committed baseline with written
  justifications.
* **D3xx — order hazards.** Constructs whose result depends on hash
  seeding or filesystem order: iterating a ``set``/``frozenset`` without
  ``sorted()`` in sim-path modules, unsorted ``os.listdir``/``glob``,
  ``id()``-based ordering, the salted ``hash()`` builtin.
* **D4xx — export hygiene.** ``__all__`` entries that don't resolve,
  duplicates, modules missing ``__all__`` — the class of API drift PR 5
  fixed by hand for the slicing package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "Violation", "CATALOG", "FAMILIES", "is_known_rule"]


@dataclass(frozen=True)
class Rule:
    """One lintable determinism hazard."""

    id: str
    title: str
    advice: str

    @property
    def family(self) -> str:
        """The family prefix (``D1`` for ``D101``)."""
        return self.id[:2]


@dataclass(frozen=True)
class Violation:
    """One occurrence of a rule in a source file.

    ``path`` is kept exactly as the engine walked it (forward slashes),
    so baseline entries can match by substring regardless of the
    directory the linter was invoked from.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


FAMILIES: Dict[str, str] = {
    "D0": "suppression hygiene",
    "D1": "ambient randomness",
    "D2": "wall-clock reads",
    "D3": "order hazards",
    "D4": "export hygiene",
}

_RULES = (
    Rule(
        "D002",
        "suppression without justification",
        "append a reason after the bracket: "
        "`# repro-lint: ignore[D301] digest feeds a frozenset`",
    ),
    Rule(
        "D101",
        "ambient random-module function",
        "draw from a named stream: `ctx.rng_registry.stream(name)` or "
        "`random.Random(derive_seed(seed, name))`",
    ),
    Rule(
        "D102",
        "unseeded random.Random()",
        "pass an explicit seed, usually via repro.sim.rng.derive_seed",
    ),
    Rule(
        "D103",
        "external entropy source",
        "uuid1/uuid4, os.urandom, secrets and SystemRandom read OS entropy; "
        "derive ids from the run seed instead",
    ),
    Rule(
        "D104",
        "from-import of ambient random function",
        "import the module for typing, or use a seeded random.Random",
    ),
    Rule(
        "D201",
        "wall-clock read",
        "simulated time is `sim.now` / `node.now`; wall time may only "
        "appear in baselined provenance/profiling sites",
    ),
    Rule(
        "D202",
        "wall-clock timer read",
        "perf_counter/monotonic/process_time/sleep never belong on a sim "
        "path; profiling sites must be baselined with a justification",
    ),
    Rule(
        "D203",
        "datetime wall-clock read",
        "datetime.now/utcnow/today reads real time; stamp artifacts after "
        "the run, never sim state",
    ),
    Rule(
        "D204",
        "from-import of wall-clock function",
        "importing time.time/perf_counter by name hides D201/D202 call "
        "sites from review; keep the module prefix or baseline the module",
    ),
    Rule(
        "D301",
        "unsorted set iteration",
        "wrap in sorted(): set/frozenset order is hash-seed-dependent, so "
        "iteration order differs between processes",
    ),
    Rule(
        "D302",
        "unsorted directory listing",
        "wrap os.listdir/glob results in sorted(): filesystem order is "
        "platform-dependent",
    ),
    Rule(
        "D303",
        "id()-based ordering",
        "CPython id() is an address — it varies run to run; order by a "
        "stable key (node id, name) instead",
    ),
    Rule(
        "D304",
        "salted hash() builtin",
        "str/bytes hash() is salted per process (PYTHONHASHSEED); use "
        "repro.sim.rng.derive_seed or hashlib for stable digests",
    ),
    Rule(
        "D401",
        "__all__ entry does not resolve",
        "every name in __all__ must be bound at module top level",
    ),
    Rule(
        "D402",
        "duplicate __all__ entry",
        "each public name belongs in __all__ exactly once",
    ),
    Rule(
        "D403",
        "module missing __all__",
        "declare the public surface; star-imports and doc tooling rely on it",
    ),
)

CATALOG: Dict[str, Rule] = {rule.id: rule for rule in _RULES}


def is_known_rule(rule_id: str) -> bool:
    """True for exact ids (``D301``) and family prefixes (``D3``)."""
    return rule_id in CATALOG or rule_id in FAMILIES

"""The AST walk that finds determinism hazards in one module.

:func:`audit_module` parses nothing itself — the engine hands it a
parsed tree — and returns raw :class:`~repro.lint.rules.Violation`
records; suppressions, allowlist and baseline are applied later by the
engine, so this module stays a pure function of (tree, policy).

Detection is deliberately *syntactic*. A type checker would know more,
but the hazards this linter exists for are exactly the ones simple
syntax betrays: a call spelled ``random.random()``, an iteration spelled
``for x in some_set``, an import spelled ``from time import time``. Two
pieces of shallow inference sharpen the D3xx rules without a type
system: per-scope tracking of names assigned from set-valued
expressions, and a configured list of set-returning helper names
(``digest``, ``missing_from`` …) the visitor trusts.

Order-neutral consumption is recognised and exempted: a set iterated
inside ``sorted()``, fed into another ``set()``/``frozenset()``, or
reduced by ``len``/``min``/``max``/``sum``/``any``/``all`` cannot leak
hash order into the trajectory, so ``sorted(self.store.digest())``
lints clean while ``list(self.store.digest())`` does not.

The I-families use the same shallow machinery for the *isolation*
contract. Two extra judgements back them: per-scope tracking of
node-valued names (anything pulled out of a configured node collection
like ``self.servers`` or returned by a ``node_returning`` helper) for
the I1xx reach-through rules, and a second, per-function pass that
reconciles ``send(...)`` call sites against later mutations of the same
local (I2xx/I3xx) and scheduler-callback lambdas against the names they
capture (I4xx). Copy wrappers (``tuple(batch)``, ``sorted(...)``,
``frozenset(...)`` …) snapshot their argument at send time, so payloads
routed through one are exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.rules import Violation

__all__ = ["audit_module"]

# D101: the ambient random-module API (module-level functions backed by
# one hidden shared Random instance). random.Random/SystemRandom are
# handled separately (D102/D103).
_AMBIENT_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

# D201 / D202: wall-clock reads from the time module.
_WALL_CLOCK = frozenset({"time", "time_ns"})
_WALL_TIMER = frozenset(
    {
        "clock_gettime", "clock_gettime_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
        "sleep", "thread_time", "thread_time_ns",
    }
)

# D203: wall-clock classmethods on datetime/date.
_DATETIME_READS = frozenset({"now", "utcnow", "today"})

# D103: OS-entropy draws.
_UUID_ENTROPY = frozenset({"uuid1", "uuid4"})

# D302: filesystem-order producers.
_FS_LISTING = frozenset({"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"})

# Consumers that erase iteration order: anything inside their argument
# list may iterate sets freely.
_ORDER_NEUTRAL_CALLS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

# Consumers that *preserve* iteration order — a set flowing into one of
# these leaks hash order into sim state.
_ORDER_SENSITIVE_CALLS = frozenset({"enumerate", "iter", "list", "reversed", "tuple"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = frozenset(
    {"difference", "intersection", "symmetric_difference", "union"}
)

# I2xx/I3xx: methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "reverse", "setdefault", "sort", "update",
    }
)

# Calls that snapshot their argument — a payload routed through one of
# these is decoupled from the local at send time.
_COPY_CALLS = frozenset(
    {"bytes", "dict", "frozenset", "list", "set", "sorted", "str", "tuple"}
)

# I4xx: methods that defer a callback to a later simulated time.
_SCHEDULING_CALLS = frozenset({"after", "every", "schedule"})

# Literal displays/comprehensions that allocate a mutable container.
_MUTABLE_DISPLAYS = (
    ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp,
)


def audit_module(
    tree: ast.Module, path: str, config: LintConfig, module_name: str
) -> List[Violation]:
    """All raw violations in one parsed module, unsorted."""
    auditor = _Auditor(path, config, module_name)
    auditor.scan(tree)
    return auditor.violations


class _Auditor:
    def __init__(self, path: str, config: LintConfig, module_name: str) -> None:
        self.path = path
        self.config = config
        self.module_name = module_name
        self.simpath = config.is_simpath(path)
        self.set_returning = frozenset(config.set_returning)
        self.node_collections = frozenset(config.node_collections)
        self.node_returning = frozenset(config.node_returning)
        self.node_state = frozenset(config.node_state)
        self.payload_attrs = frozenset(config.payload_attrs)
        self.violations: List[Violation] = []
        # import-alias tables: local name -> canonical module name
        self.module_aliases: Dict[str, str] = {}
        # from-imported names: local name -> (module, original name)
        self.from_imports: Dict[str, tuple] = {}
        self.has_star_import = False
        # stack of per-scope {name: is_set_valued}
        self.scopes: List[Dict[str, bool]] = [{}]
        # stack of per-scope {name: "node" | "collection"} for I1xx
        self.iso_scopes: List[Dict[str, str]] = [{}]
        # >0 while inside an order-neutral consumer's arguments
        self.neutral = 0

    # ------------------------------------------------------------- helpers

    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _module_of(self, node: ast.expr) -> Optional[str]:
        """Canonical module name a Name node refers to, if imported."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    def _set_valued(self, node: ast.expr) -> bool:
        """Syntactic judgement: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            origin = self.from_imports.get(node.id)
            if origin is not None:
                return False
            for scope in reversed(self.scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in {"set", "frozenset"}:
                    return True
                if func.id in self.set_returning:
                    return True
                origin = self.from_imports.get(func.id)
                if origin is not None and origin[1] in self.set_returning:
                    return True
            if isinstance(func, ast.Attribute):
                if func.attr in {"union", "intersection", "difference",
                                 "symmetric_difference"} and self._set_valued(func.value):
                    return True
                if func.attr in self.set_returning:
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._set_valued(node.left) or self._set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self._set_valued(node.body) or self._set_valued(node.orelse)
        return False

    def _is_set_annotation(self, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
        if isinstance(target, ast.Name):
            return target.id in {
                "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
            }
        return False

    def _describe(self, node: ast.expr) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.11
            return "expression"
        return text if len(text) <= 40 else text[:37] + "..."

    # --------------------------------------------------------------- scan

    def scan(self, tree: ast.Module) -> None:
        self._module_hygiene(tree)
        for node in tree.body:
            self._walk(node)

    # -------------------------------------------------- D4xx: __all__

    def _module_hygiene(self, tree: ast.Module) -> None:
        bindings = self._top_level_bindings(tree)
        exported = self._find_all(tree)
        if exported is None:
            if self._needs_all(tree):
                self.flag(
                    "D403",
                    tree.body[0] if tree.body else tree,
                    "module defines a public surface but no __all__",
                )
            return
        all_node, names = exported
        if names is None:
            return  # dynamically built __all__; out of static reach
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                self.flag("D402", all_node, f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name == "__version__":
                continue  # dunder assignments are collected, but be lenient
            if not self.has_star_import and name not in bindings:
                self.flag(
                    "D401",
                    all_node,
                    f"__all__ names {name!r} but the module never binds it",
                )

    def _top_level_bindings(self, tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        self.has_star_import = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(_names_in_target(target))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING / fallback-import blocks bind names too.
                for child in ast.walk(node):
                    if isinstance(child, (ast.Import, ast.ImportFrom)):
                        for alias in child.names:
                            if alias.name != "*":
                                bound.add(alias.asname or alias.name.split(".")[0])
                    elif isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        bound.add(child.name)
                    elif isinstance(child, ast.Assign):
                        for target in child.targets:
                            bound.update(_names_in_target(target))
        return bound

    def _find_all(self, tree: ast.Module):
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in node.value.elts
                ):
                    return node, [el.value for el in node.value.elts]
                return node, None
        return None

    def _needs_all(self, tree: ast.Module) -> bool:
        if self.module_name.rpartition(".")[2] in {"__main__", "conftest", "setup"}:
            return False
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
            for node in tree.body
        )

    # ------------------------------------------------------------ walking

    def _walk(self, node: ast.AST) -> None:
        handler = getattr(self, f"_on_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self._generic(node)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    # imports ----------------------------------------------------------

    def _on_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self.module_aliases[alias.asname or root] = alias.name

    def _on_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.from_imports[local] = (module, alias.name)
            if module == "random" and alias.name in _AMBIENT_RANDOM:
                self.flag(
                    "D104",
                    node,
                    f"from random import {alias.name} pulls the shared ambient "
                    "generator into the namespace",
                )
            elif module == "time" and alias.name in (_WALL_CLOCK | _WALL_TIMER):
                self.flag(
                    "D204",
                    node,
                    f"from time import {alias.name} imports a wall-clock read",
                )
            elif module == "secrets" or (module == "os" and alias.name == "urandom"):
                self.flag(
                    "D103",
                    node,
                    f"from {module} import {alias.name} imports an OS entropy source",
                )
            elif module == "uuid" and alias.name in _UUID_ENTROPY:
                self.flag(
                    "D103",
                    node,
                    f"from uuid import {alias.name} imports an OS entropy source",
                )

    # scopes -----------------------------------------------------------

    def _on_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def _on_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        scope: Dict[str, bool] = {}
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if self._is_set_annotation(arg.annotation):
                scope[arg.arg] = True
        self.scopes.append(scope)
        self.iso_scopes.append({})
        self._audit_isolation_function(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)
        self.scopes.pop()
        self.iso_scopes.pop()

    def _on_Assign(self, node: ast.Assign) -> None:
        self._walk(node.value)
        is_set = self._set_valued(node.value)
        kind = self._node_kind(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scopes[-1][target.id] = is_set
                if kind is not None:
                    self.iso_scopes[-1][target.id] = kind
                else:
                    self.iso_scopes[-1].pop(target.id, None)
            else:
                self._walk(target)

    def _on_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._walk(node.value)
        if isinstance(node.target, ast.Name):
            self.scopes[-1][node.target.id] = self._is_set_annotation(
                node.annotation
            ) or (node.value is not None and self._set_valued(node.value))

    # expressions ------------------------------------------------------

    def _on_Attribute(self, node: ast.Attribute) -> None:
        # I1xx: node-private state read on a node that came out of a
        # directory/collection — another process, in sim terms.
        if self.simpath and node.attr in self.node_state:
            base = node.value
            if isinstance(base, ast.Subscript) and self._node_kind(base) == "node":
                self.flag(
                    "I102",
                    node,
                    f"{self._describe(node)} indexes into another node's "
                    f"{node.attr!r}; add a facade method on the node",
                )
            elif isinstance(base, ast.Name) and self._node_kind(base) == "node":
                self.flag(
                    "I101",
                    node,
                    f"{self._describe(node)} reaches across the node boundary "
                    f"into {node.attr!r}; state may only cross in a message",
                )
        module = self._module_of(node.value)
        if module == "random":
            if node.attr in _AMBIENT_RANDOM:
                self.flag(
                    "D101",
                    node,
                    f"random.{node.attr} uses the shared ambient generator",
                )
        elif module == "time":
            if node.attr in _WALL_CLOCK:
                self.flag("D201", node, f"time.{node.attr} reads the wall clock")
            elif node.attr in _WALL_TIMER:
                self.flag("D202", node, f"time.{node.attr} reads a wall-clock timer")
        elif module == "os" and node.attr == "urandom":
            self.flag("D103", node, "os.urandom reads OS entropy")
        elif module == "secrets":
            self.flag("D103", node, f"secrets.{node.attr} reads OS entropy")
        elif module == "uuid" and node.attr in _UUID_ENTROPY:
            self.flag("D103", node, f"uuid.{node.attr} draws OS entropy")
        self._generic(node)

    def _on_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_call_target(node, func)
        neutral_call = (
            isinstance(func, ast.Name)
            and func.id in _ORDER_NEUTRAL_CALLS
            and func.id not in self.from_imports
        )
        # Iteration-order sensitive consumers taking a set argument.
        if not neutral_call and self.neutral == 0 and self.simpath:
            sensitive = (
                isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS
            ) or (isinstance(func, ast.Attribute) and func.attr == "join")
            if sensitive:
                for arg in node.args:
                    if self._set_valued(arg):
                        self.flag(
                            "D301",
                            arg,
                            f"{self._describe(node)} materialises a set in "
                            "hash order",
                        )
        self._walk(func)
        if neutral_call:
            self.neutral += 1
        for arg in node.args:
            self._walk(arg)
        for keyword in node.keywords:
            self._walk(keyword.value)
        if neutral_call:
            self.neutral -= 1

    def _check_call_target(self, node: ast.Call, func: ast.expr) -> None:
        # Unseeded Random() / SystemRandom, by module attribute or import.
        name: Optional[str] = None
        if isinstance(func, ast.Attribute) and self._module_of(func.value) == "random":
            name = func.attr
        elif isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None and origin[0] == "random":
                name = origin[1]
        if name == "Random" and not node.args and not node.keywords:
            self.flag(
                "D102",
                node,
                "random.Random() without a seed falls back to OS entropy",
            )
        elif name == "SystemRandom":
            self.flag("D103", node, "random.SystemRandom draws OS entropy")

        # Wall-clock / entropy calls through from-imported aliases.
        if isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None:
                module, original = origin
                if module == "time" and original in _WALL_CLOCK:
                    self.flag("D201", node, f"{func.id}() reads the wall clock")
                elif module == "time" and original in _WALL_TIMER:
                    self.flag("D202", node, f"{func.id}() reads a wall-clock timer")
                elif module == "uuid" and original in _UUID_ENTROPY:
                    self.flag("D103", node, f"{func.id}() draws OS entropy")
                elif module == "os" and original == "urandom":
                    self.flag("D103", node, f"{func.id}() reads OS entropy")
                elif module == "secrets":
                    self.flag("D103", node, f"{func.id}() reads OS entropy")

        # datetime.now()/utcnow()/today().
        if isinstance(func, ast.Attribute) and func.attr in _DATETIME_READS:
            base = func.value
            is_datetime = False
            if isinstance(base, ast.Name):
                origin = self.from_imports.get(base.id)
                is_datetime = (
                    origin is not None
                    and origin[0] == "datetime"
                    and origin[1] in {"date", "datetime"}
                ) or self._module_of(base) == "datetime"
            elif isinstance(base, ast.Attribute):
                is_datetime = (
                    self._module_of(base.value) == "datetime"
                    and base.attr in {"date", "datetime"}
                )
            if is_datetime:
                self.flag(
                    "D203",
                    node,
                    f"{self._describe(func)}() reads the wall clock",
                )

        # Filesystem-order producers (outside a neutral consumer).
        if self.neutral == 0:
            listing: Optional[str] = None
            if isinstance(func, ast.Attribute) and func.attr in _FS_LISTING:
                base_module = self._module_of(func.value)
                if base_module in {"os", "glob"} or func.attr in {
                    "iterdir", "rglob",
                } or (func.attr == "glob" and base_module != "glob"):
                    listing = self._describe(func)
                elif base_module is None and func.attr in {"listdir", "iglob"}:
                    listing = self._describe(func)
            elif isinstance(func, ast.Name):
                origin = self.from_imports.get(func.id)
                if origin is not None and origin[0] in {"os", "glob"} and (
                    origin[1] in _FS_LISTING
                ):
                    listing = func.id
            if listing is not None:
                self.flag(
                    "D302",
                    node,
                    f"{listing} yields entries in filesystem order; wrap in sorted()",
                )

        # id()/hash() ordering hazards, sim-path only.
        if self.simpath and isinstance(func, ast.Name) and func.id in {"id", "hash"}:
            if func.id not in self.from_imports:
                rule = "D303" if func.id == "id" else "D304"
                self.flag(
                    rule,
                    node,
                    f"{func.id}() is process-dependent"
                    + (" (salted per run for str/bytes)" if func.id == "hash" else ""),
                )

    def _on_For(self, node: ast.For) -> None:
        if self.simpath and self.neutral == 0 and self._set_valued(node.iter):
            self.flag(
                "D301",
                node.iter,
                f"iterating {self._describe(node.iter)} visits elements in "
                "hash order",
            )
        if self.simpath and self._node_kind(node.iter) == "collection":
            for name in _names_in_target(node.target):
                self.iso_scopes[-1][name] = "node"
        self._generic(node)

    def _on_comprehension_holder(self, node) -> None:
        """Shared D301 check for list/dict/generator comprehensions.

        Set comprehensions are order-neutral by construction and handled
        separately. A generator feeding an order-neutral call is already
        exempted by the ``neutral`` counter at the call site.
        """
        if self.simpath and self.neutral == 0:
            for comp in node.generators:
                if self._set_valued(comp.iter):
                    self.flag(
                        "D301",
                        comp.iter,
                        f"comprehension over {self._describe(comp.iter)} runs in "
                        "hash order",
                    )
        self._bind_node_targets(node.generators)
        self._generic(node)

    def _on_ListComp(self, node: ast.ListComp) -> None:
        self._on_comprehension_holder(node)

    def _on_DictComp(self, node: ast.DictComp) -> None:
        self._on_comprehension_holder(node)

    def _on_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._on_comprehension_holder(node)

    def _on_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-neutral all the way down.
        self._bind_node_targets(node.generators)
        self.neutral += 1
        self._generic(node)
        self.neutral -= 1

    # ------------------------------------------- I1xx: node-valued names

    def _bind_node_targets(self, generators) -> None:
        """Comprehension targets over a node collection are node-valued
        (the dht replication-level genexp is exactly this shape)."""
        if not self.simpath:
            return
        for comp in generators:
            if self._node_kind(comp.iter) == "collection":
                for name in _names_in_target(comp.target):
                    self.iso_scopes[-1][name] = "node"

    def _node_kind(self, expr: ast.expr) -> Optional[str]:
        """Syntactic judgement: ``"collection"`` for a node collection,
        ``"node"`` for one node pulled out of it, ``None`` otherwise."""
        if isinstance(expr, ast.Attribute):
            return "collection" if expr.attr in self.node_collections else None
        if isinstance(expr, ast.Name):
            for scope in reversed(self.iso_scopes):
                if expr.id in scope:
                    return scope[expr.id]
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            fname = None
            if isinstance(func, ast.Name):
                fname = func.id
            elif isinstance(func, ast.Attribute):
                fname = func.attr
            if fname in self.node_returning:
                return "collection"
            # list(self.servers) / sorted(..., key=...) keep node identity.
            if (
                fname in {"list", "sorted", "tuple"}
                and expr.args
                and self._node_kind(expr.args[0]) == "collection"
            ):
                return "collection"
            return None
        if isinstance(expr, ast.Subscript):
            if self._node_kind(expr.value) == "collection":
                return "node"
            return None
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            # [s for s in self.servers if s.alive] is still a node
            # collection — filtered, but element-for-element the same.
            if (
                len(expr.generators) == 1
                and isinstance(expr.elt, ast.Name)
                and isinstance(expr.generators[0].target, ast.Name)
                and expr.elt.id == expr.generators[0].target.id
                and self._node_kind(expr.generators[0].iter) == "collection"
            ):
                return "collection"
            return None
        return None

    # --------------------------- I2xx/I3xx/I4xx: per-function analysis

    def _audit_isolation_function(self, node) -> None:
        """Second pass over one function body: reconcile sends against
        later mutations, handlers against what they do to ``msg``, and
        scheduler lambdas against the names they capture."""
        if not self.simpath:
            return
        # I202: a mutable default is one object shared by every call —
        # and by every message it is ever sent inside.
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.Dict, ast.List, ast.Set)):
                self.flag(
                    "I202",
                    default,
                    f"mutable default {self._describe(default)} is shared "
                    "across calls; default to None and allocate per call",
                )
        params = [
            arg.arg
            for arg in list(node.args.posonlyargs) + list(node.args.args)
            if arg.arg not in {"self", "cls"}
        ]
        handler = params[0] if params and params[0] == "msg" else None
        info = _FunctionIsolation(handler)
        for child in node.body:
            self._iso_scan(child, info, [])
        self._iso_reconcile(info)

    def _iso_scan(self, node: ast.AST, info: "_FunctionIsolation",
                  loop: List[Set[str]]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run their own per-function pass
        if isinstance(node, ast.Assign):
            self._iso_scan(node.value, info, loop)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, _MUTABLE_DISPLAYS) or (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in {"dict", "list", "set"}
                ):
                    info.mutable.setdefault(name, node.lineno)
                else:
                    info.mutable.pop(name, None)  # rebound to something else
                return
            for target in node.targets:
                self._iso_mutation_target(target, info)
            return
        if isinstance(node, ast.AugAssign):
            self._iso_mutation_target(node.target, info, rebind_ok=False)
            self._iso_scan(node.value, info, loop)
            return
        if isinstance(node, ast.For):
            self._iso_scan(node.iter, info, loop)
            names = _names_in_target(node.target)
            inner = loop + [names]
            for child in node.body:
                self._iso_scan(child, info, inner)
            for child in node.orelse:
                self._iso_scan(child, info, loop)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "send":
                    self._iso_send(node, info)
                elif func.attr in _SCHEDULING_CALLS:
                    self._iso_schedule(node, info, loop)
                elif func.attr in _MUTATING_METHODS:
                    root = _root_name(func.value)
                    if root is not None:
                        info.mutations.setdefault(root, []).append(node)
            for child in ast.iter_child_nodes(node):
                self._iso_scan(child, info, loop)
            return
        for child in ast.iter_child_nodes(node):
            self._iso_scan(child, info, loop)

    def _iso_mutation_target(
        self, target: ast.expr, info: "_FunctionIsolation",
        rebind_ok: bool = True,
    ) -> None:
        """An assignment *into* an object (subscript/attribute target, or
        augmented assign) mutates the root name; a plain name target only
        rebinds it."""
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root is not None:
                info.mutations.setdefault(root, []).append(target)
        elif isinstance(target, ast.Name) and not rebind_ok:
            info.mutations.setdefault(target.id, []).append(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._iso_mutation_target(element, info, rebind_ok)

    def _iso_send(self, node: ast.Call, info: "_FunctionIsolation") -> None:
        names: Set[str] = set()
        refs_msg = False
        payload = list(node.args) + [kw.value for kw in node.keywords]
        for arg in payload:
            if (
                info.handler is not None
                and isinstance(arg, ast.Name)
                and arg.id == info.handler
            ):
                self.flag(
                    "I203",
                    node,
                    f"re-sends the received message object {arg.id!r}; "
                    "rebuild it before forwarding",
                )
                refs_msg = True
                continue
            if self._iso_payload_names(arg, info, names):
                refs_msg = True
        info.sends.append((node.lineno, names))
        if refs_msg:
            info.forwards.append(node.lineno)

    def _iso_payload_names(
        self, expr: ast.AST, info: "_FunctionIsolation", names: Set[str]
    ) -> bool:
        """Collect local names a payload expression aliases, skipping
        copy-wrapped subtrees; flag I204 inline; return True if the
        subtree references the handler's message."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) and (
            expr.func.id in _COPY_CALLS
        ):
            return False  # snapshot at send time — decoupled
        refs_msg = False
        if isinstance(expr, ast.Name):
            names.add(expr.id)
            return expr.id == info.handler
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == info.handler
        ):
            if expr.attr in self.payload_attrs:
                self.flag(
                    "I204",
                    expr,
                    f"{self._describe(expr)} aliases the received payload "
                    "into an outbound message; snapshot or rebuild it",
                )
            return True
        for child in ast.iter_child_nodes(expr):
            if self._iso_payload_names(child, info, names):
                refs_msg = True
        return refs_msg

    def _iso_schedule(
        self, node: ast.Call, info: "_FunctionIsolation", loop: List[Set[str]]
    ) -> None:
        for arg in node.args:
            if not isinstance(arg, ast.Lambda):
                continue
            params = {
                a.arg
                for a in list(arg.args.posonlyargs)
                + list(arg.args.args)
                + list(arg.args.kwonlyargs)
            }
            captured = {
                n.id
                for n in ast.walk(arg.body)
                if isinstance(n, ast.Name) and n.id not in params
            }
            late = captured & set().union(*loop) if loop else set()
            if late:
                name = sorted(late)[0]
                self.flag(
                    "I401",
                    arg,
                    f"callback captures loop variable {name!r}; every firing "
                    f"sees the final value — rebind it as a default "
                    f"(lambda {name}={name}: ...)",
                )
            info.scheduled.append((node.lineno, arg, captured))

    def _iso_reconcile(self, info: "_FunctionIsolation") -> None:
        # I201: a mutable local referenced by a send and mutated later.
        flagged: Set[int] = set()
        for send_line, names in info.sends:
            for name in sorted(names & set(info.mutable)):
                for mutation in info.mutations.get(name, ()):  # in scan order
                    if mutation.lineno > send_line and id(mutation) not in flagged:
                        flagged.add(id(mutation))
                        self.flag(
                            "I201",
                            mutation,
                            f"{name!r} was sent at line {send_line} and is "
                            "mutated here; the network owns it once sent",
                        )
                        break
        # I301/I302: the handler mutated the message it was handed.
        if info.handler is not None:
            for mutation in info.mutations.get(info.handler, ()):
                if any(line < mutation.lineno for line in info.forwards):
                    self.flag(
                        "I301",
                        mutation,
                        f"mutates {info.handler!r} after forwarding it; the "
                        "in-flight copy races this write",
                    )
                else:
                    self.flag(
                        "I302",
                        mutation,
                        f"mutates the received message {info.handler!r}; "
                        "handlers borrow what they are handed "
                        "(copy-on-receive)",
                    )
        # I402: a scheduled lambda captured a mutable local that kept
        # changing after the scheduling call.
        for sched_line, lam, captured in info.scheduled:
            for name in sorted(captured & set(info.mutable)):
                if any(
                    m.lineno > sched_line for m in info.mutations.get(name, ())
                ):
                    self.flag(
                        "I402",
                        lam,
                        f"callback captures {name!r}, which is mutated after "
                        "scheduling; it will see the mutated value when it "
                        "fires",
                    )
                    break


class _FunctionIsolation:
    """Scratch state for one function's I2xx/I3xx/I4xx pass."""

    def __init__(self, handler: Optional[str]) -> None:
        self.handler = handler
        # local name -> lineno of the mutable-display assignment
        self.mutable: Dict[str, int] = {}
        # root name -> mutation nodes, in scan order
        self.mutations: Dict[str, List[ast.AST]] = {}
        # (lineno, local names referenced by the payload)
        self.sends: List[tuple] = []
        # send linenos whose payload references the handler's message
        self.forwards: List[int] = []
        # (lineno, lambda node, captured names)
        self.scheduled: List[tuple] = []


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base Name under a Subscript/Attribute chain, if any."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _names_in_target(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_names_in_target(element))
    return names

"""The AST walk that finds determinism hazards in one module.

:func:`audit_module` parses nothing itself — the engine hands it a
parsed tree — and returns raw :class:`~repro.lint.rules.Violation`
records; suppressions, allowlist and baseline are applied later by the
engine, so this module stays a pure function of (tree, policy).

Detection is deliberately *syntactic*. A type checker would know more,
but the hazards this linter exists for are exactly the ones simple
syntax betrays: a call spelled ``random.random()``, an iteration spelled
``for x in some_set``, an import spelled ``from time import time``. Two
pieces of shallow inference sharpen the D3xx rules without a type
system: per-scope tracking of names assigned from set-valued
expressions, and a configured list of set-returning helper names
(``digest``, ``missing_from`` …) the visitor trusts.

Order-neutral consumption is recognised and exempted: a set iterated
inside ``sorted()``, fed into another ``set()``/``frozenset()``, or
reduced by ``len``/``min``/``max``/``sum``/``any``/``all`` cannot leak
hash order into the trajectory, so ``sorted(self.store.digest())``
lints clean while ``list(self.store.digest())`` does not.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.rules import Violation

__all__ = ["audit_module"]

# D101: the ambient random-module API (module-level functions backed by
# one hidden shared Random instance). random.Random/SystemRandom are
# handled separately (D102/D103).
_AMBIENT_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

# D201 / D202: wall-clock reads from the time module.
_WALL_CLOCK = frozenset({"time", "time_ns"})
_WALL_TIMER = frozenset(
    {
        "clock_gettime", "clock_gettime_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
        "sleep", "thread_time", "thread_time_ns",
    }
)

# D203: wall-clock classmethods on datetime/date.
_DATETIME_READS = frozenset({"now", "utcnow", "today"})

# D103: OS-entropy draws.
_UUID_ENTROPY = frozenset({"uuid1", "uuid4"})

# D302: filesystem-order producers.
_FS_LISTING = frozenset({"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"})

# Consumers that erase iteration order: anything inside their argument
# list may iterate sets freely.
_ORDER_NEUTRAL_CALLS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

# Consumers that *preserve* iteration order — a set flowing into one of
# these leaks hash order into sim state.
_ORDER_SENSITIVE_CALLS = frozenset({"enumerate", "iter", "list", "reversed", "tuple"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = frozenset(
    {"difference", "intersection", "symmetric_difference", "union"}
)


def audit_module(
    tree: ast.Module, path: str, config: LintConfig, module_name: str
) -> List[Violation]:
    """All raw violations in one parsed module, unsorted."""
    auditor = _Auditor(path, config, module_name)
    auditor.scan(tree)
    return auditor.violations


class _Auditor:
    def __init__(self, path: str, config: LintConfig, module_name: str) -> None:
        self.path = path
        self.config = config
        self.module_name = module_name
        self.simpath = config.is_simpath(path)
        self.set_returning = frozenset(config.set_returning)
        self.violations: List[Violation] = []
        # import-alias tables: local name -> canonical module name
        self.module_aliases: Dict[str, str] = {}
        # from-imported names: local name -> (module, original name)
        self.from_imports: Dict[str, tuple] = {}
        self.has_star_import = False
        # stack of per-scope {name: is_set_valued}
        self.scopes: List[Dict[str, bool]] = [{}]
        # >0 while inside an order-neutral consumer's arguments
        self.neutral = 0

    # ------------------------------------------------------------- helpers

    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _module_of(self, node: ast.expr) -> Optional[str]:
        """Canonical module name a Name node refers to, if imported."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    def _set_valued(self, node: ast.expr) -> bool:
        """Syntactic judgement: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            origin = self.from_imports.get(node.id)
            if origin is not None:
                return False
            for scope in reversed(self.scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in {"set", "frozenset"}:
                    return True
                if func.id in self.set_returning:
                    return True
                origin = self.from_imports.get(func.id)
                if origin is not None and origin[1] in self.set_returning:
                    return True
            if isinstance(func, ast.Attribute):
                if func.attr in {"union", "intersection", "difference",
                                 "symmetric_difference"} and self._set_valued(func.value):
                    return True
                if func.attr in self.set_returning:
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._set_valued(node.left) or self._set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self._set_valued(node.body) or self._set_valued(node.orelse)
        return False

    def _is_set_annotation(self, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
        if isinstance(target, ast.Name):
            return target.id in {
                "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
            }
        return False

    def _describe(self, node: ast.expr) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.11
            return "expression"
        return text if len(text) <= 40 else text[:37] + "..."

    # --------------------------------------------------------------- scan

    def scan(self, tree: ast.Module) -> None:
        self._module_hygiene(tree)
        for node in tree.body:
            self._walk(node)

    # -------------------------------------------------- D4xx: __all__

    def _module_hygiene(self, tree: ast.Module) -> None:
        bindings = self._top_level_bindings(tree)
        exported = self._find_all(tree)
        if exported is None:
            if self._needs_all(tree):
                self.flag(
                    "D403",
                    tree.body[0] if tree.body else tree,
                    "module defines a public surface but no __all__",
                )
            return
        all_node, names = exported
        if names is None:
            return  # dynamically built __all__; out of static reach
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                self.flag("D402", all_node, f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name == "__version__":
                continue  # dunder assignments are collected, but be lenient
            if not self.has_star_import and name not in bindings:
                self.flag(
                    "D401",
                    all_node,
                    f"__all__ names {name!r} but the module never binds it",
                )

    def _top_level_bindings(self, tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        self.has_star_import = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(_names_in_target(target))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING / fallback-import blocks bind names too.
                for child in ast.walk(node):
                    if isinstance(child, (ast.Import, ast.ImportFrom)):
                        for alias in child.names:
                            if alias.name != "*":
                                bound.add(alias.asname or alias.name.split(".")[0])
                    elif isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        bound.add(child.name)
                    elif isinstance(child, ast.Assign):
                        for target in child.targets:
                            bound.update(_names_in_target(target))
        return bound

    def _find_all(self, tree: ast.Module):
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in node.value.elts
                ):
                    return node, [el.value for el in node.value.elts]
                return node, None
        return None

    def _needs_all(self, tree: ast.Module) -> bool:
        if self.module_name.rpartition(".")[2] in {"__main__", "conftest", "setup"}:
            return False
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
            for node in tree.body
        )

    # ------------------------------------------------------------ walking

    def _walk(self, node: ast.AST) -> None:
        handler = getattr(self, f"_on_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self._generic(node)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    # imports ----------------------------------------------------------

    def _on_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self.module_aliases[alias.asname or root] = alias.name

    def _on_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.from_imports[local] = (module, alias.name)
            if module == "random" and alias.name in _AMBIENT_RANDOM:
                self.flag(
                    "D104",
                    node,
                    f"from random import {alias.name} pulls the shared ambient "
                    "generator into the namespace",
                )
            elif module == "time" and alias.name in (_WALL_CLOCK | _WALL_TIMER):
                self.flag(
                    "D204",
                    node,
                    f"from time import {alias.name} imports a wall-clock read",
                )
            elif module == "secrets" or (module == "os" and alias.name == "urandom"):
                self.flag(
                    "D103",
                    node,
                    f"from {module} import {alias.name} imports an OS entropy source",
                )
            elif module == "uuid" and alias.name in _UUID_ENTROPY:
                self.flag(
                    "D103",
                    node,
                    f"from uuid import {alias.name} imports an OS entropy source",
                )

    # scopes -----------------------------------------------------------

    def _on_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def _on_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        scope: Dict[str, bool] = {}
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if self._is_set_annotation(arg.annotation):
                scope[arg.arg] = True
        self.scopes.append(scope)
        for child in ast.iter_child_nodes(node):
            self._walk(child)
        self.scopes.pop()

    def _on_Assign(self, node: ast.Assign) -> None:
        self._walk(node.value)
        is_set = self._set_valued(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scopes[-1][target.id] = is_set
            else:
                self._walk(target)

    def _on_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._walk(node.value)
        if isinstance(node.target, ast.Name):
            self.scopes[-1][node.target.id] = self._is_set_annotation(
                node.annotation
            ) or (node.value is not None and self._set_valued(node.value))

    # expressions ------------------------------------------------------

    def _on_Attribute(self, node: ast.Attribute) -> None:
        module = self._module_of(node.value)
        if module == "random":
            if node.attr in _AMBIENT_RANDOM:
                self.flag(
                    "D101",
                    node,
                    f"random.{node.attr} uses the shared ambient generator",
                )
        elif module == "time":
            if node.attr in _WALL_CLOCK:
                self.flag("D201", node, f"time.{node.attr} reads the wall clock")
            elif node.attr in _WALL_TIMER:
                self.flag("D202", node, f"time.{node.attr} reads a wall-clock timer")
        elif module == "os" and node.attr == "urandom":
            self.flag("D103", node, "os.urandom reads OS entropy")
        elif module == "secrets":
            self.flag("D103", node, f"secrets.{node.attr} reads OS entropy")
        elif module == "uuid" and node.attr in _UUID_ENTROPY:
            self.flag("D103", node, f"uuid.{node.attr} draws OS entropy")
        self._generic(node)

    def _on_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_call_target(node, func)
        neutral_call = (
            isinstance(func, ast.Name)
            and func.id in _ORDER_NEUTRAL_CALLS
            and func.id not in self.from_imports
        )
        # Iteration-order sensitive consumers taking a set argument.
        if not neutral_call and self.neutral == 0 and self.simpath:
            sensitive = (
                isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS
            ) or (isinstance(func, ast.Attribute) and func.attr == "join")
            if sensitive:
                for arg in node.args:
                    if self._set_valued(arg):
                        self.flag(
                            "D301",
                            arg,
                            f"{self._describe(node)} materialises a set in "
                            "hash order",
                        )
        self._walk(func)
        if neutral_call:
            self.neutral += 1
        for arg in node.args:
            self._walk(arg)
        for keyword in node.keywords:
            self._walk(keyword.value)
        if neutral_call:
            self.neutral -= 1

    def _check_call_target(self, node: ast.Call, func: ast.expr) -> None:
        # Unseeded Random() / SystemRandom, by module attribute or import.
        name: Optional[str] = None
        if isinstance(func, ast.Attribute) and self._module_of(func.value) == "random":
            name = func.attr
        elif isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None and origin[0] == "random":
                name = origin[1]
        if name == "Random" and not node.args and not node.keywords:
            self.flag(
                "D102",
                node,
                "random.Random() without a seed falls back to OS entropy",
            )
        elif name == "SystemRandom":
            self.flag("D103", node, "random.SystemRandom draws OS entropy")

        # Wall-clock / entropy calls through from-imported aliases.
        if isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None:
                module, original = origin
                if module == "time" and original in _WALL_CLOCK:
                    self.flag("D201", node, f"{func.id}() reads the wall clock")
                elif module == "time" and original in _WALL_TIMER:
                    self.flag("D202", node, f"{func.id}() reads a wall-clock timer")
                elif module == "uuid" and original in _UUID_ENTROPY:
                    self.flag("D103", node, f"{func.id}() draws OS entropy")
                elif module == "os" and original == "urandom":
                    self.flag("D103", node, f"{func.id}() reads OS entropy")
                elif module == "secrets":
                    self.flag("D103", node, f"{func.id}() reads OS entropy")

        # datetime.now()/utcnow()/today().
        if isinstance(func, ast.Attribute) and func.attr in _DATETIME_READS:
            base = func.value
            is_datetime = False
            if isinstance(base, ast.Name):
                origin = self.from_imports.get(base.id)
                is_datetime = (
                    origin is not None
                    and origin[0] == "datetime"
                    and origin[1] in {"date", "datetime"}
                ) or self._module_of(base) == "datetime"
            elif isinstance(base, ast.Attribute):
                is_datetime = (
                    self._module_of(base.value) == "datetime"
                    and base.attr in {"date", "datetime"}
                )
            if is_datetime:
                self.flag(
                    "D203",
                    node,
                    f"{self._describe(func)}() reads the wall clock",
                )

        # Filesystem-order producers (outside a neutral consumer).
        if self.neutral == 0:
            listing: Optional[str] = None
            if isinstance(func, ast.Attribute) and func.attr in _FS_LISTING:
                base_module = self._module_of(func.value)
                if base_module in {"os", "glob"} or func.attr in {
                    "iterdir", "rglob",
                } or (func.attr == "glob" and base_module != "glob"):
                    listing = self._describe(func)
                elif base_module is None and func.attr in {"listdir", "iglob"}:
                    listing = self._describe(func)
            elif isinstance(func, ast.Name):
                origin = self.from_imports.get(func.id)
                if origin is not None and origin[0] in {"os", "glob"} and (
                    origin[1] in _FS_LISTING
                ):
                    listing = func.id
            if listing is not None:
                self.flag(
                    "D302",
                    node,
                    f"{listing} yields entries in filesystem order; wrap in sorted()",
                )

        # id()/hash() ordering hazards, sim-path only.
        if self.simpath and isinstance(func, ast.Name) and func.id in {"id", "hash"}:
            if func.id not in self.from_imports:
                rule = "D303" if func.id == "id" else "D304"
                self.flag(
                    rule,
                    node,
                    f"{func.id}() is process-dependent"
                    + (" (salted per run for str/bytes)" if func.id == "hash" else ""),
                )

    def _on_For(self, node: ast.For) -> None:
        if self.simpath and self.neutral == 0 and self._set_valued(node.iter):
            self.flag(
                "D301",
                node.iter,
                f"iterating {self._describe(node.iter)} visits elements in "
                "hash order",
            )
        self._generic(node)

    def _on_comprehension_holder(self, node) -> None:
        """Shared D301 check for list/dict/generator comprehensions.

        Set comprehensions are order-neutral by construction and handled
        separately. A generator feeding an order-neutral call is already
        exempted by the ``neutral`` counter at the call site.
        """
        if self.simpath and self.neutral == 0:
            for comp in node.generators:
                if self._set_valued(comp.iter):
                    self.flag(
                        "D301",
                        comp.iter,
                        f"comprehension over {self._describe(comp.iter)} runs in "
                        "hash order",
                    )
        self._generic(node)

    def _on_ListComp(self, node: ast.ListComp) -> None:
        self._on_comprehension_holder(node)

    def _on_DictComp(self, node: ast.DictComp) -> None:
        self._on_comprehension_holder(node)

    def _on_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._on_comprehension_holder(node)

    def _on_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-neutral all the way down.
        self.neutral += 1
        self._generic(node)
        self.neutral -= 1


def _names_in_target(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_names_in_target(element))
    return names

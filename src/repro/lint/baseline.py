"""Baseline bookkeeping: absorbing grandfathered violations, auditing
stale entries, and rewriting the committed policy file.

The baseline is a *budget*, not a blanket: each entry tolerates at most
``max`` violations of one rule (or family) under one path prefix, and an
entry that matches nothing is reported as stale so the file only ever
shrinks. ``--update-baseline`` regenerates entries from the current
violations with placeholder justifications — committing one unedited is
a review smell by design.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.lint.config import BaselineEntry, LintConfig, reset_baseline
from repro.lint.rules import Violation

__all__ = ["apply_baseline", "render_policy_toml"]


def apply_baseline(
    violations: Sequence[Violation], config: LintConfig
) -> Tuple[List[Violation], List[Violation], List[BaselineEntry]]:
    """Split ``violations`` into (remaining, absorbed) and return the
    stale baseline entries that matched nothing.

    Violations are matched in sorted order against entries in file
    order, each entry absorbing at most its ``max`` count — so the same
    tree and policy always produce the same split.
    """
    reset_baseline(config)
    remaining: List[Violation] = []
    absorbed: List[Violation] = []
    for violation in sorted(violations, key=Violation.sort_key):
        entry = _matching_entry(violation, config)
        if entry is not None:
            entry.matched += 1
            absorbed.append(violation)
        else:
            remaining.append(violation)
    stale = [entry for entry in config.baseline if entry.matched == 0]
    return remaining, absorbed, stale


def _matching_entry(violation: Violation, config: LintConfig):
    for entry in config.baseline:
        if entry.matches(violation.rule, violation.path):
            return entry
    return None


def render_policy_toml(config: LintConfig, baseline: Sequence[BaselineEntry]) -> str:
    """Serialise a policy file with ``baseline`` replacing the current
    entries. Hand-rolled like the regression-spec exporter: tomllib only
    reads, and the output must be byte-stable for review diffs."""
    lines: List[str] = [
        "# repro-lint policy: sim-path classification, permanent allowlist,",
        "# and the violation baseline. See DESIGN.md, \"Determinism contract",
        "# & static analysis\".",
        "",
        "schema = 1",
        "",
        "[lint]",
        f"simpath = {_string_array(config.simpath)}",
        f"set_returning = {_string_array(config.set_returning)}",
        f"node_collections = {_string_array(config.node_collections)}",
        f"node_returning = {_string_array(config.node_returning)}",
        f"node_state = {_string_array(config.node_state)}",
        f"payload_attrs = {_string_array(config.payload_attrs)}",
        "",
        "[lint.protocol]",
        f"request_reply = {_pair_array(config.request_reply)}",
    ]
    for entry in config.allow:
        lines += [
            "",
            "[[allow]]",
            f"rule = {_quote(entry.rule)}",
            f"path = {_quote(entry.path)}",
            f"justification = {_quote(entry.justification)}",
        ]
    for entry in baseline:
        lines += [
            "",
            "[[baseline]]",
            f"rule = {_quote(entry.rule)}",
            f"path = {_quote(entry.path)}",
            f"max = {entry.max_count}",
            f"justification = {_quote(entry.justification)}",
        ]
    return "\n".join(lines) + "\n"


def _quote(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _string_array(values: Sequence[str]) -> str:
    if not values:
        return "[]"
    inner = ",\n    ".join(_quote(v) for v in values)
    return f"[\n    {inner},\n]"


def _pair_array(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return "[]"
    inner = ",\n    ".join(
        f"[{_quote(a)}, {_quote(b)}]" for a, b in pairs
    )
    return f"[\n    {inner},\n]"

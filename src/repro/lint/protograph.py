"""Static protocol-graph model.

The protocol analyzer (:mod:`repro.lint.protocol`) extracts one
:class:`ProtocolGraph` per lint run: message dataclasses, send sites,
and handler (un)registrations, resolved across every sim-path module in
the linted tree. The graph is both the substrate the P-rules judge and
a first-class artifact — ``repro protocol graph`` serialises it, and the
serialisations are deterministic byte-for-byte: every collection is
emitted in sorted order, so two walks of the same tree produce identical
JSON/DOT output (the CI gate byte-compares them).

Endpoints are the classes that own protocol behaviour: a service or node
subclass that sends a message or registers a handler. Module-level
sends (rare; test fixtures mostly) use the pseudo-endpoint
``<module>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "FieldDef",
    "MessageDef",
    "SendSite",
    "HandlerReg",
    "HandlerUnreg",
    "ProtocolGraph",
]

MODULE_ENDPOINT = "<module>"


@dataclass(frozen=True)
class FieldDef:
    """One dataclass field of a message: name, annotation source text,
    and the line it is declared on (the P203 anchor)."""

    name: str
    annotation: str
    line: int


@dataclass(frozen=True)
class MessageDef:
    """One message class: a dataclass that participates in the protocol.

    ``attrs`` is every name an instance legally resolves — fields plus
    anything bound in the class body (properties, methods) — so P201
    does not flag reads of ``msg.msg_id``-style computed properties.
    """

    name: str
    path: str
    line: int
    frozen: bool
    fields: Tuple[FieldDef, ...]
    attrs: Tuple[str, ...]

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)


@dataclass(frozen=True)
class SendSite:
    """One resolved send: ``endpoint`` (class) sends ``message`` from
    ``function``."""

    message: str
    endpoint: str
    function: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class HandlerReg:
    """One ``register_handler(Message, handler)`` call site."""

    message: str
    endpoint: str
    handler: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class HandlerUnreg:
    """One ``unregister_handler(Message)`` call site."""

    message: str
    endpoint: str
    function: str
    path: str
    line: int
    col: int


@dataclass
class ProtocolGraph:
    """The whole-program message graph of one linted tree.

    ``unresolved`` lists send sites whose payload the resolver could not
    pin to a message class (a generic forwarder like ``Node.send``
    relaying its own parameter); they are reported, never silently
    dropped, so the artifact is honest about its blind spots.
    """

    messages: Dict[str, MessageDef] = field(default_factory=dict)
    sends: List[SendSite] = field(default_factory=list)
    registrations: List[HandlerReg] = field(default_factory=list)
    unregistrations: List[HandlerUnreg] = field(default_factory=list)
    unresolved: List[SendSite] = field(default_factory=list)

    # ------------------------------------------------------------ queries

    def sends_of(self, message: str) -> List[SendSite]:
        return [s for s in self.sends if s.message == message]

    def registrations_of(self, message: str) -> List[HandlerReg]:
        return [r for r in self.registrations if r.message == message]

    def endpoints(self) -> List[str]:
        names = {s.endpoint for s in self.sends}
        names.update(r.endpoint for r in self.registrations)
        names.update(u.endpoint for u in self.unregistrations)
        names.update(s.endpoint for s in self.unresolved)
        return sorted(names)

    def send_edges(self) -> Dict[Tuple[str, str], int]:
        """(endpoint, message) -> number of static send sites."""
        edges: Dict[Tuple[str, str], int] = {}
        for site in self.sends:
            key = (site.endpoint, site.message)
            edges[key] = edges.get(key, 0) + 1
        return edges

    def handle_edges(self) -> Dict[Tuple[str, str], List[str]]:
        """(endpoint, message) -> sorted handler names registered."""
        edges: Dict[Tuple[str, str], List[str]] = {}
        for reg in self.registrations:
            key = (reg.endpoint, reg.message)
            edges.setdefault(key, [])
            if reg.handler and reg.handler not in edges[key]:
                edges[key].append(reg.handler)
        return {key: sorted(names) for key, names in edges.items()}

    # ---------------------------------------------------------- artifacts

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready view with every collection in sorted order."""
        messages = [
            {
                "name": m.name,
                "path": m.path,
                "line": m.line,
                "frozen": m.frozen,
                "fields": [
                    {"name": f.name, "annotation": f.annotation}
                    for f in m.fields
                ],
            }
            for _, m in sorted(self.messages.items())
        ]
        sends = [
            {"from": endpoint, "message": message, "count": count}
            for (endpoint, message), count in sorted(self.send_edges().items())
        ]
        handles = [
            {"message": message, "to": endpoint, "handlers": handlers}
            for (endpoint, message), handlers in sorted(
                self.handle_edges().items()
            )
        ]
        unresolved = [
            {
                "endpoint": endpoint,
                "function": function,
                "path": path,
                "line": line,
            }
            for (path, line, endpoint, function) in sorted(
                (s.path, s.line, s.endpoint, s.function)
                for s in self.unresolved
            )
        ]
        return {
            "schema": 1,
            "messages": messages,
            "endpoints": self.endpoints(),
            "edges": {"sends": sends, "handles": handles},
            "unresolved_sends": unresolved,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        """A Graphviz digraph: endpoints are boxes, messages ellipses;
        ``endpoint -> message`` edges are sends, ``message -> endpoint``
        edges are handler registrations."""
        lines = [
            "digraph protocol {",
            "  rankdir=LR;",
            '  node [fontname="monospace"];',
        ]
        for name in sorted(self.messages):
            lines.append(f'  "msg:{name}" [label="{name}", shape=ellipse];')
        for name in self.endpoints():
            lines.append(f'  "ep:{name}" [label="{name}", shape=box];')
        for (endpoint, message), count in sorted(self.send_edges().items()):
            label = "sends" if count == 1 else f"sends x{count}"
            lines.append(
                f'  "ep:{endpoint}" -> "msg:{message}" [label="{label}"];'
            )
        for (endpoint, message), handlers in sorted(
            self.handle_edges().items()
        ):
            label = ",".join(handlers) if handlers else "handles"
            lines.append(
                f'  "msg:{message}" -> "ep:{endpoint}" [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

"""The runtime half of the protocol-flow analyzer.

The static pass (:mod:`repro.lint.protocol`) proves which
``(endpoint, message)`` edges *exist* in the source; this module
measures which of them a scenario actually *exercises*. While
:func:`protocol_coverage` is armed, every :meth:`Network._deliver
<repro.sim.network.Network._deliver>` call is observed: a **delivered**
count is recorded for the destination node's class and the message
type, and a **handled** count for the handler's owning class when the
destination is alive and has a handler registered for the type. After
the run, :func:`unexercised_edges` diffs the static handle-edges
against the runtime handled keys — the edges no message ever travelled.

Design constraints, in order:

* **Trajectory-neutral.** The wrapper only reads attributes the real
  delivery path reads anyway (``_delivery``, ``alive``, ``_handlers``)
  and bumps plain module-level dicts — no events added, no RNG, no
  wall clock, no return values changed — so a covered run byte-compares
  against a plain run. The determinism CI matrix enforces exactly that.
* **Class-keyed, not instance-keyed.** Counters key on
  ``(node class name, message type name)`` — the same vocabulary as the
  static graph's endpoints — so runtime coverage and static edges diff
  directly. Handler ownership resolves through the bound method
  (``handler.__self__``), matching the class whose ``start()`` called
  ``register_handler``.
* **Re-entrant, counters outlive the guard.** Nested activations patch
  once and restore once, mirroring
  :func:`~repro.lint.isolation.isolation_guard`; counters reset on
  outermost entry and stay readable after exit so the CLI can report
  them once the scenario completes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

__all__ = [
    "coverage_snapshot",
    "protocol_coverage",
    "protocol_coverage_active",
    "unexercised_edges",
]

_depth = 0
_saved: Dict[str, Any] = {}
# (node class name, message type name) -> count
_delivered: Dict[Tuple[str, str], int] = {}
# (handler owner class name, message type name) -> count
_handled: Dict[Tuple[str, str], int] = {}


def protocol_coverage_active() -> bool:
    """Is a :func:`protocol_coverage` guard currently armed?"""
    return _depth > 0


def _covered_deliver(self, src: int, dst: int, msg: Any, received_kind) -> None:
    """``Network._deliver`` with edge accounting armed."""
    deliver = self._delivery.get(dst)
    if deliver is not None:
        owner = getattr(deliver, "__self__", None)
        if owner is not None:
            kind = type(msg).__name__
            key = (type(owner).__name__, kind)
            _delivered[key] = _delivered.get(key, 0) + 1
            if owner.alive:
                handler = owner._handlers.get(type(msg))
                if handler is not None:
                    bound = getattr(handler, "__self__", owner)
                    hkey = (type(bound).__name__, kind)
                    _handled[hkey] = _handled.get(hkey, 0) + 1
    _saved["_deliver"](self, src, dst, msg, received_kind)


@contextmanager
def protocol_coverage() -> Iterator[None]:
    """Arm protocol-edge accounting for the duration of the block.

    Patches :class:`~repro.sim.network.Network` at the *class* level:
    traced deliveries delegate to ``_deliver`` on ``self`` and are
    covered too. Counters are cleared on outermost entry and persist
    after exit — read them with :func:`coverage_snapshot`.
    """
    global _depth
    from repro.sim.network import Network  # deferred: keep lint import light

    if _depth == 0:
        _delivered.clear()
        _handled.clear()
        _saved["_deliver"] = Network._deliver
        Network._deliver = _covered_deliver
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            Network._deliver = _saved["_deliver"]
            _saved.clear()


def coverage_snapshot() -> Dict[str, Dict[str, int]]:
    """The counters of the most recent (or current) covered run, in
    sorted, JSON-ready form: ``{"delivered": {"Class/Message": n, …},
    "handled": {…}}``."""
    return {
        "delivered": {
            f"{cls}/{kind}": count
            for (cls, kind), count in sorted(_delivered.items())
        },
        "handled": {
            f"{cls}/{kind}": count
            for (cls, kind), count in sorted(_handled.items())
        },
    }


def unexercised_edges(graph) -> List[Tuple[str, str, List[str]]]:
    """Static handle-edges the covered run never exercised.

    ``graph`` is a :class:`~repro.lint.protograph.ProtocolGraph`; the
    result is a sorted list of ``(endpoint, message, handlers)`` for
    every statically-registered edge with no runtime handled count.
    Static endpoints name the class that *registers* the handler (a
    service like ``RequestHandler``), which is exactly the class runtime
    handler ownership resolves to.
    """
    missing: List[Tuple[str, str, List[str]]] = []
    for (endpoint, message), handlers in sorted(graph.handle_edges().items()):
        if _handled.get((endpoint, message), 0) == 0:
            missing.append((endpoint, message, handlers))
    return missing

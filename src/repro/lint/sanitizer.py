"""The runtime half of the determinism contract.

The static rules (D1xx/D2xx) prove no *source line* reaches for ambient
randomness or the wall clock; :func:`determinism_guard` proves no *code
path* does at run time, including paths the linter cannot see (C
extensions excepted, dynamic dispatch included). While the guard is
active, every module-level :mod:`random` function and ``time.time`` /
``time.time_ns`` raises :class:`~repro.errors.DeterminismError` naming
the offender and the D-rule it corresponds to.

What is deliberately *not* patched:

* ``random.Random`` instances — the seeded streams every simulation
  component draws from are bound methods of their own instance and
  never touch the module-level functions. That asymmetry is the whole
  point: sanctioned randomness keeps working, ambient randomness trips.
* ``time.perf_counter`` and friends — the opt-in hotspot profiler and
  the flight recorder's wall-phase timing are legitimate, baselined
  wall-clock users that may run *under* the guard precisely because
  their readings are provenance, never sim state.

The guard is re-entrant (nested activations patch once, restore once)
and exception-safe. ``scenarios run --sanitize`` and the determinism CI
matrix run entire scenarios under it; byte-identical summaries with and
without the guard prove it is trajectory-neutral.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.errors import DeterminismError

__all__ = ["determinism_guard", "guard_active"]

# Module-level random functions that consult the hidden shared instance
# (or reseed it). Matches the linter's D101 list.
_RANDOM_FUNCS = (
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
)

# Wall-clock reads (D201). Timer functions (perf_counter, monotonic …)
# stay callable — see the module docstring.
_TIME_FUNCS = ("time", "time_ns")

_depth = 0
_saved_random: Dict[str, object] = {}
_saved_time: Dict[str, object] = {}


def guard_active() -> bool:
    """Is a :func:`determinism_guard` currently armed?"""
    return _depth > 0


def _random_tripwire(name: str):
    def tripwire(*args, **kwargs):
        raise DeterminismError(
            f"ambient random.{name}() called inside a sanitized scenario run "
            "— draw from the simulation's RngRegistry stream instead "
            "(repro lint rule D101)"
        )

    tripwire.__name__ = name
    tripwire.__qualname__ = f"determinism_guard.random.{name}"
    return tripwire


def _time_tripwire(name: str):
    def tripwire(*args, **kwargs):
        raise DeterminismError(
            f"time.{name}() called inside a sanitized scenario run — "
            "simulated time is sim.now / node.now (repro lint rule D201)"
        )

    tripwire.__name__ = name
    tripwire.__qualname__ = f"determinism_guard.time.{name}"
    return tripwire


@contextmanager
def determinism_guard() -> Iterator[None]:
    """Arm the runtime tripwires for the duration of the block."""
    global _depth
    if _depth == 0:
        for name in _RANDOM_FUNCS:
            original = getattr(random, name, None)
            if original is not None:
                _saved_random[name] = original
                setattr(random, name, _random_tripwire(name))
        for name in _TIME_FUNCS:
            _saved_time[name] = getattr(time, name)
            setattr(time, name, _time_tripwire(name))
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            for name, original in _saved_random.items():
                setattr(random, name, original)
            for name, original in _saved_time.items():
                setattr(time, name, original)
            _saved_random.clear()
            _saved_time.clear()

"""Rendering lint results: terminal text and machine-readable JSON.

The JSON form is canonical — sorted keys, violations in path/line
order — so CI can byte-compare two runs of the same tree the same way
it byte-compares scenario summaries.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult
from repro.lint.rules import CATALOG

__all__ = ["JSON_SCHEMA", "format_text", "format_json"]

JSON_SCHEMA = 1


def format_text(result: LintResult, verbose: bool = False) -> str:
    """Human-facing report: one line per violation plus advice and a
    closing summary line."""
    lines: List[str] = []
    for error in result.errors:
        lines.append(f"error: {error}")
    for violation in result.violations:
        lines.append(violation.render())
        rule = CATALOG.get(violation.rule)
        if rule is not None:
            lines.append(f"    [{rule.title}] {rule.advice}")
    if verbose:
        for violation in result.suppressed:
            lines.append(f"suppressed: {violation.render()}")
        for violation in result.allowed:
            lines.append(f"allowed: {violation.render()}")
        for violation in result.baselined:
            lines.append(f"baselined: {violation.render()}")
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry.rule} @ {entry.path} "
            "matched nothing — delete it"
        )
    status = "clean" if result.clean else f"{len(result.violations)} violation(s)"
    lines.append(
        f"{status}: {len(result.files)} file(s) checked, "
        f"{len(result.suppressed)} suppressed, {len(result.allowed)} allowed, "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Canonical JSON: sorted keys, stable ordering, trailing newline
    left to the caller."""
    payload: Dict[str, object] = {
        "schema": JSON_SCHEMA,
        "clean": result.clean,
        "files_checked": len(result.files),
        "violations": [v.to_dict() for v in result.violations],
        "counts": {
            "violations": len(result.violations),
            "suppressed": len(result.suppressed),
            "allowed": len(result.allowed),
            "baselined": len(result.baselined),
            "by_rule": result.rule_counts(),
        },
        "stale_baseline": [entry.to_dict() for entry in result.stale_baseline],
        "errors": list(result.errors),
    }
    return json.dumps(payload, sort_keys=True)

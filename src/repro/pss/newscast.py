"""Newscast: a robust gossip membership protocol.

The second PSS the paper cites (reference [10]). Simpler than Cyclon:
each round a node picks a *random* neighbour, both exchange their full
views plus a fresh self-descriptor, and each keeps the ``view_size``
*freshest* entries of the union.

Newscast converges very fast and is extremely robust, at the cost of a
less uniform in-degree distribution than Cyclon — exactly the trade-off
bench A6 (`bench_pss_quality`) measures.

Here descriptor ``age`` plays the role of Newscast's inverted timestamp:
lower age == fresher news.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.pss.base import PeerSamplingService
from repro.pss.view import NodeDescriptor, PartialView

__all__ = ["NewscastService", "NewsExchange", "NewsReply"]


@dataclass(frozen=True)
class NewsExchange:
    """Full-view push from the round initiator."""

    descriptors: Tuple[NodeDescriptor, ...]


@dataclass(frozen=True)
class NewsReply:
    """Full-view answer from the passive peer."""

    descriptors: Tuple[NodeDescriptor, ...]


class NewscastService(PeerSamplingService):
    """Newscast PSS as a node service."""

    name = "newscast"

    def __init__(self, view_size: int = 20, period: float = 1.0) -> None:
        super().__init__(view_size, period)

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(NewsExchange, self._on_exchange)
        node.register_handler(NewsReply, self._on_reply)
        self._timer = node.every(self.period, self._round)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(NewsExchange)
        node.unregister_handler(NewsReply)

    # -------------------------------------------------------------- rounds

    def _payload(self) -> Tuple[NodeDescriptor, ...]:
        node = self.node
        assert node is not None
        return tuple([NodeDescriptor(node.id, 0)] + self.view.descriptors())

    def _round(self) -> None:
        node = self.node
        assert node is not None
        self.rounds += 1
        self.view.increase_ages()
        peer = self.view.random_id(node.rng)
        if peer is None:
            return
        node.send(peer, NewsExchange(self._payload()))

    def _keep_freshest(self, received: Tuple[NodeDescriptor, ...]) -> None:
        """Merge union of views, keeping the ``view_size`` freshest entries.

        Ties at the cut-off age are broken randomly — a deterministic
        id-ordered cut would systematically favour low ids and skew the
        overlay's in-degree distribution.
        """
        node = self.node
        assert node is not None
        pool = {}
        for descriptor in list(self.view.descriptors()) + list(received):
            if descriptor.node_id == node.id:
                continue
            current = pool.get(descriptor.node_id)
            if current is None or descriptor.age < current.age:
                pool[descriptor.node_id] = descriptor
        ordered = sorted(pool.values(), key=lambda d: (d.age, d.node_id))
        freshest = sorted(ordered, key=lambda d: (d.age, node.rng.random()))[: self.view_size]
        self.view = PartialView(self.view_size, freshest)

    def _on_exchange(self, msg: NewsExchange, src: int) -> None:
        node = self.node
        assert node is not None
        node.send(src, NewsReply(self._payload()))
        self._keep_freshest(msg.descriptors)

    def _on_reply(self, msg: NewsReply, src: int) -> None:
        self._keep_freshest(msg.descriptors)

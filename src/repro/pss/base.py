"""Peer Sampling Service interface.

Every PSS implementation (Cyclon, Newscast) exposes the same small API so
that the protocols layered on top — slicing, dissemination, DATAFLASKS
itself — are implementation-agnostic, matching the paper's architecture
where the Peer Sampling Service is one pluggable box (Figure 2).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.pss.view import NodeDescriptor, PartialView
from repro.sim.node import Service

__all__ = ["PeerSamplingService"]


class PeerSamplingService(Service):
    """Abstract PSS: a continuously refreshed random partial view."""

    name = "pss"

    def __init__(self, view_size: int, period: float) -> None:
        super().__init__()
        self.view_size = view_size
        self.period = period
        self.view = PartialView(view_size)
        self.rounds = 0

    # -------------------------------------------------------------- queries

    def peers(self) -> List[int]:
        """Current neighbour ids (a uniformly random sample at convergence)."""
        return self.view.ids()

    def random_peer(self, rng: Optional[random.Random] = None) -> Optional[int]:
        """One random neighbour id, or ``None`` if the view is empty."""
        assert self.node is not None, "service not attached"
        return self.view.random_id(rng or self.node.rng)

    def sample(self, count: int, rng: Optional[random.Random] = None) -> List[int]:
        """Up to ``count`` distinct random neighbour ids."""
        assert self.node is not None, "service not attached"
        return self.view.sample_ids(rng or self.node.rng, count)

    # ------------------------------------------------------------ bootstrap

    def bootstrap(self, seeds: List[int]) -> None:
        """Seed the view with initial contacts (excluding ourselves)."""
        assert self.node is not None, "service not attached"
        for node_id in seeds:
            if node_id != self.node.id:
                self.view.add(NodeDescriptor(node_id, age=0))

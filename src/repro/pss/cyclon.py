"""Cyclon: inexpensive membership management for unstructured overlays.

Implements the enhanced shuffle of Voulgaris, Gavidia & van Steen (JNSM
2005), the Peer Sampling Service the paper cites as reference [9]:

1. Each period, increase the age of all neighbours and pick the *oldest*
   neighbour ``Q``.
2. Select ``shuffle_length - 1`` other random neighbours, add a fresh
   descriptor of ourselves, and send the batch to ``Q``.
3. ``Q`` replies with a random batch of its own neighbours and merges our
   batch, preferring received entries over the ones it sent.
4. On receiving the reply, merge symmetrically; the entry for ``Q`` was
   discarded in step 2 (it is being refreshed by the exchange itself).

Shuffling with the oldest neighbour bounds how long a dead node can linger
in views, which is what gives Cyclon its churn resilience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.pss.view import NodeDescriptor

__all__ = ["CyclonService", "ShuffleRequest", "ShuffleReply"]


@dataclass(frozen=True)
class ShuffleRequest:
    """A shuffle offer: a batch of descriptors including the sender's own."""

    descriptors: Tuple[NodeDescriptor, ...]


@dataclass(frozen=True)
class ShuffleReply:
    """The symmetric answer to a :class:`ShuffleRequest`."""

    descriptors: Tuple[NodeDescriptor, ...]
    in_response_to: Tuple[NodeDescriptor, ...]


class CyclonService(PeerSamplingService):
    """Cyclon PSS as a node service.

    :param view_size: partial view capacity (paper-typical: 20–50).
    :param shuffle_length: descriptors exchanged per shuffle (≤ view_size).
    :param period: seconds between shuffles.
    """

    name = "cyclon"

    def __init__(self, view_size: int = 20, shuffle_length: int = 8, period: float = 1.0) -> None:
        super().__init__(view_size, period)
        if shuffle_length <= 0 or shuffle_length > view_size:
            raise ConfigurationError("require 0 < shuffle_length <= view_size")
        self.shuffle_length = shuffle_length
        self._pending_sent: dict = {}

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(ShuffleRequest, self._on_request)
        node.register_handler(ShuffleReply, self._on_reply)
        self._timer = node.every(self.period, self._shuffle)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(ShuffleRequest)
        node.unregister_handler(ShuffleReply)

    # -------------------------------------------------------------- rounds

    def _shuffle(self) -> None:
        """Run one active shuffle round (steps 1–2 of the protocol)."""
        node = self.node
        assert node is not None
        self.rounds += 1
        self.view.increase_ages()
        oldest = self.view.oldest(rng=node.rng)
        if oldest is None:
            return
        target = oldest.node_id
        self.view.remove(target)
        batch = self.view.sample_descriptors(node.rng, self.shuffle_length - 1)
        batch = [NodeDescriptor(node.id, 0)] + batch
        self._pending_sent[target] = tuple(batch)
        node.send(target, ShuffleRequest(tuple(batch)))

    def _on_request(self, msg: ShuffleRequest, src: int) -> None:
        """Passive side: reply with a random batch, then merge (step 3)."""
        node = self.node
        assert node is not None
        reply_batch = tuple(self.view.sample_descriptors(node.rng, self.shuffle_length))
        node.send(src, ShuffleReply(reply_batch, in_response_to=msg.descriptors))
        self.view.merge(msg.descriptors, self_id=node.id, sent=reply_batch, rng=node.rng)

    def _on_reply(self, msg: ShuffleReply, src: int) -> None:
        """Active side completion: merge the reply (step 4)."""
        node = self.node
        assert node is not None
        sent = self._pending_sent.pop(src, msg.in_response_to)
        self.view.merge(msg.descriptors, self_id=node.id, sent=sent, rng=node.rng)

"""Overlay-quality diagnostics for Peer Sampling Services.

Section II of the paper rests on the PSS views being "a uniformly random
sample of nodes". These helpers quantify how close a running overlay is
to that ideal: in-degree distribution, clustering coefficient, and
connectivity — the standard metrics from the gossip-based peer sampling
literature (Jelasity et al., TOCS 2007).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

import networkx as nx

from repro.pss.base import PeerSamplingService
from repro.sim.metrics import mean, stdev
from repro.sim.node import Node

__all__ = [
    "overlay_graph",
    "indegree_distribution",
    "indegree_stats",
    "clustering_coefficient",
    "is_connected",
    "overlay_report",
]


def overlay_graph(
    nodes: Sequence[Node],
    service_cls: Type[PeerSamplingService] = PeerSamplingService,
) -> "nx.DiGraph":
    """The directed graph induced by current PSS views (alive nodes only)."""
    graph = nx.DiGraph()
    alive = [n for n in nodes if n.alive]
    for node in alive:
        graph.add_node(node.id)
    alive_ids = set(graph.nodes)
    for node in alive:
        service = node.get_service(service_cls)
        if service is None:
            continue
        for peer in service.peers():
            if peer in alive_ids:
                graph.add_edge(node.id, peer)
    return graph


def indegree_distribution(graph: "nx.DiGraph") -> Dict[int, int]:
    """Histogram: in-degree value -> number of nodes with that in-degree."""
    hist: Dict[int, int] = {}
    for _, degree in graph.in_degree():
        hist[degree] = hist.get(degree, 0) + 1
    return hist


def indegree_stats(graph: "nx.DiGraph") -> Dict[str, float]:
    """Mean/stdev/max of in-degree; a random overlay has low stdev."""
    degrees: List[int] = [d for _, d in graph.in_degree()]
    if not degrees:
        return {"mean": 0.0, "stdev": 0.0, "max": 0.0}
    return {"mean": mean(degrees), "stdev": stdev(degrees), "max": float(max(degrees))}


def clustering_coefficient(graph: "nx.DiGraph") -> float:
    """Average clustering of the undirected projection.

    For a random graph this approaches ``view_size / N``; high values mean
    the overlay has collapsed into cliques (bad for epidemic spread).
    """
    if graph.number_of_nodes() == 0:
        return 0.0
    return nx.average_clustering(graph.to_undirected())


def is_connected(graph: "nx.DiGraph") -> bool:
    """Weak connectivity — a disconnected overlay cannot disseminate."""
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_weakly_connected(graph)


def overlay_report(
    nodes: Sequence[Node],
    service_cls: Type[PeerSamplingService] = PeerSamplingService,
) -> Dict[str, float]:
    """One-call summary used by tests and bench A6."""
    graph = overlay_graph(nodes, service_cls)
    stats = indegree_stats(graph)
    return {
        "nodes": float(graph.number_of_nodes()),
        "edges": float(graph.number_of_edges()),
        "indegree_mean": stats["mean"],
        "indegree_stdev": stats["stdev"],
        "indegree_max": stats["max"],
        "clustering": clustering_coefficient(graph),
        "connected": 1.0 if is_connected(graph) else 0.0,
    }

"""Bootstrap helpers: seeding initial partial views.

A gossip overlay needs *some* initial connectivity. In deployments this
comes from a tracker or a list of well-known contacts; in the simulation
we seed each node's view with a few random other nodes, which is both
realistic (a tracker returns a random subset) and sufficient for the PSS
to converge to a random overlay within a few rounds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Type

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.sim.node import Node

__all__ = ["bootstrap_random_views", "bootstrap_node"]


def bootstrap_random_views(
    nodes: Sequence[Node],
    degree: int = 5,
    rng: Optional[random.Random] = None,
    service_cls: Type[PeerSamplingService] = PeerSamplingService,
) -> None:
    """Give every node's PSS ``degree`` random initial contacts.

    ``service_cls`` selects which attached service to seed when a node runs
    several sampling services (e.g. a global and an intra-slice one).
    """
    if degree <= 0:
        raise ConfigurationError("bootstrap degree must be positive")
    rng = rng or random.Random(0)
    ids: List[int] = [n.id for n in nodes]
    if len(ids) < 2:
        return
    for node in nodes:
        service = node.get_service(service_cls)
        if service is None:
            continue
        others = [i for i in ids if i != node.id]
        count = min(degree, len(others))
        service.bootstrap(rng.sample(others, count))


def bootstrap_node(
    node: Node,
    contacts: Sequence[int],
    service_cls: Type[PeerSamplingService] = PeerSamplingService,
) -> None:
    """Seed one (typically newly joined) node with the given contacts."""
    service = node.get_service(service_cls)
    if service is None:
        raise ConfigurationError(f"node {node.id} has no {service_cls.__name__}")
    service.bootstrap(list(contacts))

"""Partial views for gossip membership protocols.

A *partial view* is a small, bounded set of node descriptors ``(id, age)``
that gossip protocols continuously refresh. The Peer Sampling Service
(Section II of the paper) maintains these views so that "choosing a random
peer from such list is equivalent to choosing randomly from all the nodes
in the system".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError

__all__ = ["NodeDescriptor", "PartialView"]


@dataclass(frozen=True)
class NodeDescriptor:
    """A reference to a node, aged by gossip rounds.

    ``age`` counts rounds since the descriptor was created at its subject;
    older descriptors are more likely to point at dead nodes, which is why
    Cyclon shuffles with (and replaces) the oldest entries first.
    """

    node_id: int
    age: int = 0

    def aged(self, by: int = 1) -> "NodeDescriptor":
        """A copy with ``age`` increased by ``by``."""
        return NodeDescriptor(self.node_id, self.age + by)

    def fresh(self) -> "NodeDescriptor":
        """A copy with ``age`` reset to zero."""
        return NodeDescriptor(self.node_id, 0)


class PartialView:
    """A bounded set of :class:`NodeDescriptor`, at most one per node id.

    Insertion keeps the *youngest* descriptor for a given id. Eviction on
    overflow removes the oldest descriptor (ties broken deterministically
    by node id, keeping simulations reproducible).
    """

    def __init__(self, capacity: int, entries: Optional[Iterable[NodeDescriptor]] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("view capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, NodeDescriptor] = {}
        if entries:
            for descriptor in entries:
                self.add(descriptor)

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self):
        return iter(self.descriptors())

    def ids(self) -> List[int]:
        """All node ids currently in the view."""
        return list(self._entries)

    def descriptors(self) -> List[NodeDescriptor]:
        """All descriptors, sorted by (age, id) for determinism."""
        return sorted(self._entries.values(), key=lambda d: (d.age, d.node_id))

    def get(self, node_id: int) -> Optional[NodeDescriptor]:
        return self._entries.get(node_id)

    def oldest(self, rng: Optional[random.Random] = None) -> Optional[NodeDescriptor]:
        """The descriptor with the highest age.

        Ties are broken by node id when ``rng`` is omitted (deterministic,
        used for eviction) and *randomly* when ``rng`` is given — protocol
        round partners must not be biased towards particular ids, or the
        overlay grows hubs (higher in-degree for higher ids).
        """
        if not self._entries:
            return None
        if rng is None:
            return max(self._entries.values(), key=lambda d: (d.age, d.node_id))
        max_age = max(d.age for d in self._entries.values())
        candidates = sorted(
            (d for d in self._entries.values() if d.age == max_age),
            key=lambda d: d.node_id,
        )
        return rng.choice(candidates)

    def random_id(self, rng: random.Random) -> Optional[int]:
        """A uniformly random node id from the view."""
        if not self._entries:
            return None
        return rng.choice(sorted(self._entries))

    def sample_ids(self, rng: random.Random, count: int) -> List[int]:
        """Up to ``count`` distinct random ids from the view."""
        ids = sorted(self._entries)
        if count >= len(ids):
            rng.shuffle(ids)
            return ids
        return rng.sample(ids, count)

    def sample_descriptors(self, rng: random.Random, count: int) -> List[NodeDescriptor]:
        """Up to ``count`` distinct random descriptors from the view."""
        return [self._entries[i] for i in self.sample_ids(rng, count)]

    # ------------------------------------------------------------ mutation

    def add(self, descriptor: NodeDescriptor) -> None:
        """Insert keeping the youngest duplicate; evict oldest on overflow."""
        current = self._entries.get(descriptor.node_id)
        if current is not None:
            if descriptor.age < current.age:
                self._entries[descriptor.node_id] = descriptor
            return
        self._entries[descriptor.node_id] = descriptor
        if len(self._entries) > self.capacity:
            victim = self.oldest()
            assert victim is not None
            del self._entries[victim.node_id]

    def remove(self, node_id: int) -> bool:
        """Drop a node id; returns whether it was present."""
        return self._entries.pop(node_id, None) is not None

    def increase_ages(self, by: int = 1) -> None:
        """Age every descriptor (one gossip round passed)."""
        self._entries = {i: d.aged(by) for i, d in self._entries.items()}

    def merge(
        self,
        received: Iterable[NodeDescriptor],
        self_id: int,
        sent: Optional[Iterable[NodeDescriptor]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Cyclon-style merge of a received descriptor batch.

        Received entries never describe ourselves. When the view would
        overflow, entries that were *sent* in the corresponding shuffle are
        discarded first (they are the ones we offered to trade away), then
        the oldest remaining entries. Eviction choices among equal
        candidates are randomised when ``rng`` is given — id-biased
        eviction would skew the overlay's in-degree distribution.
        """
        sent_ids = {d.node_id for d in sent} if sent else set()
        for descriptor in received:
            if descriptor.node_id == self_id:
                continue
            if descriptor.node_id in self._entries:
                current = self._entries[descriptor.node_id]
                if descriptor.age < current.age:
                    self._entries[descriptor.node_id] = descriptor
                continue
            if len(self._entries) < self.capacity:
                self._entries[descriptor.node_id] = descriptor
                continue
            evicted = self._evict_for_merge(sent_ids, rng)
            if evicted is None:
                return  # view full of entries we must keep
            self._entries[descriptor.node_id] = descriptor

    def _evict_for_merge(self, sent_ids: set, rng: Optional[random.Random]) -> Optional[int]:
        candidates = sorted(i for i in self._entries if i in sent_ids)
        if candidates:
            victim = rng.choice(candidates) if rng is not None else candidates[0]
        else:
            oldest = self.oldest(rng=rng)
            if oldest is None:
                return None
            victim = oldest.node_id
        del self._entries[victim]
        return victim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{d.node_id}@{d.age}" for d in self.descriptors())
        return f"PartialView[{len(self)}/{self.capacity}]({inner})"

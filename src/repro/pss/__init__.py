"""Peer Sampling Service implementations (paper Section II).

* :class:`~repro.pss.cyclon.CyclonService` — the PSS DATAFLASKS uses
* :class:`~repro.pss.newscast.NewscastService` — alternative PSS
* :func:`~repro.pss.bootstrap.bootstrap_random_views` — initial contacts
* :mod:`repro.pss.diagnostics` — overlay randomness metrics
"""

from repro.pss.base import PeerSamplingService
from repro.pss.bootstrap import bootstrap_node, bootstrap_random_views
from repro.pss.cyclon import CyclonService, ShuffleReply, ShuffleRequest
from repro.pss.newscast import NewscastService
from repro.pss.view import NodeDescriptor, PartialView

__all__ = [
    "CyclonService",
    "NewscastService",
    "NodeDescriptor",
    "PartialView",
    "PeerSamplingService",
    "ShuffleReply",
    "ShuffleRequest",
    "bootstrap_node",
    "bootstrap_random_views",
]

"""Ring arithmetic for the Chord-style DHT baseline.

Identifier space: 64-bit, positions derived with the same stable BLAKE2b
hash the DATAFLASKS keyspace uses. Pure functions only — routing state
machines live in :mod:`repro.dht.node`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.keyspace import key_hash

__all__ = [
    "RING_BITS",
    "RING_SIZE",
    "node_position",
    "key_position",
    "in_interval",
    "ring_distance",
    "finger_target",
]

RING_BITS = 64
RING_SIZE = 1 << RING_BITS

# (position, node_id) pairs are how the DHT refers to peers.
RingRef = Tuple[int, int]


def node_position(node_id: int) -> int:
    """A node's ring position (hash of its identity)."""
    return key_hash(f"chord-node:{node_id}")


def key_position(key: str) -> int:
    """A key's ring position."""
    return key_hash(key)


def in_interval(x: int, a: int, b: int, inclusive_end: bool = False) -> bool:
    """Is ``x`` in the clockwise interval (a, b) — or (a, b] — mod 2^64?

    An empty interval (``a == b``) denotes the *full* ring, matching
    Chord's convention (a node that is its own successor owns everything).
    """
    x, a, b = x % RING_SIZE, a % RING_SIZE, b % RING_SIZE
    if a == b:
        return inclusive_end or x != a
    if a < b:
        return a < x < b or (inclusive_end and x == b)
    return x > a or x < b or (inclusive_end and x == b)


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b``."""
    return (b - a) % RING_SIZE


def finger_target(position: int, index: int) -> int:
    """Start of the ``index``-th finger interval: ``position + 2^index``."""
    return (position + (1 << index)) % RING_SIZE

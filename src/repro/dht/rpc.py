"""Minimal request/reply RPC layer for the DHT baseline.

Structured overlays are RPC-shaped (find_successor, notify, store…),
unlike gossip's fire-and-forget messages. This service gives the Chord
implementation named methods, reply correlation and timeouts on top of
the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.node import Service

__all__ = ["RpcRequest", "RpcReply", "RpcService"]


@dataclass(frozen=True)
class RpcRequest:
    rpc_id: Tuple[int, int]  # (caller id, caller-local sequence)
    method: str
    args: tuple


@dataclass(frozen=True)
class RpcReply:
    rpc_id: Tuple[int, int]
    ok: bool
    result: Any


class RpcService(Service):
    """Named-method RPC with per-call timeouts.

    Handlers are ``fn(args, src) -> result``; raising inside a handler
    produces a ``ok=False`` reply carrying the error string. Callers pass
    ``on_reply(ok, result)``; a timeout fires it once with
    ``(False, 'timeout')``.
    """

    name = "rpc"

    def __init__(self, timeout: float = 2.0) -> None:
        super().__init__()
        if timeout <= 0:
            raise ConfigurationError("rpc timeout must be positive")
        self.timeout = timeout
        self._methods: Dict[str, Callable[[tuple, int], Any]] = {}
        self._pending: Dict[Tuple[int, int], Callable[[bool, Any], None]] = {}
        self._next_seq = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(RpcRequest, self._on_request)
        node.register_handler(RpcReply, self._on_reply)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(RpcRequest)
        node.unregister_handler(RpcReply)
        self._pending.clear()

    # ----------------------------------------------------------------- API

    def register(self, method: str, handler: Callable[[tuple, int], Any]) -> None:
        if method in self._methods:
            raise ConfigurationError(f"rpc method {method!r} already registered")
        self._methods[method] = handler

    def call(
        self,
        dst: int,
        method: str,
        args: tuple = (),
        on_reply: Optional[Callable[[bool, Any], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Invoke ``method`` on node ``dst``."""
        node = self.node
        assert node is not None
        rpc_id = (node.id, self._next_seq)
        self._next_seq += 1
        if on_reply is not None:
            self._pending[rpc_id] = on_reply
            node.after(timeout if timeout is not None else self.timeout,
                       self._on_timeout, rpc_id)
        node.send(dst, RpcRequest(rpc_id, method, args))

    # ------------------------------------------------------------ internals

    def _on_request(self, msg: RpcRequest, src: int) -> None:
        node = self.node
        assert node is not None
        handler = self._methods.get(msg.method)
        if handler is None:
            node.send(src, RpcReply(msg.rpc_id, False, f"no such method {msg.method!r}"))
            return
        try:
            result = handler(msg.args, src)
        except Exception as exc:  # handler bug or rejected call
            node.send(src, RpcReply(msg.rpc_id, False, str(exc)))
            return
        node.send(src, RpcReply(msg.rpc_id, True, result))

    def _on_reply(self, msg: RpcReply, src: int) -> None:
        callback = self._pending.pop(msg.rpc_id, None)
        if callback is not None:
            callback(msg.ok, msg.result)

    def _on_timeout(self, rpc_id: Tuple[int, int]) -> None:
        callback = self._pending.pop(rpc_id, None)
        if callback is not None:
            callback(False, "timeout")

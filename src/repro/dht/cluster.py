"""Deployment facade for the Chord baseline (mirror of DataFlasksCluster)."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.client import PendingOp
from repro.dht.client import DhtClient
from repro.dht.node import ChordNode
from repro.errors import ConfigurationError, OperationTimeoutError
from repro.sim.node import Node, SimContext
from repro.sim.simulator import Simulation

__all__ = ["DhtCluster"]


class DhtCluster:
    """A Chord ring plus clients, with the same driving helpers as
    :class:`~repro.core.cluster.DataFlasksCluster` so benches can swap
    the two systems behind one workload loop."""

    def __init__(
        self,
        n: int,
        replication: int = 3,
        sim: Optional[Simulation] = None,
        seed: int = 0,
        successor_list_len: int = 8,
    ) -> None:
        if n <= 0:
            raise ConfigurationError("cluster size must be positive")
        self.sim = sim if sim is not None else Simulation(seed=seed)
        self.replication = replication
        self.servers: List[ChordNode] = []
        self.clients: List[DhtClient] = []

        def factory(node_id: int, ctx: SimContext) -> Node:
            return ChordNode(
                node_id,
                ctx,
                replication=replication,
                successor_list_len=successor_list_len,
            )

        self._factory = factory
        for _ in range(n):
            node = self.sim.add_node(factory)
            assert isinstance(node, ChordNode)
            self.servers.append(node)
        for node in self.servers:
            node.start()
        self._provision_ring()

    def _provision_ring(self) -> None:
        """Initial ring pointers from the deployment manifest.

        A provisioned DHT starts from correct successor/predecessor
        pointers (operators boot it from a known member list); dynamic
        :meth:`ChordNode.join` is reserved for churn-time joiners. This
        also puts the baseline at its best — the paper's argument is that
        structured overlays degrade *under churn*, not at boot.
        """
        ring = sorted(self.servers, key=lambda s: s.pos)
        n = len(ring)
        for index, node in enumerate(ring):
            chain = [ring[(index + j) % n] for j in range(1, n)]
            node.successors = [
                peer.ref() for peer in chain[: node.successor_list_len]
            ] or [node.ref()]
            node.predecessor = ring[(index - 1) % n].ref()

    # -------------------------------------------------------------- helpers

    def server_factory(self) -> Callable[[int, SimContext], Node]:
        """Factory for churn joins: the node joins through a live member."""

        def factory(node_id: int, ctx: SimContext) -> Node:
            node = ChordNode(node_id, ctx, replication=self.replication)
            self.servers.append(node)
            alive = [s for s in self.servers if s.alive and s.id != node_id]
            if alive:
                node.after(0.1, node.join, alive[0].id)
            return node

        return factory

    def directory(self) -> List[int]:
        return [s.id for s in self.servers if s.alive]

    def churn_controller(self, **kwargs):
        """A ChurnController scoped to this ring's servers (not clients)."""
        from repro.churn.controller import ChurnController

        return ChurnController(
            self.sim,
            self.server_factory(),
            eligible=lambda: [s for s in self.servers if s.alive],
            **kwargs,
        )

    def new_client(self, timeout: float = 5.0, retries: int = 2) -> DhtClient:
        def factory(node_id: int, ctx: SimContext) -> Node:
            return DhtClient(node_id, ctx, self.directory, timeout=timeout, retries=retries)

        client = self.sim.add_node(factory)
        assert isinstance(client, DhtClient)
        client.start()
        self.clients.append(client)
        return client

    def stabilize(self, duration: float = 20.0) -> None:
        """Let stabilisation and finger repair settle the ring."""
        self.sim.run_for(duration)

    def ring_is_consistent(self) -> bool:
        """Do successor pointers form one cycle over all alive nodes?"""
        alive = {s.id: s for s in self.servers if s.alive}
        if not alive:
            return False
        start = min(alive)
        seen = set()
        current = start
        while current not in seen:
            seen.add(current)
            node = alive.get(current)
            if node is None:
                return False
            current = node.successor[1]
        return current == start and seen == set(alive)

    # ------------------------------------------------------------- sync ops

    def run_op(self, op: PendingOp, timeout: float = 30.0) -> PendingOp:
        self.sim.run_until_condition(lambda: op.done, timeout, check_interval=0.1)
        if not op.done:
            raise OperationTimeoutError(op.kind, op.key, timeout)
        return op

    def put_sync(self, client: DhtClient, key: str, value, version: int,
                 timeout: float = 30.0) -> PendingOp:
        return self.run_op(client.put(key, value, version), timeout)

    def get_sync(self, client: DhtClient, key: str, version: Optional[int] = None,
                 timeout: float = 30.0) -> PendingOp:
        return self.run_op(client.get(key, version), timeout)

    def replication_level(self, key: str, version: Optional[int] = None) -> int:
        return sum(1 for s in self.servers if s.alive and s.holds(key, version))

    def server_message_load(self):
        return self.sim.metrics.message_load(population=[s.id for s in self.servers])

"""Client for the Chord DHT baseline.

Mirrors the DATAFLASKS client API (:class:`~repro.core.client.PendingOp`
results, timeouts, retries) so the churn-resilience bench can drive both
systems with identical workload code. The client performs the iterative
lookup itself, then talks to the key's owner (falling back to the
replica list a fetch miss returns).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional

from repro.core.client import FAILED, GET, PENDING, PUT, SUCCEEDED, PendingOp
from repro.dht.node import RingRef, iterative_lookup
from repro.dht.ring import key_position
from repro.dht.rpc import RpcService
from repro.errors import ClientError
from repro.sim.node import Node, SimContext

__all__ = ["DhtClient"]


class DhtClient(Node):
    """put/get against a Chord ring through any contact node."""

    def __init__(
        self,
        node_id: int,
        ctx: SimContext,
        directory: Callable[[], List[int]],
        timeout: float = 5.0,
        retries: int = 2,
    ) -> None:
        super().__init__(node_id, ctx)
        self._directory = directory
        self.timeout = timeout
        self.retries = retries
        self.rpc = RpcService(timeout=timeout)
        self.add_service(self.rpc)
        self._next_seq = 0

    # ----------------------------------------------------------------- API

    def put(self, key: str, value: Any, version: int, acks_required: int = 1) -> PendingOp:
        """Store through the key's owner (owner replicates to successors)."""
        op = self._new_op(PUT, key, version, acks_required)
        op.value_to_put = value
        self._attempt_put(op)
        return op

    def get(self, key: str, version: Optional[int] = None) -> PendingOp:
        """Fetch from the owner, falling over to its replica list."""
        op = self._new_op(GET, key, version, acks_required=1)
        self._attempt_get(op)
        return op

    # ------------------------------------------------------------- internal

    def _new_op(self, kind: str, key: str, version: Optional[int], acks_required: int) -> PendingOp:
        if not self.alive:
            raise ClientError("client is not started")
        req_id = (self.id, self._next_seq)
        self._next_seq += 1
        return PendingOp(kind, key, version, req_id, acks_required, self.now)

    def _contact(self) -> Optional[int]:
        nodes = sorted(self._directory())
        if not nodes:
            return None
        return self.rng.choice(nodes)

    def _retry(self, op: PendingOp, action: Callable[[PendingOp], None], error: str) -> None:
        if op.done:
            return
        if op.attempts > self.retries:
            self.metrics.inc(f"dht.client.{op.kind}.failed")
            op._complete(FAILED, self.now, error=error)
            return
        op.attempts += 1
        self.metrics.inc(f"dht.client.{op.kind}.retry")
        action(op)

    def _lookup(self, op: PendingOp, then: Callable[[PendingOp, RingRef], None],
                retry: Callable[[PendingOp], None]) -> None:
        contact = self._contact()
        if contact is None:
            op._complete(FAILED, self.now, error="no contact node available")
            return
        target = key_position(op.key)

        def resolved(owner: Optional[RingRef]) -> None:
            if op.done:
                return
            if owner is None:
                self._retry(op, retry, "lookup failed")
                return
            then(op, owner)

        iterative_lookup(self, self.rpc, contact, target, resolved)

    # ----------------------------------------------------------------- put

    def _attempt_put(self, op: PendingOp) -> None:
        self._lookup(op, self._send_store, self._attempt_put)

    def _send_store(self, op: PendingOp, owner: RingRef) -> None:
        def stored(ok: bool, result: Any) -> None:
            if op.done:
                return
            if ok and result:
                op.acks.add(owner[1])
                self.metrics.inc("dht.client.put.ok")
                self.metrics.observe("dht.client.put.latency", self.now - op.started_at)
                op._complete(SUCCEEDED, self.now)
            else:
                self._retry(op, self._attempt_put, "store rejected or timed out")

        self.rpc.call(
            owner[1],
            "store_replicated",
            (op.key, op.version, op.value_to_put),
            on_reply=stored,
        )

    # ----------------------------------------------------------------- get

    def _attempt_get(self, op: PendingOp) -> None:
        self._lookup(op, lambda o, owner: self._fetch_chain(o, [owner[1]], set()),
                     self._attempt_get)

    def _fetch_chain(self, op: PendingOp, candidates: List[int], tried: set) -> None:
        if op.done:
            return
        while candidates and candidates[0] in tried:
            candidates.pop(0)
        if not candidates:
            self._retry(op, self._attempt_get, "object not found on any replica")
            return
        target = candidates.pop(0)
        tried.add(target)

        def fetched(ok: bool, result: Any) -> None:
            if op.done:
                return
            if ok and result is not None and result[0]:
                _found, version, value, _replicas = result
                op.value = value
                op.result_version = version
                op.replies += 1
                self.metrics.inc("dht.client.get.ok")
                self.metrics.observe("dht.client.get.latency", self.now - op.started_at)
                op._complete(SUCCEEDED, self.now)
                return
            more: List[int] = list(candidates)
            if ok and result is not None:
                replicas = result[3]
                more.extend(ref[1] for ref in replicas if ref[1] not in tried)
            self._fetch_chain(op, more, tried)

        self.rpc.call(target, "fetch", (op.key, op.version), on_reply=fetched)

"""Chord-style DHT key-value node — the structured baseline.

The paper's introduction argues that DHT-based tuple-stores "assume
moderately stable environments" and degrade when "faults and churn
become the rule". This module implements that comparator: a Chord ring
(Stoica et al.) with successor lists, finger tables, periodic
stabilisation, and successor-list replication, carrying the same
versioned put/get API as DATAFLASKS so bench A4 can compare them under
identical churn.

Routing is *iterative*: the querier repeatedly asks ``route_step`` until
an owner is found (handlers stay synchronous). Replication: the key's
owner stores and pushes copies to its ``replication - 1`` successors;
a periodic repair round re-pushes owned keys so replicas follow ring
membership.

Known, documented simplification: no key handoff on *join* (a joiner
acquires data through the owners' repair rounds rather than an explicit
transfer), which matches the repair-based recovery DATAFLASKS uses and
keeps the comparison symmetric.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.store import MemoryStore, VersionedStore
from repro.dht.ring import (
    RING_BITS,
    finger_target,
    in_interval,
    node_position,
    key_position,
)
from repro.dht.rpc import RpcService
from repro.sim.node import Node, SimContext

__all__ = ["ChordNode", "iterative_lookup", "RingRef"]

RingRef = Tuple[int, int]  # (position, node id)

# route_step outcomes
OWNER = "owner"
NEXT = "next"


def iterative_lookup(
    node: Node,
    rpc: RpcService,
    start: int,
    target: int,
    callback: Callable[[Optional[RingRef]], None],
    max_hops: int = 3 * RING_BITS,
    hop_counter: Optional[List[int]] = None,
) -> None:
    """Drive an iterative Chord lookup from any node (server or client).

    Asks ``start`` for a route step and follows ``next`` referrals until
    an ``owner`` is returned; ``callback(None)`` on routing failure
    (timeout, loop, or hop exhaustion). When ``hop_counter`` is given the
    number of route steps taken is appended to it (used by tests and the
    hop-count diagnostics).
    """

    def step(current: int, hops: int) -> None:
        if hops > max_hops:
            finish(None, hops)
            return
        rpc.call(current, "route_step", (target,), on_reply=lambda ok, res: advance(ok, res, hops))

    def advance(ok: bool, result: Any, hops: int) -> None:
        if not ok or result is None:
            finish(None, hops)
            return
        kind, ref = result
        if kind == OWNER:
            finish(tuple(ref), hops + 1)
            return
        next_id = ref[1]
        step(next_id, hops + 1)

    def finish(owner: Optional[RingRef], hops: int) -> None:
        if hop_counter is not None:
            hop_counter.append(hops)
        callback(owner)

    step(start, 0)


class ChordNode(Node):
    """One ring member with a versioned local store."""

    def __init__(
        self,
        node_id: int,
        ctx: SimContext,
        replication: int = 3,
        successor_list_len: int = 4,
        stabilize_period: float = 1.0,
        repair_period: float = 4.0,
        fingers_per_round: int = 4,
        store: Optional[VersionedStore] = None,
    ) -> None:
        super().__init__(node_id, ctx)
        self.pos = node_position(node_id)
        self.replication = replication
        self.successor_list_len = successor_list_len
        self.stabilize_period = stabilize_period
        self.repair_period = repair_period
        self.fingers_per_round = fingers_per_round
        self.store = store if store is not None else MemoryStore()
        self.successors: List[RingRef] = [(self.pos, self.id)]  # [0] = successor
        self.predecessor: Optional[RingRef] = None
        self.fingers: dict = {}
        self._next_finger = 0
        self.rpc = RpcService()
        self.add_service(self.rpc)
        for method, handler in (
            ("route_step", self._rpc_route_step),
            ("get_neighbors", self._rpc_get_neighbors),
            ("notify", self._rpc_notify),
            ("ping", self._rpc_ping),
            ("store", self._rpc_store),
            ("store_replicated", self._rpc_store_replicated),
            ("fetch", self._rpc_fetch),
        ):
            self.rpc.register(method, handler)

    # ----------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        self.every(self.stabilize_period, self._stabilize)
        self.every(self.stabilize_period, self._check_predecessor)
        self.every(self.stabilize_period, self._fix_fingers)
        self.every(self.repair_period, self._repair)

    def join(self, contact: int) -> None:
        """Join the ring known to ``contact``."""
        iterative_lookup(self, self.rpc, contact, self.pos, self._joined)

    def _joined(self, owner: Optional[RingRef]) -> None:
        if owner is not None and owner[1] != self.id:
            self.successors = [owner]

    # --------------------------------------------------------------- refs

    def ref(self) -> RingRef:
        return (self.pos, self.id)

    def holds(self, key: str, version: Optional[int] = None) -> bool:
        """Whether the local store has the object — the facade's way to
        count replicas without reaching into another node's store."""
        return self.store.get(key, version) is not None

    @property
    def successor(self) -> RingRef:
        return self.successors[0] if self.successors else self.ref()

    def _alive_filter(self, refs: List[RingRef]) -> List[RingRef]:
        seen = set()
        out = []
        for ref in refs:
            if ref[1] != self.id and ref[1] not in seen:
                seen.add(ref[1])
                out.append(tuple(ref))
        return out

    # ------------------------------------------------------------- routing

    def _closest_preceding(self, target: int) -> RingRef:
        best: Optional[RingRef] = None
        candidates = list(self.fingers.values()) + self.successors
        for ref in candidates:
            pos = ref[0]
            if in_interval(pos, self.pos, target):
                if best is None or in_interval(pos, best[0], target):
                    best = tuple(ref)
        return best if best is not None else self.successor

    def _rpc_route_step(self, args: tuple, src: int):
        (target,) = args
        if target == self.pos:
            return (OWNER, self.ref())
        if self.predecessor is not None and in_interval(
            target, self.predecessor[0], self.pos, inclusive_end=True
        ):
            return (OWNER, self.ref())
        succ = self.successor
        if succ[1] == self.id:
            return (OWNER, self.ref())  # single-node ring
        if in_interval(target, self.pos, succ[0], inclusive_end=True):
            return (OWNER, succ)
        nxt = self._closest_preceding(target)
        if nxt[1] == self.id:
            return (OWNER, self.ref())
        return (NEXT, nxt)

    # -------------------------------------------------------- stabilization

    def _stabilize(self) -> None:
        succ = self.successor
        if succ[1] == self.id:
            return
        self.rpc.call(succ[1], "get_neighbors", (), on_reply=self._on_neighbors)

    def _on_neighbors(self, ok: bool, result: Any) -> None:
        if not ok:
            # Successor unresponsive: promote the next live candidate.
            self.metrics.inc("dht.successor_failover", node=self.id)
            if len(self.successors) > 1:
                self.successors = self.successors[1:]
            else:
                self.successors = [self.ref()]
            return
        pred, succ_list = result
        succ = self.successor
        if pred is not None and in_interval(pred[0], self.pos, succ[0]):
            succ = tuple(pred)
        chain = [succ] + [tuple(r) for r in succ_list]
        self.successors = self._alive_filter(chain)[: self.successor_list_len] or [self.ref()]
        self.rpc.call(self.successor[1], "notify", (self.ref(),))

    def _rpc_get_neighbors(self, args: tuple, src: int):
        return (self.predecessor, self.successors)

    def _rpc_notify(self, args: tuple, src: int):
        (candidate,) = args
        candidate = tuple(candidate)
        if candidate[1] == self.id:
            return False
        if self.predecessor is None or in_interval(
            candidate[0], self.predecessor[0], self.pos
        ):
            self.predecessor = candidate
        return True

    def _rpc_ping(self, args: tuple, src: int):
        return "pong"

    def _check_predecessor(self) -> None:
        """Clear a dead predecessor so stabilisation stops re-adopting it."""
        if self.predecessor is None:
            return
        pred = self.predecessor

        def answered(ok: bool, result) -> None:
            if not ok and self.predecessor == pred:
                self.predecessor = None
                self.metrics.inc("dht.predecessor_cleared", node=self.id)

        self.rpc.call(pred[1], "ping", (), on_reply=answered)

    def _fix_fingers(self) -> None:
        for _ in range(self.fingers_per_round):
            index = self._next_finger
            self._next_finger = (self._next_finger + 1) % RING_BITS
            target = finger_target(self.pos, index)
            iterative_lookup(
                self,
                self.rpc,
                self.id,
                target,
                lambda owner, i=index: self._set_finger(i, owner),
            )

    def _set_finger(self, index: int, owner: Optional[RingRef]) -> None:
        if owner is None:
            self.fingers.pop(index, None)
        elif owner[1] != self.id:
            self.fingers[index] = owner

    # ------------------------------------------------------------- storage

    def _owns(self, position: int) -> bool:
        if self.predecessor is None:
            return True  # best effort before the ring settles
        return in_interval(position, self.predecessor[0], self.pos, inclusive_end=True)

    def _rpc_store(self, args: tuple, src: int):
        key, version, value = args
        return self.store.put(key, version, value)

    def _rpc_store_replicated(self, args: tuple, src: int):
        key, version, value = args
        self.store.put(key, version, value)
        for ref in self.successors[: self.replication - 1]:
            if ref[1] != self.id:
                self.rpc.call(ref[1], "store", (key, version, value))
        return True

    def _rpc_fetch(self, args: tuple, src: int):
        key, version = args
        obj = self.store.get(key, version)
        replicas = [r for r in self.successors[: self.replication - 1]]
        if obj is None:
            return (False, None, None, replicas)
        return (True, obj.version, obj.value, replicas)

    def _repair(self) -> None:
        """Re-push owned keys to the current successor set."""
        for key in self.store.keys():
            if not self._owns(key_position(key)):
                continue
            for version in self.store.versions(key):
                obj = self.store.get(key, version)
                if obj is None:
                    continue
                for ref in self.successors[: self.replication - 1]:
                    if ref[1] != self.id:
                        self.rpc.call(ref[1], "store", (obj.key, obj.version, obj.value))

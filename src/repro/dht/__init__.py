"""Chord-style DHT key-value baseline (the structured comparator).

* :class:`~repro.dht.node.ChordNode` — ring member with stabilisation,
  finger tables, successor-list replication and repair rounds
* :class:`~repro.dht.client.DhtClient` — iterative-lookup client
* :class:`~repro.dht.cluster.DhtCluster` — deployment facade
* :mod:`repro.dht.ring` — 64-bit ring arithmetic
* :mod:`repro.dht.rpc` — request/reply RPC with timeouts
"""

from repro.dht.client import DhtClient
from repro.dht.cluster import DhtCluster
from repro.dht.node import ChordNode, iterative_lookup
from repro.dht.ring import (
    RING_BITS,
    RING_SIZE,
    finger_target,
    in_interval,
    key_position,
    node_position,
    ring_distance,
)
from repro.dht.rpc import RpcReply, RpcRequest, RpcService

__all__ = [
    "ChordNode",
    "DhtClient",
    "DhtCluster",
    "RING_BITS",
    "RING_SIZE",
    "RpcReply",
    "RpcRequest",
    "RpcService",
    "finger_target",
    "in_interval",
    "iterative_lookup",
    "key_position",
    "node_position",
    "ring_distance",
]

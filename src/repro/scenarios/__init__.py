"""Declarative scenario engine for reproducible large-scale experiments.

* :mod:`repro.scenarios.spec` — the :class:`ScenarioSpec` description
  language (dataclasses, TOML/JSON loadable)
* :mod:`repro.scenarios.runner` — deterministic execution and multi-seed
  sweeps
* :mod:`repro.scenarios.registry` — the bundled scenario files

Quickstart::

    from repro.scenarios import load_bundled, run_scenario

    spec = load_bundled("catastrophic-failure").scaled(nodes=40)
    result = run_scenario(spec, seed=7)
    print(result.summary_json())
"""

from repro.scenarios.registry import (
    SPEC_DIR,
    bundled_names,
    load_all_bundled,
    load_bundled,
)
from repro.scenarios.runner import (
    ScenarioResult,
    SweepResult,
    run_scenario,
    run_sweep,
)
from repro.scenarios.spec import (
    ChurnSpec,
    FaultSpec,
    LatencySpec,
    ScenarioSpec,
    WorkloadSpec,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "SPEC_DIR",
    "ChurnSpec",
    "FaultSpec",
    "LatencySpec",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepResult",
    "WorkloadSpec",
    "bundled_names",
    "load_all_bundled",
    "load_bundled",
    "load_spec",
    "run_scenario",
    "run_sweep",
    "spec_from_dict",
]

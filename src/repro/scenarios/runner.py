"""Deterministic scenario execution.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into one simulated experiment and returns a :class:`ScenarioResult`
whose metrics are a flat, sorted ``name -> float`` mapping. Everything
random flows from the simulation's seeded RNG registry plus the workload
runner's derived seed — including the nemesis fault schedule, whose
victims come from the dedicated ``faults`` stream — so two runs of the
same spec and seed produce *byte-identical* summaries
(:meth:`ScenarioResult.summary_json`), the reproducibility contract the
CLI and tests assert.

Timeline: deploy -> warmup/convergence -> load -> settle -> arm the
nemesis schedule and churn -> transaction phase (kept running until the
last fault heals) -> time-to-heal measurement -> cooldown -> collect.

:func:`run_sweep` repeats a spec over several seeds and aggregates the
per-seed metrics through :func:`repro.analysis.aggregate.aggregate_rows`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.aggregate import aggregate_rows
from repro.analysis.consistency import count_write_losses
from repro.churn.controller import ChurnController
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.dht.cluster import DhtCluster
from repro.faults.nemesis import Nemesis
from repro.scenarios.spec import ScenarioSpec
from repro.sim.metrics import mean
from repro.sim.simulator import Simulation
from repro.slicing.metrics import slice_histogram, unassigned_fraction
from repro.workload.runner import RunStats, WorkloadRunner

__all__ = ["ScenarioResult", "SweepResult", "run_scenario", "run_sweep"]

Cluster = Union[DataFlasksCluster, DhtCluster]

# How many of the loaded keys the replication metric samples; sweeping
# every key on a 5k-node run would dominate the collection cost.
REPLICATION_SAMPLE = 25

# Key-sample cap for the acked-vs-retained write-loss audit.
CONSISTENCY_SAMPLE = 200


@dataclass
class ScenarioResult:
    """Outcome of one scenario run at one seed."""

    scenario: str
    seed: int
    metrics: Dict[str, float]

    def summary_json(self) -> str:
        """Canonical serialisation: sorted keys, fixed float formatting.

        Two runs of the same spec+seed must produce byte-identical output;
        the determinism tests and the CLI ``--summary`` flag rely on it.
        """
        return json.dumps(
            {"scenario": self.scenario, "seed": self.seed, "metrics": self.metrics},
            sort_keys=True,
        )


@dataclass
class SweepResult:
    """Per-seed results plus cross-seed aggregates for one spec."""

    scenario: str
    seeds: List[int]
    results: List[ScenarioResult]
    aggregate: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, float]]:
        """One row per seed — ready for ``rows_to_table``."""
        return [dict(r.metrics, seed=r.seed) for r in self.results]


def run_scenario(spec: ScenarioSpec, seed: Optional[int] = None) -> ScenarioResult:
    """Execute ``spec`` once; ``seed`` overrides the spec's default."""
    seed = spec.seed if seed is None else seed
    sim = Simulation(seed=seed, latency_model=spec.latency.build(), loss_rate=spec.loss_rate)
    cluster = _deploy(spec, sim)
    metrics: Dict[str, float] = {}

    cluster_size_before = len(cluster.servers)
    metrics["converged"] = float(_converge(spec, cluster))

    workload = spec.workload.build()
    runner = WorkloadRunner(
        cluster,
        workload,
        seed=seed,
        op_timeout=spec.workload.op_timeout,
        acks_required=spec.workload.acks_required,
    )
    load_stats = runner.run_load_phase()
    sim.run_for(spec.settle)

    controller, nemesis, probe = _inject_faults_and_churn(spec, cluster)

    txn_stats: Optional[RunStats] = None
    if spec.workload.operation_count > 0:
        txn_stats = runner.run_transactions(spec.workload.operation_count)
    elif spec.churn is not None:
        # No transaction phase: still play the churn schedule out so its
        # effects are visible in the population/replication metrics.
        sim.run_for(spec.churn.horizon)
    if nemesis is not None and sim.now < nemesis.end_time:
        # The transaction phase ended before the fault schedule did:
        # keep running so every scheduled heal fires.
        sim.run_until(nemesis.end_time)
    _measure_heal(spec, cluster, probe, metrics)
    sim.run_for(spec.cooldown)

    _collect(spec, cluster, controller, nemesis, runner, load_stats, txn_stats, workload, metrics)
    metrics["population_before_churn"] = float(cluster_size_before)
    metrics["sim_time"] = _r(sim.now)
    metrics["events_processed"] = float(sim.scheduler.events_processed)
    return ScenarioResult(spec.name, seed, dict(sorted(metrics.items())))


def run_sweep(spec: ScenarioSpec, seeds: Sequence[int]) -> SweepResult:
    """Run ``spec`` once per seed and aggregate the metrics."""
    results = [run_scenario(spec, seed) for seed in seeds]
    return SweepResult(
        scenario=spec.name,
        seeds=list(seeds),
        results=results,
        aggregate=aggregate_rows([r.metrics for r in results]),
    )


# ---------------------------------------------------------------- internals


def _deploy(spec: ScenarioSpec, sim: Simulation) -> Cluster:
    if spec.stack == "dht":
        return DhtCluster(n=spec.nodes, replication=spec.replication, sim=sim)
    config = DataFlasksConfig(num_slices=spec.num_slices, **spec.config)
    return DataFlasksCluster(n=spec.nodes, config=config, sim=sim)


def _converge(spec: ScenarioSpec, cluster: Cluster) -> bool:
    if isinstance(cluster, DhtCluster):
        cluster.stabilize(spec.warmup)
        return cluster.ring_is_consistent()
    cluster.warm_up(spec.warmup)
    return cluster.wait_for_slices(timeout=spec.convergence_timeout)


class _HealProbe:
    """Measures time-to-heal convergence *as it happens*: armed by the
    nemesis at every heal, it polls the overlay-is-whole predicate on
    the scheduler, so the measurement runs concurrently with the
    transaction phase instead of starting after the workload ends (which
    would inflate heal_time by the remaining workload runtime)."""

    def __init__(self, cluster: Cluster, interval: float = 0.5) -> None:
        self.sim = cluster.sim
        self.predicate = _converged_predicate(cluster)
        self.interval = interval
        self.anchor: Optional[float] = None
        self.heal_time: Optional[float] = None
        self._polling = False

    def arm(self) -> None:
        """Restart the measurement from now (a later heal supersedes)."""
        self.anchor = self.sim.now
        self.heal_time = None
        if not self._polling:
            self._polling = True
            self.sim.scheduler.schedule(0.0, self._check)

    def _check(self) -> None:
        if self.predicate():
            self.heal_time = self.sim.now - self.anchor
            self._polling = False
        else:
            self.sim.scheduler.schedule(self.interval, self._check)


def _converged_predicate(cluster: Cluster):
    """'The overlay looks whole again': consistent ring for the DHT
    stack, every slice populated and every node placed for core."""
    if isinstance(cluster, DhtCluster):
        return cluster.ring_is_consistent

    def converged() -> bool:
        alive = [s for s in cluster.servers if s.alive]
        if not alive or unassigned_fraction(alive) > 0:
            return False
        hist = slice_histogram(alive)
        return all(hist.get(i, 0) > 0 for i in range(cluster.config.num_slices))

    return converged


def _inject_faults_and_churn(
    spec: ScenarioSpec, cluster: Cluster
) -> Tuple[Optional[ChurnController], Optional[Nemesis], Optional[_HealProbe]]:
    """Arm the fault phase: one shared controller feeds both the nemesis
    schedule and spec-level churn, so fault-driven crashes/recoveries and
    churn land in the same join/leave accounting."""
    if spec.churn is None and not spec.faults:
        return None, None, None
    controller = cluster.churn_controller()
    nemesis: Optional[Nemesis] = None
    probe: Optional[_HealProbe] = None
    if spec.faults:
        nemesis = Nemesis(cluster.sim, cluster=cluster, controller=controller)
        if "consistency" in spec.metrics:
            probe = _HealProbe(cluster)
            nemesis.on_heal = probe.arm
        nemesis.schedule([f.build() for f in spec.faults])
    if spec.churn is not None:
        cluster.sim.run_for(spec.churn.start)
        if spec.churn.kind == "correlated":
            controller.kill_fraction(spec.churn.fraction)
        else:
            model = spec.churn.build(population=spec.nodes)
            controller.apply(model, horizon=spec.churn.horizon)
    return controller, nemesis, probe


def _measure_heal(
    spec: ScenarioSpec,
    cluster: Cluster,
    probe: Optional[_HealProbe],
    metrics: Dict[str, float],
) -> None:
    """Report the probe's time-to-heal, running on past the workload if
    the overlay has not reconverged by the time the schedule ends."""
    if probe is None or probe.anchor is None:
        return
    sim = cluster.sim
    if probe.heal_time is None:
        sim.run_until_condition(
            lambda: probe.heal_time is not None, timeout=spec.convergence_timeout
        )
    converged = probe.heal_time is not None
    metrics["heal_converged"] = float(converged)
    metrics["heal_time"] = _r(
        probe.heal_time if converged else sim.now - probe.anchor
    )


def _collect(
    spec: ScenarioSpec,
    cluster: Cluster,
    controller: Optional[ChurnController],
    nemesis: Optional[Nemesis],
    runner: WorkloadRunner,
    load_stats: RunStats,
    txn_stats: Optional[RunStats],
    workload,
    metrics: Dict[str, float],
) -> None:
    groups = set(spec.metrics)
    if "workload" in groups:
        metrics["load_ops"] = float(load_stats.issued)
        metrics["load_success_rate"] = _r(load_stats.success_rate)
        if txn_stats is not None:
            metrics["txn_ops"] = float(txn_stats.issued)
            metrics["txn_success_rate"] = _r(txn_stats.success_rate)
            metrics["txn_throughput"] = _r(txn_stats.throughput)
            for kind in sorted(txn_stats.latencies):
                summary = txn_stats.latency_summary(kind)
                metrics[f"latency_{kind}_p50"] = _r(summary["p50"])
                metrics[f"latency_{kind}_p99"] = _r(summary["p99"])
            metrics["txn_messages_per_node"] = _r(txn_stats.messages_per_node)
    if "messages" in groups:
        load = cluster.server_message_load()
        metrics["messages_sent_per_node"] = _r(load["sent"])
        metrics["messages_received_per_node"] = _r(load["received"])
        metrics["messages_per_node"] = _r(load["handled"])
    if "population" in groups:
        metrics["population_alive"] = float(sum(1 for s in cluster.servers if s.alive))
        metrics["population_total"] = float(len(cluster.servers))
        metrics["churn_joins"] = float(controller.joins if controller else 0)
        metrics["churn_leaves"] = float(controller.leaves if controller else 0)
        metrics["churn_recoveries"] = float(controller.recoveries if controller else 0)
    if "consistency" in groups:
        stale = load_stats.stale_reads + (txn_stats.stale_reads if txn_stats else 0)
        metrics["stale_reads"] = float(stale)
        avail = runner.availability.summary(now=cluster.sim.now)
        metrics["unavail_keys"] = avail["keys"]
        metrics["unavail_windows"] = avail["windows"]
        metrics["unavail_window_mean"] = _r(avail["mean"])
        metrics["unavail_window_max"] = _r(avail["max"])
        losses = count_write_losses(
            cluster, runner.acked_versions, sample=CONSISTENCY_SAMPLE
        )
        metrics["lost_updates"] = losses["lost_updates"]
        metrics["lost_objects"] = losses["lost_objects"]
        metrics["faults_injected"] = float(nemesis.injected if nemesis else 0)
        metrics["faults_healed"] = float(nemesis.healed if nemesis else 0)
    if spec.stack == "core":
        alive = [s for s in cluster.servers if s.alive]
        if "slices" in groups and alive:
            hist = slice_histogram(alive)
            populated = [hist.get(i, 0) for i in range(cluster.config.num_slices)]
            metrics["slices_total"] = float(cluster.config.num_slices)
            metrics["slices_empty"] = float(sum(1 for c in populated if c == 0))
            metrics["slice_population_min"] = float(min(populated))
            metrics["slice_population_max"] = float(max(populated))
            metrics["slice_unassigned_fraction"] = _r(unassigned_fraction(alive))
        if "replication" in groups:
            sample = [
                workload.key_for(i)
                for i in range(min(workload.record_count, REPLICATION_SAMPLE))
            ]
            levels = [cluster.replication_level(key) for key in sample]
            metrics["replication_mean"] = _r(mean(levels))
            metrics["replication_min"] = float(min(levels)) if levels else 0.0
            metrics["replication_lost"] = float(sum(1 for l in levels if l == 0))


def _r(value: float) -> float:
    """Round for stable, readable summaries (determinism does not depend
    on this, but 17-digit floats make tables unreadable)."""
    return round(float(value), 6)

"""Deterministic scenario execution.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into one simulated experiment and returns a :class:`ScenarioResult`
whose metrics are a flat, sorted ``name -> float`` mapping. Everything
random flows from the simulation's seeded RNG registry plus the workload
runner's derived seed, so two runs of the same spec and seed produce
*byte-identical* summaries (:meth:`ScenarioResult.summary_json`) — the
reproducibility contract the CLI and tests assert.

:func:`run_sweep` repeats a spec over several seeds and aggregates the
per-seed metrics through :func:`repro.analysis.aggregate.aggregate_rows`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.aggregate import aggregate_rows
from repro.churn.controller import ChurnController
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.dht.cluster import DhtCluster
from repro.scenarios.spec import ScenarioSpec
from repro.sim.metrics import mean
from repro.sim.simulator import Simulation
from repro.slicing.metrics import slice_histogram, unassigned_fraction
from repro.workload.runner import RunStats, WorkloadRunner

__all__ = ["ScenarioResult", "SweepResult", "run_scenario", "run_sweep"]

Cluster = Union[DataFlasksCluster, DhtCluster]

# How many of the loaded keys the replication metric samples; sweeping
# every key on a 5k-node run would dominate the collection cost.
REPLICATION_SAMPLE = 25


@dataclass
class ScenarioResult:
    """Outcome of one scenario run at one seed."""

    scenario: str
    seed: int
    metrics: Dict[str, float]

    def summary_json(self) -> str:
        """Canonical serialisation: sorted keys, fixed float formatting.

        Two runs of the same spec+seed must produce byte-identical output;
        the determinism tests and the CLI ``--summary`` flag rely on it.
        """
        return json.dumps(
            {"scenario": self.scenario, "seed": self.seed, "metrics": self.metrics},
            sort_keys=True,
        )


@dataclass
class SweepResult:
    """Per-seed results plus cross-seed aggregates for one spec."""

    scenario: str
    seeds: List[int]
    results: List[ScenarioResult]
    aggregate: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, float]]:
        """One row per seed — ready for ``rows_to_table``."""
        return [dict(r.metrics, seed=r.seed) for r in self.results]


def run_scenario(spec: ScenarioSpec, seed: Optional[int] = None) -> ScenarioResult:
    """Execute ``spec`` once; ``seed`` overrides the spec's default."""
    seed = spec.seed if seed is None else seed
    sim = Simulation(seed=seed, latency_model=spec.latency.build(), loss_rate=spec.loss_rate)
    cluster = _deploy(spec, sim)
    metrics: Dict[str, float] = {}

    cluster_size_before = len(cluster.servers)
    metrics["converged"] = float(_converge(spec, cluster))

    workload = spec.workload.build()
    runner = WorkloadRunner(
        cluster,
        workload,
        seed=seed,
        op_timeout=spec.workload.op_timeout,
        acks_required=spec.workload.acks_required,
    )
    load_stats = runner.run_load_phase()
    sim.run_for(spec.settle)

    controller = _inject_churn(spec, cluster)

    txn_stats: Optional[RunStats] = None
    if spec.workload.operation_count > 0:
        txn_stats = runner.run_transactions(spec.workload.operation_count)
    elif spec.churn is not None:
        # No transaction phase: still play the churn schedule out so its
        # effects are visible in the population/replication metrics.
        sim.run_for(spec.churn.horizon)
    sim.run_for(spec.cooldown)

    _collect(spec, cluster, controller, load_stats, txn_stats, workload, metrics)
    metrics["population_before_churn"] = float(cluster_size_before)
    metrics["sim_time"] = _r(sim.now)
    metrics["events_processed"] = float(sim.scheduler.events_processed)
    return ScenarioResult(spec.name, seed, dict(sorted(metrics.items())))


def run_sweep(spec: ScenarioSpec, seeds: Sequence[int]) -> SweepResult:
    """Run ``spec`` once per seed and aggregate the metrics."""
    results = [run_scenario(spec, seed) for seed in seeds]
    return SweepResult(
        scenario=spec.name,
        seeds=list(seeds),
        results=results,
        aggregate=aggregate_rows([r.metrics for r in results]),
    )


# ---------------------------------------------------------------- internals


def _deploy(spec: ScenarioSpec, sim: Simulation) -> Cluster:
    if spec.stack == "dht":
        return DhtCluster(n=spec.nodes, replication=spec.replication, sim=sim)
    config = DataFlasksConfig(num_slices=spec.num_slices, **spec.config)
    return DataFlasksCluster(n=spec.nodes, config=config, sim=sim)


def _converge(spec: ScenarioSpec, cluster: Cluster) -> bool:
    if isinstance(cluster, DhtCluster):
        cluster.stabilize(spec.warmup)
        return cluster.ring_is_consistent()
    cluster.warm_up(spec.warmup)
    return cluster.wait_for_slices(timeout=spec.convergence_timeout)


def _inject_churn(spec: ScenarioSpec, cluster: Cluster) -> Optional[ChurnController]:
    if spec.churn is None:
        return None
    cluster.sim.run_for(spec.churn.start)
    controller = cluster.churn_controller()
    if spec.churn.kind == "correlated":
        controller.kill_fraction(spec.churn.fraction)
    else:
        model = spec.churn.build(population=spec.nodes)
        controller.apply(model, horizon=spec.churn.horizon)
    return controller


def _collect(
    spec: ScenarioSpec,
    cluster: Cluster,
    controller: Optional[ChurnController],
    load_stats: RunStats,
    txn_stats: Optional[RunStats],
    workload,
    metrics: Dict[str, float],
) -> None:
    groups = set(spec.metrics)
    if "workload" in groups:
        metrics["load_ops"] = float(load_stats.issued)
        metrics["load_success_rate"] = _r(load_stats.success_rate)
        if txn_stats is not None:
            metrics["txn_ops"] = float(txn_stats.issued)
            metrics["txn_success_rate"] = _r(txn_stats.success_rate)
            metrics["txn_throughput"] = _r(txn_stats.throughput)
            for kind in sorted(txn_stats.latencies):
                summary = txn_stats.latency_summary(kind)
                metrics[f"latency_{kind}_p50"] = _r(summary["p50"])
                metrics[f"latency_{kind}_p99"] = _r(summary["p99"])
            metrics["txn_messages_per_node"] = _r(txn_stats.messages_per_node)
    if "messages" in groups:
        load = cluster.server_message_load()
        metrics["messages_sent_per_node"] = _r(load["sent"])
        metrics["messages_received_per_node"] = _r(load["received"])
        metrics["messages_per_node"] = _r(load["handled"])
    if "population" in groups:
        metrics["population_alive"] = float(sum(1 for s in cluster.servers if s.alive))
        metrics["population_total"] = float(len(cluster.servers))
        metrics["churn_joins"] = float(controller.joins if controller else 0)
        metrics["churn_leaves"] = float(controller.leaves if controller else 0)
    if spec.stack == "core":
        alive = [s for s in cluster.servers if s.alive]
        if "slices" in groups and alive:
            hist = slice_histogram(alive)
            populated = [hist.get(i, 0) for i in range(cluster.config.num_slices)]
            metrics["slices_total"] = float(cluster.config.num_slices)
            metrics["slices_empty"] = float(sum(1 for c in populated if c == 0))
            metrics["slice_population_min"] = float(min(populated))
            metrics["slice_population_max"] = float(max(populated))
            metrics["slice_unassigned_fraction"] = _r(unassigned_fraction(alive))
        if "replication" in groups:
            sample = [
                workload.key_for(i)
                for i in range(min(workload.record_count, REPLICATION_SAMPLE))
            ]
            levels = [cluster.replication_level(key) for key in sample]
            metrics["replication_mean"] = _r(mean(levels))
            metrics["replication_min"] = float(min(levels)) if levels else 0.0
            metrics["replication_lost"] = float(sum(1 for l in levels if l == 0))


def _r(value: float) -> float:
    """Round for stable, readable summaries (determinism does not depend
    on this, but 17-digit floats make tables unreadable)."""
    return round(float(value), 6)

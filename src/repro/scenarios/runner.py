"""Deterministic scenario execution.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into one simulated experiment and returns a :class:`ScenarioResult`
whose metrics are a flat, sorted ``name -> float`` mapping. Everything
random flows from the simulation's seeded RNG registry plus the workload
runner's derived seed — including the nemesis fault schedule, whose
victims come from the dedicated ``faults`` stream — so two runs of the
same spec and seed produce *byte-identical* summaries
(:meth:`ScenarioResult.summary_json`), the reproducibility contract the
CLI and tests assert.

The runner is stack-neutral: ``spec.stack`` resolves through the backend
registry (:mod:`repro.backends`) to a
:class:`~repro.backends.base.StoreBackend`, which owns deployment,
convergence, the heal-probe predicate and the stack-specific metric
blocks. Adding a stack never touches this module.

Timeline: deploy -> warmup/convergence -> load -> settle -> arm the
nemesis schedule and churn -> transaction phase (kept running until the
last fault heals) -> time-to-heal measurement -> cooldown -> collect.

The transaction phase is driven closed-loop
(:class:`~repro.workload.runner.WorkloadRunner`, the default) or
open-loop (:class:`~repro.workload.openloop.OpenLoopRunner`, when
``spec.workload.mode == "open"``) — both share one consistency
observer, and the open engine's arrival times come from a dedicated
derived RNG stream, so either mode keeps the byte-identical replay
contract.

:func:`run_sweep` repeats a spec over several seeds and aggregates the
per-seed metrics through :func:`repro.analysis.aggregate.aggregate_rows`.
Pass ``jobs > 1`` to fan the seeds out over worker processes
(:class:`~concurrent.futures.ProcessPoolExecutor`): each seed is an
independent deterministic run, specs and results are plain picklable
dataclasses, and results are reassembled in seed order, so the sweep's
aggregate is byte-identical to the serial path.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import aggregate_rows
from repro.analysis.consistency import count_write_losses
from repro.backends import StoreBackend, get_backend
from repro.backends.base import round_metric as _r
from repro.errors import ConfigurationError
from repro.churn.controller import ChurnController
from repro.faults.nemesis import Nemesis
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import derive_seed
from repro.sim.simulator import Simulation, relaxed_gc
from repro.workload.openloop import OpenLoopRunner, OpenLoopStats
from repro.workload.runner import RunStats, WorkloadRunner

__all__ = ["ScenarioResult", "SweepResult", "run_scenario", "run_sweep"]

# Key-sample cap for the acked-vs-retained write-loss audit.
CONSISTENCY_SAMPLE = 200


@dataclass
class ScenarioResult:
    """Outcome of one scenario run at one seed."""

    scenario: str
    seed: int
    metrics: Dict[str, float]

    def summary_json(self) -> str:
        """Canonical serialisation: sorted keys, fixed float formatting.

        Two runs of the same spec+seed must produce byte-identical output;
        the determinism tests and the CLI ``--summary`` flag rely on it.
        """
        return json.dumps(
            {"scenario": self.scenario, "seed": self.seed, "metrics": self.metrics},
            sort_keys=True,
        )


@dataclass
class SweepResult:
    """Per-seed results plus cross-seed aggregates for one spec."""

    scenario: str
    seeds: List[int]
    results: List[ScenarioResult]
    aggregate: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, float]]:
        """One row per seed — ready for ``rows_to_table``."""
        return [dict(r.metrics, seed=r.seed) for r in self.results]

    def summary_json(self) -> str:
        """Canonical serialisation of the cross-seed aggregate.

        Sorted keys, default float repr — byte-identical for the same
        spec + seeds regardless of ``jobs`` (the parallel-vs-serial
        determinism check in CI compares these bytes directly).
        """
        return json.dumps(
            {
                "scenario": self.scenario,
                "seeds": self.seeds,
                "aggregate": self.aggregate,
            },
            sort_keys=True,
        )


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    recorder=None,
    sanitize: bool = False,
    isolation_check: bool = False,
    protocol_coverage: bool = False,
) -> ScenarioResult:
    """Execute ``spec`` once; ``seed`` overrides the spec's default.

    ``recorder`` is an optional
    :class:`~repro.obs.recorder.FlightRecorder` the caller owns (the
    CLI builds one from ``spec.observability`` plus its flags, then
    writes the artifact directory after the run). The recorder's probes
    are RNG-free and event-order-neutral, and its timeline probe events
    are subtracted from ``events_processed``, so a recorded run returns
    byte-identical metrics to an unrecorded one — the obs determinism
    contract CI byte-compares.

    ``sanitize`` arms :func:`repro.lint.sanitizer.determinism_guard`
    for the duration of the run: any ambient ``random.*`` call or
    ``time.time`` read on the sim path raises
    :class:`~repro.errors.DeterminismError` instead of silently
    perturbing the trajectory. The guard is trajectory-neutral — a
    sanitized run that completes returns byte-identical summaries to an
    unsanitized one, which the determinism CI matrix proves by
    byte-comparing both.

    ``isolation_check`` arms
    :func:`repro.lint.isolation.isolation_guard` the same way: every
    payload is fingerprinted at ``Network.send`` and re-verified at
    delivery, and any in-flight mutation raises
    :class:`~repro.errors.IsolationError` naming sender, receiver,
    message type and sim time. The digest is pure SHA-256 — no clock, no
    RNG — so a checked run is byte-identical to a plain one (the
    determinism CI matrix byte-compares them).

    ``protocol_coverage`` arms
    :func:`repro.lint.coverage.protocol_coverage`: every delivery is
    accounted per ``(node class, message type)`` edge, and the counters
    stay readable after the run (:func:`repro.lint.coverage.\
coverage_snapshot`) so the CLI can report which static protocol edges
    the scenario never exercised. The accountant only reads state the
    delivery path reads anyway — a covered run is byte-identical to a
    plain one (the determinism CI matrix byte-compares them too).

    Runs under :func:`~repro.sim.simulator.relaxed_gc`: simulation
    garbage is acyclic, and default cyclic-GC thresholds cost up to ~3x
    wall-clock at 1,000+ nodes for nothing. GC settings do not affect
    the trajectory, so summaries stay byte-identical either way.
    """
    seed = spec.seed if seed is None else seed
    if sanitize or isolation_check or protocol_coverage:
        from contextlib import ExitStack

        with ExitStack() as guards:
            if sanitize:
                from repro.lint.sanitizer import determinism_guard

                guards.enter_context(determinism_guard())
            if isolation_check:
                from repro.lint.isolation import isolation_guard

                guards.enter_context(isolation_guard())
            if protocol_coverage:
                from repro.lint.coverage import (
                    protocol_coverage as coverage_guard,
                )

                guards.enter_context(coverage_guard())
            guards.enter_context(relaxed_gc())
            return _run_scenario_inner(spec, seed, recorder)
    with relaxed_gc():
        return _run_scenario_inner(spec, seed, recorder)


def _run_scenario_inner(spec: ScenarioSpec, seed: int, recorder=None) -> ScenarioResult:
    if recorder is not None:
        recorder.begin_phase("deploy")
    sim = Simulation(seed=seed, latency_model=spec.latency.build(), loss_rate=spec.loss_rate)
    if recorder is not None:
        recorder.attach(sim)
    backend = get_backend(spec.stack).deploy(spec, sim)
    metrics: Dict[str, float] = {}

    cluster_size_before = len(backend.servers)
    if recorder is not None:
        recorder.begin_phase("converge")
    metrics["converged"] = float(backend.converge(spec))

    workload = spec.workload.build()
    runner = WorkloadRunner(
        backend,
        workload,
        seed=seed,
        op_timeout=spec.workload.op_timeout,
        acks_required=spec.workload.acks_required,
    )
    if recorder is not None:
        recorder.attach_observer(runner.observer)
        runner.tracer = recorder.tracer
        recorder.begin_phase("load")
    load_stats = runner.run_load_phase()
    if recorder is not None:
        recorder.begin_phase("settle")
    sim.run_for(spec.settle)

    controller, nemesis, probe = _inject_faults_and_churn(spec, backend)

    txn_stats: Optional[RunStats] = None
    if recorder is not None:
        recorder.begin_phase("transactions")
    if spec.workload.operation_count > 0:
        if spec.workload.mode == "open":
            # The concurrent engine shares the load phase's consistency
            # observer, so acked versions / staleness / availability span
            # the whole run. Its op stream gets a derived seed: the load
            # phase already consumed part of the `seed` stream, and the
            # engine must not replay it.
            engine = OpenLoopRunner(
                backend,
                workload,
                clients=spec.workload.clients,
                rate=spec.workload.rate,
                arrival=spec.workload.arrival,
                warmup=spec.workload.warmup,
                window=spec.workload.window,
                max_in_flight=spec.workload.max_in_flight,
                seed=derive_seed(seed, "workload.open"),
                op_timeout=spec.workload.op_timeout,
                acks_required=spec.workload.acks_required,
                observer=runner.observer,
            )
            if recorder is not None:
                engine.tracer = recorder.tracer
            txn_stats = engine.run_transactions(spec.workload.operation_count)
        else:
            txn_stats = runner.run_transactions(spec.workload.operation_count)
    elif spec.churn is not None:
        # No transaction phase: still play the churn schedule out so its
        # effects are visible in the population/replication metrics.
        sim.run_for(spec.churn.horizon)
    if recorder is not None:
        recorder.begin_phase("heal")
    if nemesis is not None and sim.now < nemesis.end_time:
        # The transaction phase ended before the fault schedule did:
        # keep running so every scheduled heal fires.
        sim.run_until(nemesis.end_time)
    _measure_heal(spec, backend, probe, metrics)
    sim.run_for(spec.cooldown)

    if recorder is not None:
        recorder.begin_phase("collect")
    _collect(spec, backend, controller, nemesis, runner, load_stats, txn_stats, workload, metrics)
    metrics["population_before_churn"] = float(cluster_size_before)
    metrics["sim_time"] = _r(sim.now)
    events = sim.scheduler.events_processed
    if recorder is not None:
        recorder.finish(sim)
        # Timeline probes are the one place observability adds scheduler
        # events; subtract them so obs-on metrics equal obs-off byte-for-byte.
        events -= recorder.overhead_events
    metrics["events_processed"] = float(events)
    return ScenarioResult(spec.name, seed, dict(sorted(metrics.items())))


def _run_scenario_job(
    args: Tuple[ScenarioSpec, int, bool, bool, bool]
) -> ScenarioResult:
    """Module-level shim so worker processes can unpickle the call."""
    spec, seed, sanitize, isolation_check, protocol_coverage = args
    return run_scenario(
        spec,
        seed,
        sanitize=sanitize,
        isolation_check=isolation_check,
        protocol_coverage=protocol_coverage,
    )


def run_sweep(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    jobs: int = 1,
    sanitize: bool = False,
    isolation_check: bool = False,
    protocol_coverage: bool = False,
) -> SweepResult:
    """Run ``spec`` once per seed and aggregate the metrics.

    ``jobs`` is the number of worker processes; 1 (the default) runs the
    seeds serially in this process. Every seed is an independent
    deterministic simulation and results are collected in seed order, so
    the returned :class:`SweepResult` — including
    :meth:`SweepResult.summary_json` — is byte-identical whatever the
    job count. ``sanitize`` arms the runtime determinism guard,
    ``isolation_check`` the payload isolation guard, and
    ``protocol_coverage`` the protocol-edge accountant for every seed's
    run (see :func:`run_scenario`) — in worker processes too. With
    ``jobs > 1`` the coverage counters accumulate inside each worker,
    so after a parallel sweep :func:`repro.lint.coverage.\
coverage_snapshot` in the parent only reflects serially-run seeds.

    Caveat for custom backends: workers import only :mod:`repro`
    modules, so a backend registered at runtime (``@register_backend``
    in your own script) is visible to workers only under the ``fork``
    start method (Linux default). Under ``spawn``/``forkserver``
    (macOS/Windows), keep ``jobs=1`` or put the registration in an
    importable module that registers on import in the worker.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    if jobs > 1 and len(seeds) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
            # pool.map preserves input order: results arrive seed-ordered
            # no matter which worker finishes first.
            results = list(
                pool.map(
                    _run_scenario_job,
                    [
                        (spec, s, sanitize, isolation_check, protocol_coverage)
                        for s in seeds
                    ],
                )
            )
    else:
        results = [
            run_scenario(
                spec,
                seed,
                sanitize=sanitize,
                isolation_check=isolation_check,
                protocol_coverage=protocol_coverage,
            )
            for seed in seeds
        ]
    return SweepResult(
        scenario=spec.name,
        seeds=seeds,
        results=results,
        aggregate=aggregate_rows([r.metrics for r in results]),
    )


# ---------------------------------------------------------------- internals


class _HealProbe:
    """Measures time-to-heal convergence *as it happens*: armed by the
    nemesis at every heal, it polls the backend's ``converged`` predicate
    on the scheduler, so the measurement runs concurrently with the
    transaction phase instead of starting after the workload ends (which
    would inflate heal_time by the remaining workload runtime)."""

    def __init__(self, backend: StoreBackend, interval: float = 0.5) -> None:
        self.sim = backend.sim
        self.predicate = backend.converged
        self.interval = interval
        self.anchor: Optional[float] = None
        self.heal_time: Optional[float] = None
        self._polling = False

    def arm(self) -> None:
        """Restart the measurement from now (a later heal supersedes)."""
        self.anchor = self.sim.now
        self.heal_time = None
        if not self._polling:
            self._polling = True
            self.sim.scheduler.schedule(0.0, self._check)

    def _check(self) -> None:
        if self.predicate():
            self.heal_time = self.sim.now - self.anchor
            self._polling = False
        else:
            self.sim.scheduler.schedule(self.interval, self._check)


def _inject_faults_and_churn(
    spec: ScenarioSpec, backend: StoreBackend
) -> Tuple[Optional[ChurnController], Optional[Nemesis], Optional[_HealProbe]]:
    """Arm the fault phase: one shared controller feeds both the nemesis
    schedule and spec-level churn, so fault-driven crashes/recoveries and
    churn land in the same join/leave accounting."""
    if spec.churn is None and not spec.faults:
        return None, None, None
    controller = backend.churn_controller()
    nemesis: Optional[Nemesis] = None
    probe: Optional[_HealProbe] = None
    if spec.faults:
        nemesis = Nemesis(backend.sim, cluster=backend, controller=controller)
        if "consistency" in spec.metrics:
            probe = _HealProbe(backend)
            nemesis.on_heal = probe.arm
        nemesis.schedule([f.build() for f in spec.faults])
    if spec.churn is not None:
        backend.sim.run_for(spec.churn.start)
        if spec.churn.kind == "correlated":
            controller.kill_fraction(spec.churn.fraction)
        else:
            model = spec.churn.build(population=spec.nodes)
            controller.apply(model, horizon=spec.churn.horizon)
    return controller, nemesis, probe


def _measure_heal(
    spec: ScenarioSpec,
    backend: StoreBackend,
    probe: Optional[_HealProbe],
    metrics: Dict[str, float],
) -> None:
    """Report the probe's time-to-heal, running on past the workload if
    the overlay has not reconverged by the time the schedule ends."""
    if probe is None or probe.anchor is None:
        return
    sim = backend.sim
    if probe.heal_time is None:
        sim.run_until_condition(
            lambda: probe.heal_time is not None, timeout=spec.convergence_timeout
        )
    converged = probe.heal_time is not None
    metrics["heal_converged"] = float(converged)
    metrics["heal_time"] = _r(
        probe.heal_time if converged else sim.now - probe.anchor
    )


def _collect(
    spec: ScenarioSpec,
    backend: StoreBackend,
    controller: Optional[ChurnController],
    nemesis: Optional[Nemesis],
    runner: WorkloadRunner,
    load_stats: RunStats,
    txn_stats: Optional[RunStats],
    workload,
    metrics: Dict[str, float],
) -> None:
    groups = set(spec.metrics)
    if "workload" in groups:
        metrics["load_ops"] = float(load_stats.issued)
        metrics["load_success_rate"] = _r(load_stats.success_rate)
        if txn_stats is not None:
            metrics["txn_ops"] = float(txn_stats.issued)
            metrics["txn_not_issued"] = float(txn_stats.not_issued)
            metrics["txn_success_rate"] = _r(txn_stats.success_rate)
            metrics["txn_throughput"] = _r(txn_stats.throughput)
            for kind in sorted(txn_stats.latencies):
                summary = txn_stats.latency_summary(kind)
                metrics[f"latency_{kind}_p50"] = _r(summary["p50"])
                metrics[f"latency_{kind}_p99"] = _r(summary["p99"])
            metrics["txn_messages_per_node"] = _r(txn_stats.messages_per_node)
            if isinstance(txn_stats, OpenLoopStats):
                # Open loop only: offered vs delivered is the knee curve.
                metrics["txn_offered"] = float(txn_stats.offered)
                metrics["txn_offered_rate"] = _r(txn_stats.offered_rate)
                metrics["txn_timed_out"] = float(txn_stats.timed_out)
    if "messages" in groups:
        load = backend.server_message_load()
        metrics["messages_sent_per_node"] = _r(load["sent"])
        metrics["messages_received_per_node"] = _r(load["received"])
        metrics["messages_per_node"] = _r(load["handled"])
    if "population" in groups:
        metrics["population_alive"] = float(sum(1 for s in backend.servers if s.alive))
        metrics["population_total"] = float(len(backend.servers))
        metrics["churn_joins"] = float(controller.joins if controller else 0)
        metrics["churn_leaves"] = float(controller.leaves if controller else 0)
        metrics["churn_recoveries"] = float(controller.recoveries if controller else 0)
    if "consistency" in groups:
        stale = load_stats.stale_reads + (txn_stats.stale_reads if txn_stats else 0)
        metrics["stale_reads"] = float(stale)
        avail = runner.availability.summary(now=backend.sim.now)
        metrics["unavail_keys"] = avail["keys"]
        metrics["unavail_windows"] = avail["windows"]
        metrics["unavail_window_mean"] = _r(avail["mean"])
        metrics["unavail_window_max"] = _r(avail["max"])
        losses = count_write_losses(
            backend, runner.acked_versions, sample=CONSISTENCY_SAMPLE
        )
        metrics["lost_updates"] = losses["lost_updates"]
        metrics["lost_objects"] = losses["lost_objects"]
        metrics["faults_injected"] = float(nemesis.injected if nemesis else 0)
        metrics["faults_healed"] = float(nemesis.healed if nemesis else 0)
    # Stack-specific blocks (slice health, ring health, replication) come
    # from the backend, never from stack checks here.
    backend.collect_metrics(groups, workload, metrics)

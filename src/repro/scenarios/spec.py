"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serialisable description of one
experiment: which storage stack to deploy (any backend registered with
:mod:`repro.backends` — DATAFLASKS, the Chord baseline, the oracle),
how big, over what network, under what churn and fault schedule
(``[[faults]]`` — see :mod:`repro.faults.spec`), driven by which
workload, and which metric groups to collect. Specs round-trip through plain
dicts, JSON and TOML, so experiments live in version-controlled files
instead of ad-hoc benchmark wiring (the bundled ones are the ``*.toml``
files next to this module; see :mod:`repro.scenarios.registry`).

The spec layer only *describes*; :mod:`repro.scenarios.runner` executes.
Every sub-spec knows how to build the runtime object it describes
(latency model, churn model, workload), which keeps the mapping between
file format and simulator in one place.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.churn.models import (
    JOIN,
    LEAVE,
    ChurnEvent,
    ChurnModel,
    PoissonChurn,
    SessionChurn,
    TraceChurn,
)
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.sim.network import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.workload.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WRITE_ONLY,
    CoreWorkload,
)

__all__ = [
    "LatencySpec",
    "ChurnSpec",
    "FaultSpec",
    "WorkloadSpec",
    "ObservabilitySpec",
    "ScenarioSpec",
    "WORKLOAD_PRESETS",
    "load_spec",
    "spec_from_dict",
]

WORKLOAD_PRESETS: Dict[str, CoreWorkload] = {
    w.name: w
    for w in (
        WORKLOAD_A,
        WORKLOAD_B,
        WORKLOAD_C,
        WORKLOAD_D,
        WORKLOAD_E,
        WORKLOAD_F,
        WRITE_ONLY,
    )
}

METRIC_GROUPS = (
    "workload",
    "messages",
    "population",
    "slices",
    "replication",
    "consistency",
)


@dataclass
class LatencySpec:
    """Network latency distribution.

    ``kind`` selects the model: ``fixed`` (uses ``latency``), ``uniform``
    (``low``/``high``) or ``lognormal`` (``median``/``sigma``/``cap``).
    """

    kind: str = "fixed"
    latency: float = 0.01
    low: float = 0.005
    high: float = 0.05
    median: float = 0.02
    sigma: float = 0.5
    cap: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "uniform", "lognormal"):
            raise ConfigurationError(f"unknown latency kind {self.kind!r}")

    def build(self) -> LatencyModel:
        if self.kind == "uniform":
            return UniformLatency(self.low, self.high)
        if self.kind == "lognormal":
            return LogNormalLatency(self.median, self.sigma, self.cap)
        return FixedLatency(self.latency)


@dataclass
class ChurnSpec:
    """Membership-change schedule applied during the measurement phase.

    ``start`` is seconds after the cluster is loaded and settled;
    rate-based models generate events for ``duration`` seconds.

    Kinds:

    * ``poisson`` — independent join/leave arrivals (``join_rate``,
      ``leave_rate``, per second),
    * ``session`` — constant-population turnover with ``mean_session``
      expected lifetime (effective rate scales with ``nodes``),
    * ``correlated`` — kill ``fraction`` of the alive servers at one
      instant (the paper's catastrophic rack/switch failure),
    * ``flash_crowd`` — ``joins`` new nodes arriving over ``over``
      seconds,
    * ``trace`` — replay explicit ``events`` of ``[time, "join"|"leave"]``
      pairs (times relative to ``start``).
    """

    kind: str = "poisson"
    start: float = 0.0
    duration: float = 30.0
    join_rate: float = 0.0
    leave_rate: float = 0.0
    mean_session: float = 120.0
    fraction: float = 0.0
    joins: int = 0
    over: float = 1.0
    events: List[List[Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "session", "correlated", "flash_crowd", "trace"):
            raise ConfigurationError(f"unknown churn kind {self.kind!r}")
        if self.start < 0 or self.duration < 0:
            raise ConfigurationError("churn start/duration must be non-negative")
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError("churn fraction must be in [0, 1]")
        for event in self.events:
            if len(event) != 2 or event[1] not in (JOIN, LEAVE):
                raise ConfigurationError(f"malformed trace event {event!r}")

    def build(self, population: int) -> Optional[ChurnModel]:
        """The churn model for a deployment of ``population`` servers.

        ``correlated`` returns ``None`` — a fractional mass failure needs
        the live population at failure time, so the runner applies it
        directly via :meth:`ChurnController.kill_fraction`.
        """
        if self.kind == "poisson":
            return PoissonChurn(self.join_rate, self.leave_rate)
        if self.kind == "session":
            return SessionChurn(population, self.mean_session)
        if self.kind == "flash_crowd":
            step = self.over / max(1, self.joins)
            return TraceChurn(ChurnEvent(i * step, JOIN) for i in range(self.joins))
        if self.kind == "trace":
            return TraceChurn(ChurnEvent(t, kind) for t, kind in self.events)
        return None  # correlated

    @property
    def horizon(self) -> float:
        """How long after ``start`` the model keeps emitting events."""
        if self.kind == "correlated":
            return 0.0
        if self.kind == "flash_crowd":
            return self.over
        if self.kind == "trace":
            return max((e[0] for e in self.events), default=0.0)
        return self.duration


@dataclass
class WorkloadSpec:
    """YCSB-style workload: a preset mix, sizing, and the drive mode.

    ``preset`` names one of the core workloads (``ycsb-a`` … ``ycsb-f``,
    ``write-only``). The load phase inserts ``record_count`` items; the
    transaction phase then issues ``operation_count`` requests from the
    preset's mix (0 skips the phase, matching the paper's load-only
    evaluation).

    ``mode`` selects how the transaction phase is driven:

    * ``closed`` (default) — today's single-client closed loop
      (:class:`~repro.workload.runner.WorkloadRunner`): one operation in
      flight at a time. All pre-existing specs replay byte-identically.
    * ``open`` — the concurrent engine
      (:class:`~repro.workload.openloop.OpenLoopRunner`): operations
      arrive at ``rate`` ops/s (``arrival`` = ``poisson`` or
      ``constant``), fanned over ``clients`` client nodes, bounded by
      ``max_in_flight`` outstanding operations (0 = ``4 * clients``).
      The first ``warmup`` seconds are excluded from the reported
      statistics, and measured operations are bucketed into
      ``window``-second measurement windows.
    """

    preset: str = "write-only"
    record_count: int = 100
    operation_count: int = 0
    request_distribution: Optional[str] = None
    value_size: Optional[int] = None
    acks_required: int = 1
    op_timeout: float = 30.0
    mode: str = "closed"
    clients: int = 1
    rate: float = 0.0
    arrival: str = "poisson"
    warmup: float = 0.0
    max_in_flight: int = 0
    window: float = 5.0

    def __post_init__(self) -> None:
        if self.preset not in WORKLOAD_PRESETS:
            raise ConfigurationError(
                f"unknown workload preset {self.preset!r}; "
                f"choose from {sorted(WORKLOAD_PRESETS)}"
            )
        if self.record_count <= 0 or self.operation_count < 0:
            raise ConfigurationError("record_count must be positive, operation_count >= 0")
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(
                f"unknown workload mode {self.mode!r}; choose 'closed' or 'open'"
            )
        if self.clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if self.mode == "closed" and self.clients != 1:
            raise ConfigurationError(
                "the closed-loop runner is single-client; use mode = 'open' "
                "for concurrent clients"
            )
        if self.mode == "open" and self.rate <= 0:
            raise ConfigurationError("open-loop mode needs a positive rate (ops/s)")
        if self.arrival not in ("poisson", "constant"):
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                "choose 'poisson' or 'constant'"
            )
        if self.warmup < 0 or self.window <= 0 or self.max_in_flight < 0:
            raise ConfigurationError(
                "warmup and max_in_flight must be >= 0, window > 0"
            )

    def build(self) -> CoreWorkload:
        workload = WORKLOAD_PRESETS[self.preset].scaled(self.record_count)
        overrides: Dict[str, Any] = {}
        if self.request_distribution is not None:
            overrides["request_distribution"] = self.request_distribution
        if self.value_size is not None:
            overrides["value_size"] = self.value_size
        return replace(workload, **overrides) if overrides else workload


@dataclass
class ObservabilitySpec:
    """Flight-recorder configuration (the ``[observability]`` block).

    Everything defaults to off; a spec without the block behaves exactly
    as before the recorder existed. The CLI can override each pillar per
    run (``--timeline`` / ``--trace`` / ``--profile`` / ``--no-obs``).

    * ``timeline`` — per-``window``-second counter/damage deltas
      (:class:`~repro.obs.timeline.TimelineRecorder`).
    * ``trace`` — head-sample every ``trace_sample``-th client op (up to
      ``trace_max_ops`` sampled ops) into a Perfetto-loadable Chrome
      trace (:class:`~repro.obs.trace.OpTracer`).
    * ``profile`` — wall-clock hotspot attribution per handler type
      (:class:`~repro.obs.profile.HotspotProfiler`).
    """

    timeline: bool = False
    window: float = 5.0
    trace: bool = False
    trace_sample: int = 10
    trace_max_ops: int = 1000
    profile: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError("observability window must be positive")
        if self.trace_sample < 1:
            raise ConfigurationError("trace_sample must be >= 1")
        if self.trace_max_ops < 1:
            raise ConfigurationError("trace_max_ops must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.timeline or self.trace or self.profile

    def build(self):
        """A fresh :class:`~repro.obs.recorder.FlightRecorder` configured
        from this spec (lazy import: the spec layer only describes)."""
        from repro.obs import FlightRecorder

        return FlightRecorder.from_spec(self)


@dataclass
class ScenarioSpec:
    """One complete experiment description.

    Timeline executed by the runner::

        deploy -> warmup -> convergence -> load phase -> settle
               -> [advance churn.start; inject churn]
               -> transaction phase -> cooldown -> collect metrics

    :param stack: name of a registered storage backend — ``core``
        (DATAFLASKS), ``dht`` (Chord baseline), ``oracle`` (idealized
        ground-truth store), or anything registered via
        :func:`repro.backends.register_backend`. Unknown names raise a
        :class:`~repro.errors.ConfigurationError` listing the registry.
    :param nodes: server population at deployment.
    :param num_slices: DATAFLASKS slice count ``k`` (core-only).
    :param replication: Chord replica count (dht-only).
    :param config: extra :class:`~repro.core.config.DataFlasksConfig`
        field overrides, applied on top of the size-scaled defaults.
    :param faults: the ``[[faults]]`` nemesis schedule; each entry's
        ``start`` is relative to the beginning of the fault phase (right
        after load + settle, the same instant churn injection anchors
        to). The runner keeps the simulation running until the last
        fault has healed, even when the transaction phase ends earlier.
    :param metrics: metric groups to collect; subset of
        ``workload, messages, population, slices, replication,
        consistency``. Stack-specific groups a backend has no equivalent
        for are skipped silently (``slices`` is core-only; ``replication``
        works on every backend; consistency adds the stale-read /
        lost-update / unavailability-window / time-to-heal accounting).
    """

    name: str
    description: str = ""
    stack: str = "core"
    nodes: int = 50
    num_slices: int = 5
    replication: int = 3
    seed: int = 0
    loss_rate: float = 0.0
    warmup: float = 10.0
    convergence_timeout: float = 90.0
    settle: float = 20.0
    cooldown: float = 0.0
    latency: LatencySpec = field(default_factory=LatencySpec)
    churn: Optional[ChurnSpec] = None
    faults: List[FaultSpec] = field(default_factory=list)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ("workload", "messages", "population", "slices")
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)

    def __post_init__(self) -> None:
        # Resolve the stack against the backend registry so an unknown
        # value fails loudly at spec-construction time with the list of
        # registered backends (lazy import: backends pull in the cluster
        # facades, which this description-only module must not).
        from repro.backends import get_backend

        get_backend(self.stack)
        if self.nodes <= 0:
            raise ConfigurationError("nodes must be positive")
        if self.num_slices <= 0 or self.replication <= 0:
            raise ConfigurationError("num_slices and replication must be positive")
        self.metrics = tuple(self.metrics)
        for group in self.metrics:
            if group not in METRIC_GROUPS:
                raise ConfigurationError(
                    f"unknown metric group {group!r}; choose from {METRIC_GROUPS}"
                )

    # -------------------------------------------------------------- scaling

    def scaled(self, **overrides: Any) -> "ScenarioSpec":
        """An independent copy with top-level fields replaced — e.g. a
        smoke-test-sized variant of a 5,000-node spec
        (``spec.scaled(nodes=50)``). Sub-specs are copied too, so
        mutating the result never touches the original (bundled specs
        stay pristine across derived runs).

        ``record_count`` / ``operation_count`` are routed to the workload
        sub-spec for convenience.
        """
        workload_fields = {
            k: overrides.pop(k)
            for k in ("record_count", "operation_count")
            if k in overrides
        }
        copies: Dict[str, Any] = {
            "latency": replace(self.latency),
            "workload": replace(self.workload, **workload_fields),
            "observability": replace(self.observability),
            "config": dict(self.config),
            "faults": [
                replace(f, nodes=list(f.nodes), groups=[list(g) for g in f.groups])
                for f in self.faults
            ],
        }
        if self.churn is not None:
            copies["churn"] = replace(
                self.churn, events=[list(e) for e in self.churn.events]
            )
        copies.update(overrides)
        return replace(self, **copies)

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form that :func:`spec_from_dict` inverts exactly."""
        data = asdict(self)
        data["metrics"] = list(self.metrics)
        if self.churn is None:
            del data["churn"]
        if not self.faults:
            del data["faults"]
        if self.observability == ObservabilitySpec():
            # Mirror the churn/faults rule: an all-default block is
            # omitted so pre-observability spec files round-trip
            # unchanged (and regression-corpus TOMLs stay byte-stable).
            del data["observability"]
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _filter_kwargs(cls: type, data: Dict[str, Any], context: str) -> Dict[str, Any]:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown {context} fields: {sorted(unknown)}")
    return data


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from its dict form (inverse of
    :meth:`ScenarioSpec.to_dict`); unknown keys raise
    :class:`~repro.errors.ConfigurationError` rather than being ignored."""
    data = dict(data)
    latency = data.pop("latency", None)
    churn = data.pop("churn", None)
    faults = data.pop("faults", None)
    workload = data.pop("workload", None)
    observability = data.pop("observability", None)
    spec = ScenarioSpec(**_filter_kwargs(ScenarioSpec, data, "scenario"))
    if observability is not None:
        spec.observability = ObservabilitySpec(
            **_filter_kwargs(
                ObservabilitySpec, dict(observability), "observability"
            )
        )
    if latency is not None:
        spec.latency = LatencySpec(**_filter_kwargs(LatencySpec, dict(latency), "latency"))
    if churn is not None:
        churn = dict(churn)
        if "events" in churn:
            churn["events"] = [list(e) for e in churn["events"]]
        spec.churn = ChurnSpec(**_filter_kwargs(ChurnSpec, churn, "churn"))
    if faults is not None:
        spec.faults = []
        for entry in faults:
            entry = dict(entry)
            if "nodes" in entry:
                entry["nodes"] = list(entry["nodes"])
            if "groups" in entry:
                entry["groups"] = [list(g) for g in entry["groups"]]
            if "end" in entry:
                # Sugar: an absolute end instant instead of a duration.
                if "duration" in entry:
                    raise ConfigurationError(
                        "fault entry takes either duration or end, not both"
                    )
                end = entry.pop("end")
                start = entry.get("start", 0.0)
                if end <= start:
                    raise ConfigurationError(
                        f"fault end ({end}) must be after start ({start})"
                    )
                entry["duration"] = end - start
            spec.faults.append(FaultSpec(**_filter_kwargs(FaultSpec, entry, "fault")))
    if workload is not None:
        spec.workload = WorkloadSpec(
            **_filter_kwargs(WorkloadSpec, dict(workload), "workload")
        )
    return spec


def load_spec(path: str) -> ScenarioSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as f:
            return spec_from_dict(tomllib.load(f))
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as f:
            return spec_from_dict(json.load(f))
    raise ConfigurationError(f"unsupported spec format: {path!r} (use .toml or .json)")

"""Bundled scenario registry.

The ``specs/`` directory next to this module holds the shipped scenario
files — one TOML file per scenario, named after the scenario. They are
ordinary :func:`repro.scenarios.spec.load_spec` files, so copying one
out and editing it is the intended way to derive a custom experiment.

Bundled set (see each file's ``description`` for the full story):

========================  ====================================================
``baseline``              steady-state DATAFLASKS, mixed read/update workload
``steady-churn``          constant-population node turnover during requests
``flash-crowd``           a sudden join burst doubling the population
``catastrophic-failure``  30% of servers die at one instant, no grace period
``skewed-ycsb``           zipfian hotspot reads (YCSB-B shape)
``heterogeneous-latency`` lognormal WAN latency plus message loss
``dht-baseline``          the Chord stack under the catastrophic failure
``scale-5k``              the paper-scale 5,000-node write-only run
``scale-20k``             4x the paper's ceiling — the engine-overhaul
                          headroom yardstick (very slow at full size)
``asymmetric-partition``  a one-way partition isolates 30% mid-run, then heals
``slow-quartile``         a quarter of the servers get slow, lossy links
``crash-recover-wave``    30% crash and later restart with retained stores
``burst-loss``            a 60%-loss window hits every link at once
``dht-crash-recover``     the Chord ring under the crash-recover wave,
                          time-to-heal measured on ring consistency
``oracle-baseline``       the idealized ground-truth store, steady state
``oracle-fault-wave``     the oracle under crashes + loss: availability
                          without consistency cost, the vs-ideal yardstick
``open-loop``             4 concurrent clients offering Poisson load at a
                          fixed rate — the concurrent-engine smoke
``flight-recorder``       burst loss then a partition with the timeline
                          and op traces enabled in-spec — the obs demo
========================  ====================================================
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, load_spec

__all__ = ["SPEC_DIR", "bundled_names", "load_bundled", "load_all_bundled"]

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def bundled_names() -> List[str]:
    """Names of all shipped scenarios, sorted."""
    return sorted(
        entry[: -len(".toml")]
        for entry in os.listdir(SPEC_DIR)
        if entry.endswith(".toml")
    )


def load_bundled(name: str) -> ScenarioSpec:
    """Load one shipped scenario by name."""
    path = os.path.join(SPEC_DIR, f"{name}.toml")
    if not os.path.isfile(path):
        raise ConfigurationError(
            f"unknown scenario {name!r}; bundled: {bundled_names()}"
        )
    return load_spec(path)


def load_all_bundled() -> Dict[str, ScenarioSpec]:
    """All shipped scenarios, keyed by name."""
    return {name: load_bundled(name) for name in bundled_names()}

"""Declarative fault schedules for scenario specs.

A :class:`FaultSpec` is one entry of a scenario's ``[[faults]]`` array:
what kind of fault, when it starts (seconds after the fault phase
begins, i.e. after load + settle), how long it lasts (``duration``, or
equivalently an absolute ``end`` instant in spec files — rejected when
it does not lie after ``start``), and who it hits.
``build()`` maps it onto the runtime injector from
:mod:`repro.faults.injectors`; parsing/serialisation follows the same
dataclass round-trip conventions as the rest of
:mod:`repro.scenarios.spec`.

Kinds:

* ``partition`` — isolate ``fraction`` of the servers (or explicit
  ``groups``) for ``duration`` seconds; ``symmetric = false`` makes the
  cut one-way (the isolated side cannot send out),
* ``degrade`` — give ``fraction`` of the servers (or explicit ``nodes``)
  lossy/slow links: extra drop chance ``loss`` and/or ``extra_latency``
  seconds per message,
* ``burst_loss`` — raise global message loss by ``loss`` for the window,
* ``crash_recover`` — crash ``fraction`` of the servers (or explicit
  ``nodes``) at ``start``; they restart in place, stores retained, at
  ``start + duration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.faults.injectors import (
    BurstLossFault,
    CrashRecoverFault,
    DegradeFault,
    FaultInjector,
    PartitionFault,
)

__all__ = ["FAULT_KINDS", "FaultSpec"]

FAULT_KINDS = ("partition", "degrade", "burst_loss", "crash_recover")


@dataclass
class FaultSpec:
    """One scheduled fault in a scenario's ``[[faults]]`` schedule."""

    kind: str
    start: float = 0.0
    duration: float = 10.0
    fraction: float = 0.25
    symmetric: bool = True
    loss: float = 0.0
    extra_latency: float = 0.0
    nodes: List[int] = field(default_factory=list)
    groups: List[List[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ConfigurationError("fault start must be non-negative")
        if self.duration <= 0:
            raise ConfigurationError("fault duration must be positive")
        for group in self.groups:
            if not group:
                raise ConfigurationError(
                    "fault target groups must not be empty; drop the entry instead"
                )
        # Kind-specific constraints surface at spec time, not run time:
        # validation (and `repro scenarios validate`) just builds.
        self.build()

    def build(self) -> FaultInjector:
        """The runtime injector this entry describes."""
        if self.kind == "partition":
            return PartitionFault(
                start=self.start,
                duration=self.duration,
                fraction=self.fraction,
                groups=self.groups or None,
                symmetric=self.symmetric,
            )
        if self.kind == "degrade":
            return DegradeFault(
                start=self.start,
                duration=self.duration,
                fraction=self.fraction,
                nodes=self.nodes or None,
                loss=self.loss,
                extra_latency=self.extra_latency,
            )
        if self.kind == "burst_loss":
            return BurstLossFault(start=self.start, duration=self.duration, loss=self.loss)
        return CrashRecoverFault(
            start=self.start,
            duration=self.duration,
            fraction=self.fraction,
            nodes=self.nodes or None,
        )

    @property
    def end(self) -> float:
        return self.start + self.duration

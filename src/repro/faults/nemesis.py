"""The nemesis engine: clock-scheduled fault orchestration.

A :class:`Nemesis` takes a list of
:class:`~repro.faults.injectors.FaultInjector` and schedules every
inject/heal action on the simulation scheduler, relative to one base
instant (by default the moment :meth:`Nemesis.schedule` is called — the
scenario runner calls it right after the settle phase). It keeps the
accounting the consistency/availability metrics need: how many faults
fired, how many healed, and when the *last* heal happened (the anchor
for time-to-heal convergence measurements).

Every fault firing is also counted in the metrics registry
(``fault.injected.<kind>`` / ``fault.healed.<kind>``), so fault activity
shows up next to message accounting in ``MetricsRegistry.snapshot()``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.faults.injectors import FaultContext, FaultInjector

__all__ = ["Nemesis"]


class Nemesis:
    """Drives a fault schedule against one simulation.

    :param sim: the simulation under attack.
    :param cluster: optional deployment facade; scopes victims to its
        servers (clients are never fault victims).
    :param controller: optional shared
        :class:`~repro.churn.controller.ChurnController` so crash-recover
        and churn injectors land in the same join/leave accounting as
        spec-level churn.
    """

    def __init__(self, sim, cluster=None, controller=None) -> None:
        self.sim = sim
        self.ctx = FaultContext(sim, cluster=cluster, controller=controller)
        self.injected = 0
        self.healed = 0
        self.last_heal_time: Optional[float] = None
        # Invoked (no args) right after every heal — the runner hangs its
        # time-to-heal convergence probe here.
        self.on_heal: Optional[Callable[[], None]] = None
        self._end_time = sim.now
        self._scheduled: List[FaultInjector] = []

    # ----------------------------------------------------------- schedule

    def schedule(self, injectors: Iterable[FaultInjector], base: Optional[float] = None) -> int:
        """Schedule all ``injectors`` relative to ``base`` (now by
        default); returns how many were scheduled. May be called more
        than once — schedules compose."""
        base = self.sim.now if base is None else base
        count = 0
        for injector in injectors:
            self.sim.scheduler.schedule_at(base + injector.start, self._inject, injector)
            if injector.needs_heal:
                self.sim.scheduler.schedule_at(base + injector.end, self._heal, injector)
            self._end_time = max(self._end_time, base + injector.end)
            self._scheduled.append(injector)
            count += 1
        return count

    @property
    def end_time(self) -> float:
        """Absolute virtual time at which the last scheduled fault ends."""
        return self._end_time

    @property
    def scheduled(self) -> List[FaultInjector]:
        return list(self._scheduled)

    # ------------------------------------------------------------- firing

    def _inject(self, injector: FaultInjector) -> None:
        injector.inject(self.ctx)
        self.injected += 1
        self.ctx.metrics.inc(f"fault.injected.{injector.kind}")

    def _heal(self, injector: FaultInjector) -> None:
        injector.heal(self.ctx)
        self.healed += 1
        self.last_heal_time = self.sim.now
        self.ctx.metrics.inc(f"fault.healed.{injector.kind}")
        if self.on_heal is not None:
            self.on_heal()

"""Fault injection ("nemesis") subsystem.

Composable, clock-scheduled fault injectors with deterministic victim
selection, plus the engine that drives them and the declarative spec
entries scenarios use:

* :mod:`repro.faults.injectors` — partitions (partial/asymmetric, with
  scheduled healing), per-link degradation (slow nodes, lossy links),
  burst-loss windows, crash-recover churn, and classic churn models
  wrapped as injectors
* :mod:`repro.faults.nemesis` — :class:`Nemesis`, which schedules
  inject/heal actions on the simulation clock and keeps the accounting
  the consistency/availability metrics read
* :mod:`repro.faults.spec` — :class:`FaultSpec`, the ``[[faults]]``
  schedule entry of a :class:`~repro.scenarios.spec.ScenarioSpec`

Quickstart::

    from repro import DataFlasksCluster
    from repro.faults import Nemesis, PartitionFault

    cluster = DataFlasksCluster(n=40, seed=7)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=90)
    nemesis = Nemesis(cluster.sim, cluster=cluster,
                      controller=cluster.churn_controller())
    nemesis.schedule([PartitionFault(start=1.0, duration=10.0,
                                     fraction=0.3, symmetric=False)])
    cluster.sim.run_for(15)   # fault injects at +1s, heals at +11s
"""

from repro.faults.injectors import (
    BurstLossFault,
    ChurnFault,
    CrashRecoverFault,
    DegradeFault,
    FaultContext,
    FaultInjector,
    PartitionFault,
)
from repro.faults.nemesis import Nemesis
from repro.faults.spec import FAULT_KINDS, FaultSpec

__all__ = [
    "BurstLossFault",
    "ChurnFault",
    "CrashRecoverFault",
    "DegradeFault",
    "FAULT_KINDS",
    "FaultContext",
    "FaultInjector",
    "FaultSpec",
    "Nemesis",
    "PartitionFault",
]

"""Composable fault injectors — the nemesis vocabulary.

Each injector is a scheduled pair of actions against a running
simulation: :meth:`~FaultInjector.inject` applies the fault at
``start`` and :meth:`~FaultInjector.heal` reverts it at
``start + duration``. The :class:`~repro.faults.nemesis.Nemesis` engine
drives both off the simulation scheduler, so faults interleave with
protocol traffic exactly like real outages would.

Determinism: victims are drawn from the dedicated ``faults`` RNG stream
over the *sorted* alive population at injection time, never from global
:mod:`random` state — same spec + seed therefore picks the same victims
no matter what else runs in the simulation.

The vocabulary (paper Section I: "faults and churn become the rule
instead of the exception"):

* :class:`PartitionFault` — partial partitions with scheduled healing,
  symmetric or asymmetric (the isolated group cannot *send* across the
  cut but still hears the other side),
* :class:`DegradeFault` — per-link degradation: slow nodes (extra
  latency) and lossy links for a subset of the population,
* :class:`BurstLossFault` — a window of heavy global message loss,
* :class:`CrashRecoverFault` — nodes crash and later restart in place
  with their retained store (:meth:`ChurnController.recover`), instead
  of joining fresh,
* :class:`ChurnFault` — any :class:`~repro.churn.models.ChurnModel`
  wrapped as an injector, unifying classic churn with the nemesis
  schedule.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.churn.models import ChurnModel
from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "FaultContext",
    "FaultInjector",
    "PartitionFault",
    "DegradeFault",
    "BurstLossFault",
    "CrashRecoverFault",
    "ChurnFault",
]


class FaultContext:
    """What injectors act on: the simulation, its network, and — when the
    nemesis drives a deployment facade — the cluster and a shared
    :class:`~repro.churn.controller.ChurnController`.

    Scoping mirrors churn: with a cluster, faults hit *servers* only
    (co-simulated clients model the measurement harness, never fault
    victims).
    """

    def __init__(self, sim, cluster=None, controller=None, rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.controller = controller
        self.rng = rng if rng is not None else sim.rng_registry.stream("faults")

    @property
    def network(self):
        return self.sim.network

    @property
    def metrics(self):
        return self.sim.metrics

    def population(self) -> List[int]:
        """Sorted ids of the alive fault-eligible nodes."""
        if self.cluster is not None:
            nodes = [s for s in self.cluster.servers if s.alive]
        else:
            nodes = self.sim.alive_nodes()
        return sorted(node.id for node in nodes)

    def pick(self, fraction: float, explicit: Sequence[int]) -> List[int]:
        """The victim set: ``explicit`` ids if given, else a random
        ``fraction`` of the population (at least one node)."""
        if explicit:
            return list(explicit)
        population = self.population()
        if not population:
            return []
        count = min(len(population), max(1, int(len(population) * fraction)))
        return self.rng.sample(population, count)


class FaultInjector:
    """Base class: a fault active on ``[start, start + duration)``.

    ``start`` is relative to when the schedule is handed to the nemesis
    (the runner hands it over right after the settle phase, alongside
    churn injection).

    Stateful injectors keep their revert state (block rules, condition
    tokens, victim sets) in a FIFO of *activations*: one entry pushed per
    :meth:`inject`, the oldest popped per :meth:`heal`. A single injector
    instance may therefore be scheduled for several windows (the nemesis
    composes schedules) without one window's heal reverting — or leaking
    — another's state; inject/heal pairs match FIFO because every window
    of one injector has the same duration.
    """

    kind = "fault"
    needs_heal = True

    def __init__(self, start: float = 0.0, duration: float = 10.0) -> None:
        if start < 0:
            raise ConfigurationError("fault start must be non-negative")
        if duration <= 0:
            raise ConfigurationError("fault duration must be positive")
        self.start = start
        self.duration = duration

    @property
    def end(self) -> float:
        return self.start + self.duration

    def inject(self, ctx: FaultContext) -> None:
        raise NotImplementedError

    def heal(self, ctx: FaultContext) -> None:
        """Revert the fault; default is nothing to revert."""


class PartitionFault(FaultInjector):
    """A partial network partition with scheduled healing.

    Without explicit ``groups``, a random ``fraction`` of the population
    is isolated from the rest. ``symmetric=False`` makes the cut
    one-way: the isolated group's outbound messages are dropped while
    inbound traffic still arrives (a node that hears acks and gossip but
    whose own replies vanish — the classic half-broken link).

    Explicit ``groups`` are cut pairwise when symmetric; when
    asymmetric, the first group is the isolated one. A *single* explicit
    group is isolated from the rest of the population (mirroring the
    fraction path); with two or more groups, unmentioned nodes stay
    connected to everyone.
    """

    kind = "partition"

    def __init__(
        self,
        start: float = 0.0,
        duration: float = 10.0,
        fraction: float = 0.25,
        groups: Optional[Sequence[Sequence[int]]] = None,
        symmetric: bool = True,
    ) -> None:
        super().__init__(start, duration)
        if not 0.0 < fraction < 1.0 and not groups:
            raise ConfigurationError("partition fraction must be in (0, 1)")
        self.fraction = fraction
        self.groups = [list(g) for g in groups] if groups else []
        self.symmetric = symmetric
        # FIFO of activations: one list of block-rule ids per inject.
        self._rules: List[List[int]] = []

    def inject(self, ctx: FaultContext) -> None:
        if self.groups:
            groups = [list(g) for g in self.groups if g]
        else:
            groups = [ctx.pick(self.fraction, ())]
        if len(groups) == 1:
            # One group (explicit or fraction-picked): isolate it from
            # the rest of the population.
            chosen = set(groups[0])
            rest = [i for i in ctx.population() if i not in chosen]
            groups = [g for g in (groups[0], rest) if g]
        rules: List[int] = []
        self._rules.append(rules)
        if len(groups) < 2:
            return
        net = ctx.network
        if self.symmetric:
            for i in range(len(groups)):
                for j in range(i + 1, len(groups)):
                    rules.append(net.block(groups[i], groups[j]))
                    rules.append(net.block(groups[j], groups[i]))
        else:
            others = [i for group in groups[1:] for i in group]
            rules.append(net.block(groups[0], others))

    def heal(self, ctx: FaultContext) -> None:
        for rule in self._rules.pop(0) if self._rules else ():
            ctx.network.unblock(rule)


class DegradeFault(FaultInjector):
    """Per-link degradation for a subset of nodes: extra one-way latency
    (slow nodes / latency spikes) and/or an extra independent drop chance
    (lossy links) on every link touching a victim.

    Applied as a condition *layer* (:meth:`Network.add_conditions`), so
    overlapping degrade faults whose victim sets intersect compose
    instead of clobbering each other.
    """

    kind = "degrade"

    def __init__(
        self,
        start: float = 0.0,
        duration: float = 10.0,
        fraction: float = 0.25,
        nodes: Optional[Sequence[int]] = None,
        loss: float = 0.0,
        extra_latency: float = 0.0,
    ) -> None:
        super().__init__(start, duration)
        if not 0.0 < fraction < 1.0 and not nodes:
            raise ConfigurationError("degrade fraction must be in (0, 1)")
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError("degrade loss must be in [0, 1]")
        if extra_latency < 0:
            raise ConfigurationError("extra latency must be non-negative")
        if loss == 0.0 and extra_latency == 0.0:
            raise ConfigurationError("degrade fault needs loss and/or extra_latency")
        self.fraction = fraction
        self.nodes = list(nodes) if nodes else []
        self.loss = loss
        self.extra_latency = extra_latency
        # FIFO of activations: one condition-layer token (and its victim
        # set, for observability) per inject.
        self._tokens: List[int] = []
        self._victims: List[List[int]] = []

    def inject(self, ctx: FaultContext) -> None:
        victims = ctx.pick(self.fraction, self.nodes)
        self._victims.append(victims)
        self._tokens.append(
            ctx.network.add_conditions(
                victims, loss=self.loss, extra_latency=self.extra_latency
            )
        )

    def heal(self, ctx: FaultContext) -> None:
        if self._tokens:
            ctx.network.remove_conditions(self._tokens.pop(0))
            self._victims.pop(0)


class BurstLossFault(FaultInjector):
    """A burst-loss window: global message loss jumps by ``loss`` for the
    fault's duration (combined independently with the baseline rate and
    with any other open window — concurrent bursts stack)."""

    kind = "burst_loss"

    def __init__(self, start: float = 0.0, duration: float = 10.0, loss: float = 0.5) -> None:
        super().__init__(start, duration)
        if not 0.0 < loss <= 1.0:
            raise ConfigurationError("burst loss must be in (0, 1]")
        self.loss = loss
        # FIFO of activations: one burst-window token per inject.
        self._tokens: List[int] = []

    def inject(self, ctx: FaultContext) -> None:
        self._tokens.append(ctx.network.add_burst_loss(self.loss))

    def heal(self, ctx: FaultContext) -> None:
        if self._tokens:
            ctx.network.remove_burst_loss(self._tokens.pop(0))


class CrashRecoverFault(FaultInjector):
    """Crash a set of nodes, then restart them in place at heal time.

    Recovery goes through :meth:`ChurnController.recover` when the
    context carries a controller (so recoveries appear in the churn
    accounting); the recovered node keeps its Data Store — the
    difference from a correlated failure followed by fresh joins, and
    the reason time-to-heal is about *reconciliation*, not re-replication
    from scratch.
    """

    kind = "crash_recover"

    def __init__(
        self,
        start: float = 0.0,
        duration: float = 10.0,
        fraction: float = 0.25,
        nodes: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(start, duration)
        if not 0.0 < fraction < 1.0 and not nodes:
            raise ConfigurationError("crash_recover fraction must be in (0, 1)")
        self.fraction = fraction
        self.nodes = list(nodes) if nodes else []
        # FIFO of activations: one victim set per inject. A node that is
        # already dead at inject time is never claimed, so an overlapping
        # fault's victims stay owned by (and healed with) that fault.
        self._victims: List[List[int]] = []

    def inject(self, ctx: FaultContext) -> None:
        victims: List[int] = []
        self._victims.append(victims)
        for node_id in ctx.pick(self.fraction, self.nodes):
            if ctx.controller is not None:
                node = ctx.controller.kill(node_id)
            else:
                node = ctx.sim.nodes.get(node_id)
                if node is not None and node.alive:
                    node.crash()
                else:
                    node = None
            if node is not None:
                victims.append(node_id)

    def heal(self, ctx: FaultContext) -> None:
        for node_id in self._victims.pop(0) if self._victims else ():
            if ctx.controller is not None:
                ctx.controller.recover(node_id)
            else:
                self._recover_bare(ctx, node_id)

    @staticmethod
    def _recover_bare(ctx: FaultContext, node_id: int) -> None:
        node = ctx.sim.nodes.get(node_id)
        if node is None or node.alive:
            return
        node.start()


class ChurnFault(FaultInjector):
    """Classic churn as just another injector: schedules a
    :class:`~repro.churn.models.ChurnModel`'s events over the fault's
    duration through the context's controller. Nothing to heal — the
    events themselves are the fault."""

    kind = "churn"
    needs_heal = False

    def __init__(self, model: ChurnModel, start: float = 0.0, duration: float = 10.0) -> None:
        super().__init__(start, duration)
        self.model = model

    def inject(self, ctx: FaultContext) -> None:
        if ctx.controller is None:
            raise SimulationError("ChurnFault needs a context with a ChurnController")
        ctx.controller.apply(self.model, horizon=self.duration)

"""The hunt loop: sample → score → rank → shrink → export.

:func:`run_hunt` is the Jepsen-style adversarial search over nemesis
schedules: for each candidate index up to the budget it draws a
randomized fault schedule (:mod:`repro.search.sampler`), welds it onto a
small base experiment, and scores the damage it does to the store under
test relative to the ``oracle`` backend on the identical schedule
(:mod:`repro.search.scorer`). Candidates whose consistency counters
come back non-zero are *violations*; :func:`shrink_candidate`
delta-debugs one down to a minimal reproducer
(:mod:`repro.search.shrinker`), and :func:`export_candidate` writes it
as a TOML regression spec (:mod:`repro.search.exporter`) that
``tests/test_regressions.py`` replays forever after.

Everything derives from one ``search_seed``: candidate ``i``'s schedule
comes from the ``hunt.schedule.i`` stream and its scenario seed from the
``hunt.run.i`` stream, so the whole hunt — and any single candidate —
replays byte-identically (:meth:`HuntResult.log_json` is the canonical
log CI byte-compares across two identical hunts).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.search.exporter import export_regression
from repro.search.sampler import SampleSpace, sample_schedule
from repro.search.scorer import DamageScore, Weights, attach_faults, score_scenario
from repro.search.shrinker import ShrinkResult, shrink_schedule
from repro.sim.rng import derive_seed

__all__ = [
    "HuntConfig",
    "Candidate",
    "HuntResult",
    "base_scenario",
    "run_hunt",
    "shrink_candidate",
    "export_candidate",
]


@dataclass
class HuntConfig:
    """One hunt's complete parameterisation.

    ``budget`` is the number of candidate schedules sampled and scored.
    The base experiment is deliberately small (default 20 nodes, a
    read-write YCSB-A mix) — the hunter's job is breadth, and a schedule
    that breaks consistency at 20 nodes is a reproducer worth keeping;
    scale-sensitivity studies belong to ``repro scenarios sweep``.

    ``timeline_window`` > 0 attaches a per-candidate damage timeline
    (that many simulated seconds per window) to every target run; the
    hunt log then shows *when* each candidate's damage landed relative
    to its schedule. Off (0.0) by default, which keeps existing hunt
    logs byte-identical.
    """

    search_seed: int = 0
    budget: int = 8
    stack: str = "core"
    nodes: int = 20
    records: int = 8
    operations: int = 40
    preset: str = "ycsb-a"
    space: SampleSpace = field(default_factory=SampleSpace)
    weights: Weights = field(default_factory=Weights)
    oracle_stack: str = "oracle"
    timeline_window: float = 0.0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigurationError(f"hunt budget must be >= 1, got {self.budget}")
        if self.stack == self.oracle_stack:
            raise ConfigurationError(
                "hunting the oracle against itself scores zero by construction; "
                "pick a different --stack"
            )


@dataclass
class Candidate:
    """One sampled schedule and the damage it caused."""

    index: int
    faults: List[FaultSpec]
    score: DamageScore

    @property
    def violation(self) -> bool:
        return self.score.violation

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "index": self.index,
            "faults": [asdict(f) for f in self.faults],
            "score": self.score.components(),
        }
        if self.score.timeline is not None:
            # Only present when the hunt asked for damage timelines, so
            # default hunt logs stay byte-identical to pre-obs hunts.
            data["timeline"] = self.score.timeline
        return data


@dataclass
class HuntResult:
    """Every candidate of one hunt, in sampling order."""

    config: HuntConfig
    candidates: List[Candidate]

    @property
    def violations(self) -> List[Candidate]:
        return [c for c in self.candidates if c.violation]

    @property
    def best(self) -> Optional[Candidate]:
        """The highest-damage violation (ties go to the earlier
        candidate), or ``None`` when the hunt came up clean."""
        found = self.violations
        if not found:
            return None
        return max(found, key=lambda c: (c.score.total, -c.index))

    def log_json(self) -> str:
        """Canonical hunt log: sorted keys, fixed candidate order —
        byte-identical across replays of the same config (the CI
        smoke-hunt job compares two of these directly)."""
        return json.dumps(
            {
                "search_seed": self.config.search_seed,
                "budget": self.config.budget,
                "stack": self.config.stack,
                "nodes": self.config.nodes,
                "violations": len(self.violations),
                "candidates": [c.to_dict() for c in self.candidates],
            },
            sort_keys=True,
        )


def base_scenario(config: HuntConfig, index: int) -> ScenarioSpec:
    """The fault-free base experiment candidate ``index`` runs against.

    Sized like the fault-scenario tests (small population, short
    warmup/settle) so one candidate scores in a couple of seconds; the
    per-candidate seed comes from the ``hunt.run.<index>`` stream so
    candidates never share randomness with each other or with the
    schedule sampler.
    """
    return ScenarioSpec(
        name=f"hunt-s{config.search_seed}-c{index}",
        description="adversarial hunt candidate",
        stack=config.stack,
        nodes=config.nodes,
        num_slices=3,
        seed=derive_seed(config.search_seed, f"hunt.run.{index}"),
        warmup=8.0,
        settle=6.0,
        workload=WorkloadSpec(
            preset=config.preset,
            record_count=config.records,
            operation_count=config.operations,
        ),
        metrics=("workload", "population", "consistency"),
    )


def run_hunt(
    config: HuntConfig,
    progress: Optional[Callable[[Candidate], None]] = None,
) -> HuntResult:
    """Sample and score ``config.budget`` candidate schedules;
    ``progress`` (if given) sees each candidate as it finishes."""
    candidates: List[Candidate] = []
    for index in range(config.budget):
        faults = sample_schedule(config.search_seed, index, config.space)
        spec = attach_faults(base_scenario(config, index), faults)
        score = score_scenario(
            spec, config.weights, config.oracle_stack,
            timeline_window=config.timeline_window,
        )
        candidate = Candidate(index=index, faults=faults, score=score)
        candidates.append(candidate)
        if progress is not None:
            progress(candidate)
    return HuntResult(config=config, candidates=candidates)


def shrink_candidate(
    config: HuntConfig,
    index: int,
    shrink_budget: int = 40,
    faults: Optional[List[FaultSpec]] = None,
) -> ShrinkResult:
    """Delta-debug candidate ``index`` down to a minimal reproducer.

    The schedule is re-derived from ``(search_seed, index)`` unless
    ``faults`` supplies it (e.g. the candidate is already in hand from a
    :func:`run_hunt` result); every shrink trial replays on the
    candidate's own base scenario and seed.
    """
    if faults is None:
        faults = sample_schedule(config.search_seed, index, config.space)
    base = base_scenario(config, index)

    def score_fn(trial: List[FaultSpec]) -> DamageScore:
        return score_scenario(
            attach_faults(base, trial), config.weights, config.oracle_stack
        )

    return shrink_schedule(faults, score_fn, budget=shrink_budget)


def export_candidate(
    directory: str,
    config: HuntConfig,
    index: int,
    shrunk: ShrinkResult,
    name: Optional[str] = None,
) -> str:
    """Write candidate ``index``'s shrunk reproducer as a regression
    spec in ``directory``; returns the path."""
    scenario = attach_faults(base_scenario(config, index), shrunk.faults)
    scenario.name = name or f"{scenario.name}-min"
    scenario.description = (
        f"minimal reproducer shrunk from hunt candidate {index} "
        f"of search seed {config.search_seed}"
    )
    provenance = {
        "search_seed": config.search_seed,
        "candidate": index,
        "stack": config.stack,
        "shrink_evals": shrunk.evals,
        "shrink_steps": list(shrunk.steps),
        "injectors": shrunk.injectors,
    }
    return export_regression(directory, scenario, shrunk.score, provenance)

"""Delta-debugging a violating schedule down to a minimal reproducer.

Jepsen finds a violation and hands you a thousand-line history; the
useful artifact is the three-line schedule that still breaks the store.
:func:`shrink_schedule` takes a violating fault schedule and greedily
applies reduction passes, re-scoring each trial on the full
target-vs-oracle pipeline and keeping a reduction only if the smaller
schedule *still violates*:

1. **drop injectors** — remove whole entries, one at a time,
2. **narrow windows** — halve each fault's duration (down to a floor)
   and round its start,
3. **shrink target sets** — halve victim fractions toward a floor, and
   halve explicit ``nodes`` / ``groups`` member lists.

Passes repeat until a full cycle produces no accepted reduction or the
evaluation budget runs out. Everything is deterministic: trials are
generated in a fixed order and scoring replays byte-identically, so the
same input shrinks to the same reproducer every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.search.scorer import DamageScore

__all__ = ["ShrinkResult", "shrink_schedule"]

# Floors the reduction passes never cross: a window shorter than this or
# a victim set thinner than this is no longer a meaningful fault.
MIN_DURATION = 1.0
MIN_FRACTION = 0.05

ScoreFn = Callable[[List[FaultSpec]], DamageScore]


@dataclass
class ShrinkResult:
    """A minimal (under the pass vocabulary and budget) reproducer."""

    faults: List[FaultSpec]
    score: DamageScore
    evals: int
    steps: List[str] = field(default_factory=list)
    exhausted: bool = False  # budget ran out mid-cycle

    @property
    def injectors(self) -> int:
        return len(self.faults)


def shrink_schedule(
    faults: List[FaultSpec],
    score_fn: ScoreFn,
    budget: int = 40,
) -> ShrinkResult:
    """Greedily reduce ``faults`` while ``score_fn`` still reports a
    violation; ``budget`` caps the number of score evaluations (the
    initial confirmation of the input schedule counts as one)."""
    if budget < 1:
        raise ConfigurationError(f"shrink budget must be >= 1, got {budget}")
    score = score_fn(faults)
    if not score.violation:
        raise ConfigurationError(
            "shrink_schedule needs a violating schedule to start from"
        )
    state = _Shrink(list(faults), score, score_fn, budget - 1)
    changed = True
    while changed and not state.exhausted:
        changed = False
        changed |= state.pass_drop()
        changed |= state.pass_narrow()
        changed |= state.pass_thin()
    return ShrinkResult(
        faults=state.faults,
        score=state.score,
        evals=state.evals + 1,
        steps=state.steps,
        exhausted=state.exhausted,
    )


class _Shrink:
    def __init__(
        self, faults: List[FaultSpec], score: DamageScore, score_fn: ScoreFn, budget: int
    ) -> None:
        self.faults = faults
        self.score = score
        self.score_fn = score_fn
        self.budget = budget
        self.evals = 0
        self.steps: List[str] = []
        self.exhausted = False

    def _try(self, trial: List[FaultSpec], label: str) -> bool:
        """Score ``trial``; adopt it (and log ``label``) if it still
        violates. Returns whether it was adopted."""
        if self.evals >= self.budget:
            self.exhausted = True
            return False
        self.evals += 1
        trial_score = self.score_fn(trial)
        if trial_score.violation:
            self.faults = trial
            self.score = trial_score
            self.steps.append(label)
            return True
        return False

    def pass_drop(self) -> bool:
        """Try removing each injector; keep the schedule without it when
        the remainder still violates."""
        changed = False
        i = 0
        while i < len(self.faults) and len(self.faults) > 1 and not self.exhausted:
            fault = self.faults[i]
            trial = self.faults[:i] + self.faults[i + 1 :]
            if self._try(trial, f"drop {fault.kind}@{fault.start:g}"):
                changed = True  # same index now names the next injector
            else:
                i += 1
        return changed

    def pass_narrow(self) -> bool:
        """Halve each fault's window (floored) and snap starts to one
        decimal, so the reproducer's timeline reads cleanly."""
        changed = False
        for i in range(len(self.faults)):
            if self.exhausted:
                break
            fault = self.faults[i]
            duration = round(max(MIN_DURATION, fault.duration / 2.0), 2)
            start = round(fault.start, 1)
            if duration >= fault.duration and start == fault.start:
                continue
            trial = list(self.faults)
            trial[i] = replace(fault, start=start, duration=duration)
            if self._try(trial, f"narrow {fault.kind} to {duration:g}s"):
                changed = True
        return changed

    def pass_thin(self) -> bool:
        """Halve victim fractions toward the floor and halve explicit
        victim lists (keep the front half — ids were drawn sorted)."""
        changed = False
        for i in range(len(self.faults)):
            if self.exhausted:
                break
            fault = self.faults[i]
            updates = {}
            if not fault.nodes and not fault.groups and fault.kind != "burst_loss":
                fraction = round(max(MIN_FRACTION, fault.fraction / 2.0), 2)
                if fraction < fault.fraction:
                    updates["fraction"] = fraction
            if len(fault.nodes) > 1:
                updates["nodes"] = fault.nodes[: (len(fault.nodes) + 1) // 2]
            if fault.groups and max(len(g) for g in fault.groups) > 1:
                updates["groups"] = [
                    g[: (len(g) + 1) // 2] if len(g) > 1 else list(g)
                    for g in fault.groups
                ]
            if not updates:
                continue
            trial = list(self.faults)
            trial[i] = replace(fault, **updates)
            if self._try(trial, f"thin {fault.kind} victims"):
                changed = True
        return changed

"""Damage scoring: a schedule's consistency cost, relative to the oracle.

A schedule is only interesting if it makes the *store under test*
misbehave in a way the idealized ``oracle`` backend — run on the
**identical** schedule, load and seed — does not. Crashed servers and
lost messages cost *any* store availability; that is the network's
fault, not the protocol's. The oracle, which cannot lose consistency by
construction, is therefore the zero line: whatever damage remains after
subtracting its run is damage the protocol itself caused.

:func:`score_scenario` runs the spec twice (target stack, then the
oracle on ``spec.scaled(stack="oracle")``) and distils a
:class:`DamageScore`:

* ``stale_reads`` / ``lost_updates`` / ``lost_objects`` — consistency
  damage, the violation signal (the oracle's are zero by construction,
  so these are the target's raw counters),
* ``unavail_excess`` — per-key unavailable seconds *beyond* what the
  oracle paid on the same schedule (protocol-induced unavailability),
* ``total`` — the scalar the hunter ranks by, a weighted sum.

Both runs are deterministic, so a score replays byte-identically for a
given spec — the regression exporter records its components as exact
expected bounds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.backends.base import round_metric
from repro.faults.spec import FaultSpec
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["DamageScore", "Weights", "score_scenario", "attach_faults"]


@dataclass(frozen=True)
class Weights:
    """How the scalar ranking weighs each damage component. Lost objects
    are worse than lost updates (the whole key vanished), which are worse
    than stale reads; excess unavailability is a tiebreaker."""

    lost_object: float = 20.0
    lost_update: float = 10.0
    stale_read: float = 1.0
    unavail_second: float = 0.2


@dataclass
class DamageScore:
    """One schedule's damage, relative to the oracle baseline.

    ``timeline`` (present only when the caller asked for one via
    ``score_scenario(..., timeline_window=...)``) is the *target* run's
    per-window damage series — when the staleness/drop damage happened,
    not just how much. It is deliberately excluded from
    :meth:`components` so regression bounds and default hunt logs are
    unchanged by its existence.
    """

    stale_reads: float
    lost_updates: float
    lost_objects: float
    unavail_excess: float
    total: float
    target_metrics: Dict[str, float]
    oracle_metrics: Dict[str, float]
    timeline: Optional[List[Dict[str, float]]] = None

    @property
    def violation(self) -> bool:
        """A consistency violation: any acked state was served stale or
        lost. Pure availability damage is not a violation — the oracle
        pays it too."""
        return (self.stale_reads + self.lost_updates + self.lost_objects) > 0

    def components(self) -> Dict[str, float]:
        """The damage components as a flat, JSON-ready mapping."""
        return {
            "stale_reads": self.stale_reads,
            "lost_updates": self.lost_updates,
            "lost_objects": self.lost_objects,
            "unavail_excess": self.unavail_excess,
            "total": self.total,
            "violation": float(self.violation),
        }

    def summary_json(self) -> str:
        """Canonical serialisation (sorted keys) — byte-identical across
        replays of the same spec."""
        return json.dumps(self.components(), sort_keys=True)


def attach_faults(spec: ScenarioSpec, faults: List[FaultSpec]) -> ScenarioSpec:
    """An independent copy of ``spec`` carrying ``faults`` as its nemesis
    schedule (the hunter's way of welding a sampled schedule onto the
    base experiment)."""
    return spec.scaled(faults=list(faults))


def score_scenario(
    spec: ScenarioSpec,
    weights: Optional[Weights] = None,
    oracle_stack: str = "oracle",
    timeline_window: float = 0.0,
) -> DamageScore:
    """Run ``spec`` against its own stack and against ``oracle_stack`` on
    the identical schedule/load/seed; return the relative damage.

    ``spec.metrics`` must include the ``consistency`` group (the hunter's
    base scenarios always do). A positive ``timeline_window`` attaches a
    flight-recorder timeline to the *target* run and returns its
    per-window damage rows on the score; the recorder's probes are
    trajectory-neutral, so the score itself is unchanged.
    """
    weights = weights or Weights()
    recorder = None
    if timeline_window > 0:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(timeline=True, window=timeline_window)
    target = run_scenario(spec, recorder=recorder).metrics
    oracle_spec = spec.scaled(stack=oracle_stack, name=f"{spec.name}@{oracle_stack}")
    oracle = run_scenario(oracle_spec).metrics

    stale = _excess(target, oracle, "stale_reads")
    lost_updates = _excess(target, oracle, "lost_updates")
    lost_objects = _excess(target, oracle, "lost_objects")
    unavail_excess = round_metric(
        max(0.0, _unavail_seconds(target) - _unavail_seconds(oracle))
    )
    total = round_metric(
        weights.lost_object * lost_objects
        + weights.lost_update * lost_updates
        + weights.stale_read * stale
        + weights.unavail_second * unavail_excess
    )
    return DamageScore(
        stale_reads=stale,
        lost_updates=lost_updates,
        lost_objects=lost_objects,
        unavail_excess=unavail_excess,
        total=total,
        target_metrics=target,
        oracle_metrics=oracle,
        timeline=recorder.timeline.damage_rows() if recorder is not None else None,
    )


def _excess(target: Dict[str, float], oracle: Dict[str, float], key: str) -> float:
    """Target minus oracle, floored at zero (the oracle's consistency
    counters are zero by construction, but subtract anyway so a future
    non-ideal baseline still yields a *relative* score)."""
    return max(0.0, target.get(key, 0.0) - oracle.get(key, 0.0))


def _unavail_seconds(metrics: Dict[str, float]) -> float:
    """Total per-key unavailable seconds: window count times mean width."""
    return metrics.get("unavail_windows", 0.0) * metrics.get("unavail_window_mean", 0.0)

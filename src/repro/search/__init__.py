"""Adversarial nemesis search: a Jepsen-style consistency hunter.

The packages splits the hunt into four orthogonal pieces:

* :mod:`~repro.search.sampler` — draw randomized fault schedules from a
  search seed (byte-identical per ``(seed, index)``),
* :mod:`~repro.search.scorer` — run a schedule against the store under
  test *and* the oracle on identical inputs; the difference is the
  protocol's own damage,
* :mod:`~repro.search.shrinker` — delta-debug a violating schedule to a
  minimal reproducer,
* :mod:`~repro.search.exporter` — freeze reproducers as TOML regression
  specs with expected-damage bounds (``specs/regressions/`` runs as
  tier-1 tests).

:mod:`~repro.search.hunter` wires them into ``repro hunt run`` /
``shrink`` / ``replay``.
"""

from repro.search.exporter import (
    RegressionSpec,
    check_bounds,
    dumps_toml,
    export_regression,
    list_regressions,
    load_regression,
    scenario_to_toml,
)
from repro.search.hunter import (
    Candidate,
    HuntConfig,
    HuntResult,
    base_scenario,
    export_candidate,
    run_hunt,
    shrink_candidate,
)
from repro.search.sampler import SampleSpace, sample_schedule
from repro.search.scorer import DamageScore, Weights, attach_faults, score_scenario
from repro.search.shrinker import ShrinkResult, shrink_schedule

__all__ = [
    "Candidate",
    "DamageScore",
    "HuntConfig",
    "HuntResult",
    "RegressionSpec",
    "SampleSpace",
    "ShrinkResult",
    "Weights",
    "attach_faults",
    "base_scenario",
    "check_bounds",
    "dumps_toml",
    "export_candidate",
    "export_regression",
    "list_regressions",
    "load_regression",
    "run_hunt",
    "sample_schedule",
    "scenario_to_toml",
    "score_scenario",
    "shrink_candidate",
    "shrink_schedule",
]

"""Regression-spec export and replay loading.

Every violation the hunter shrinks becomes a permanent regression spec:
a TOML file bundling

* ``[scenario]`` — the complete :class:`~repro.scenarios.spec.ScenarioSpec`
  of the minimal reproducer (stack, population, seed, workload, and the
  shrunk ``[[scenario.faults]]`` schedule) — loadable by
  :func:`~repro.scenarios.spec.spec_from_dict` unchanged,
* ``[expect]`` — expected-damage bounds: ``<component>_min`` /
  ``<component>_max`` pairs over the :class:`~repro.search.scorer
  .DamageScore` components. Replay is deterministic, so the exporter
  records exact bounds; loosen them by hand if a spec must tolerate
  drift (they are ordinary TOML),
* ``[provenance]`` — where the reproducer came from (search seed,
  candidate index, shrink evaluations), so ``repro hunt shrink`` can
  re-derive it from two integers.

The emitter writes deterministic TOML (fixed key order, fixed float
formatting): exporting the same reproducer twice produces byte-identical
files, extending the replay contract to the exported artifact itself.

The repository keeps its found reproducers in ``specs/regressions/`` at
the repo root; ``tests/test_regressions.py`` auto-runs every spec there
as a tier-1 regression gate.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, spec_from_dict
from repro.search.scorer import DamageScore

__all__ = [
    "RegressionSpec",
    "dumps_toml",
    "scenario_to_toml",
    "export_regression",
    "load_regression",
    "list_regressions",
    "check_bounds",
]

SCHEMA_VERSION = 1

# Damage components the exporter bounds and the harness asserts.
BOUND_COMPONENTS = (
    "stale_reads",
    "lost_updates",
    "lost_objects",
    "unavail_excess",
    "total",
)

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


# ------------------------------------------------------------ TOML writing


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialise a plain mapping as TOML.

    Supports what scenario/regression specs need: strings, bools,
    ints/floats, homogeneous lists (nested lists included), nested
    mappings (as ``[table]``) and lists of mappings (as ``[[table]]``).
    Key order follows the mapping's insertion order, scalars before
    sub-tables, so output is deterministic for a deterministically built
    dict. The result round-trips through :mod:`tomllib`.
    """
    lines: List[str] = []
    _emit_table(data, prefix="", lines=lines)
    return "\n".join(lines) + "\n"


def _emit_table(table: Mapping[str, Any], prefix: str, lines: List[str]) -> None:
    scalars = [(k, v) for k, v in table.items() if not _is_table_like(v)]
    nested = [(k, v) for k, v in table.items() if _is_table_like(v)]
    for key, value in scalars:
        lines.append(f"{_format_key(key)} = {_format_value(value)}")
    for key, value in nested:
        path = f"{prefix}{_format_key(key)}"
        if isinstance(value, Mapping):
            if lines:
                lines.append("")
            lines.append(f"[{path}]")
            _emit_table(value, prefix=f"{path}.", lines=lines)
        else:  # list of mappings
            for entry in value:
                if lines:
                    lines.append("")
                lines.append(f"[[{path}]]")
                _emit_table(entry, prefix=f"{path}.", lines=lines)


def _is_table_like(value: Any) -> bool:
    if isinstance(value, Mapping):
        return True
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(isinstance(v, Mapping) for v in value)
    )


def _format_key(key: str) -> str:
    if _BARE_KEY.match(key):
        return key
    return _format_string(key)


def _format_value(value: Any) -> str:
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(f"cannot serialise non-finite float {value!r}")
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return _format_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    raise ConfigurationError(
        f"cannot serialise {type(value).__name__!r} value {value!r} as TOML"
    )


def _format_string(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
    return f'"{escaped}"'


def scenario_to_toml(spec: ScenarioSpec) -> str:
    """``spec`` as a standalone TOML document —
    :func:`~repro.scenarios.spec.load_spec` reads it back exactly
    (optional fields that are ``None`` are omitted; TOML has no null)."""
    return dumps_toml(_strip_none(spec.to_dict()))


# ------------------------------------------------------- regression specs


@dataclass
class RegressionSpec:
    """A loaded regression file: the reproducer scenario plus its
    expected-damage bounds and provenance."""

    name: str
    scenario: ScenarioSpec
    expect: Dict[str, float]
    provenance: Dict[str, Any]
    path: str = ""

    def bound(self, component: str) -> tuple:
        """``(min, max)`` for one damage component (missing bounds are
        open on that side)."""
        return (
            self.expect.get(f"{component}_min", float("-inf")),
            self.expect.get(f"{component}_max", float("inf")),
        )


def export_regression(
    directory: str,
    scenario: ScenarioSpec,
    score: DamageScore,
    provenance: Mapping[str, Any],
) -> str:
    """Write ``scenario`` + exact damage bounds as
    ``<directory>/<scenario.name>.toml``; returns the path.

    The scenario must already carry the shrunk fault schedule and the
    seed the score was measured at (the hunter guarantees both).
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        # TOML has no null; optional spec fields that are None are simply
        # omitted and come back as their defaults from spec_from_dict.
        "scenario": _strip_none(scenario.to_dict()),
        "expect": _bounds(score),
        "provenance": dict(provenance),
    }
    text = (
        "# Regression reproducer found by `repro hunt` — do not edit the\n"
        "# [scenario] table; the [expect] bounds may be loosened by hand.\n"
        + dumps_toml(doc)
    )
    _parse_regression(doc, source="export")  # round-trip sanity before writing
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{scenario.name}.toml")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path


def _strip_none(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {k: _strip_none(v) for k, v in value.items() if v is not None}
    if isinstance(value, (list, tuple)):
        return [_strip_none(v) for v in value]
    return value


def _bounds(score: DamageScore) -> Dict[str, float]:
    expect: Dict[str, float] = {}
    for component in BOUND_COMPONENTS:
        value = float(score.components()[component])
        expect[f"{component}_min"] = value
        expect[f"{component}_max"] = value
    return expect


def load_regression(path: str) -> RegressionSpec:
    """Load and validate one regression spec file."""
    import tomllib

    with open(path, "rb") as f:
        try:
            doc = tomllib.load(f)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid regression spec {path!r}: {exc}") from None
    spec = _parse_regression(doc, source=path)
    spec.path = path
    return spec


def _parse_regression(doc: Mapping[str, Any], source: str) -> RegressionSpec:
    if doc.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"regression spec {source!r} has schema {doc.get('schema')!r}; "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    for table in ("scenario", "expect"):
        if not isinstance(doc.get(table), Mapping):
            raise ConfigurationError(
                f"regression spec {source!r} needs a [{table}] table"
            )
    scenario = spec_from_dict(dict(doc["scenario"]))
    expect: Dict[str, float] = {}
    for key, value in doc["expect"].items():
        if not key.endswith(("_min", "_max")):
            raise ConfigurationError(
                f"regression spec {source!r}: [expect] keys end in _min/_max, got {key!r}"
            )
        component = key.rsplit("_", 1)[0]
        if component not in BOUND_COMPONENTS:
            raise ConfigurationError(
                f"regression spec {source!r}: unknown damage component {component!r}; "
                f"choose from {BOUND_COMPONENTS}"
            )
        expect[key] = float(value)
    return RegressionSpec(
        name=scenario.name,
        scenario=scenario,
        expect=expect,
        provenance=dict(doc.get("provenance", {})),
    )


def list_regressions(directory: str) -> List[str]:
    """Sorted paths of every ``*.toml`` regression spec in ``directory``
    (empty when the directory does not exist)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if entry.endswith(".toml")
    )


def check_bounds(reg: RegressionSpec, score: DamageScore) -> List[str]:
    """Compare a replayed score against the spec's bounds; returns a
    human-readable list of violations (empty = within bounds)."""
    failures: List[str] = []
    components = score.components()
    for component in BOUND_COMPONENTS:
        low, high = reg.bound(component)
        value = components[component]
        if not low <= value <= high:
            failures.append(
                f"{component} = {value:g}, expected within [{low:g}, {high:g}]"
            )
    return failures

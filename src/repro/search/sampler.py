"""Randomized fault-schedule sampling for the adversarial hunter.

A *candidate* is one randomized nemesis schedule: a handful of
:class:`~repro.faults.spec.FaultSpec` entries with randomized kinds,
victim fractions, windows and overlaps, drawn inside a
:class:`SampleSpace` envelope. Candidate ``i`` of search seed ``S`` is
produced by a private ``random.Random(derive_seed(S, "hunt.schedule.i"))``
stream, so:

* the same ``(S, i)`` pair regenerates the schedule byte-identically —
  a found violation is replayable from two integers, no schedule file
  needed (the exporter still writes one for humans and CI),
* candidates are independent: changing the budget, skipping candidates
  or shrinking one never perturbs the schedules of the others.

Values are rounded to two decimals so sampled schedules read like the
hand-written ``[[faults]]`` entries in the bundled scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.faults.spec import FAULT_KINDS, FaultSpec
from repro.sim.rng import derive_seed

__all__ = ["SampleSpace", "sample_schedule"]


@dataclass
class SampleSpace:
    """The envelope candidates are drawn from.

    ``horizon`` bounds the fault phase: every sampled window lies inside
    ``[0, horizon)``, so windows overlap freely but the schedule never
    outlives the transaction phase by much. Fractional victim sets stay
    within ``[min_fraction, max_fraction]`` — large enough to bite,
    small enough that the cluster plausibly survives.
    """

    kinds: tuple = FAULT_KINDS
    min_faults: int = 1
    max_faults: int = 3
    horizon: float = 20.0
    min_duration: float = 2.0
    min_fraction: float = 0.1
    max_fraction: float = 0.45
    min_loss: float = 0.2
    max_loss: float = 0.9
    max_extra_latency: float = 0.5

    def __post_init__(self) -> None:
        if not 1 <= self.min_faults <= self.max_faults:
            raise ConfigurationError("need 1 <= min_faults <= max_faults")
        if self.horizon <= self.min_duration or self.min_duration <= 0:
            raise ConfigurationError("need 0 < min_duration < horizon")
        if not 0.0 < self.min_fraction <= self.max_fraction < 1.0:
            raise ConfigurationError("need 0 < min_fraction <= max_fraction < 1")
        if not 0.0 < self.min_loss <= self.max_loss <= 1.0:
            raise ConfigurationError("need 0 < min_loss <= max_loss <= 1")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )


def sample_schedule(
    search_seed: int, index: int, space: SampleSpace
) -> List[FaultSpec]:
    """Candidate ``index`` of search seed ``search_seed``: a randomized
    fault schedule inside ``space``, sorted by start time."""
    rng = random.Random(derive_seed(search_seed, f"hunt.schedule.{index}"))
    count = rng.randint(space.min_faults, space.max_faults)
    faults = [_sample_fault(rng, space) for _ in range(count)]
    faults.sort(key=lambda f: (f.start, f.kind))
    return faults


def _sample_fault(rng: random.Random, space: SampleSpace) -> FaultSpec:
    kind = rng.choice(space.kinds)
    start = round(rng.uniform(0.0, space.horizon - space.min_duration), 2)
    duration = round(
        rng.uniform(space.min_duration, max(space.min_duration, space.horizon - start)),
        2,
    )
    fraction = round(rng.uniform(space.min_fraction, space.max_fraction), 2)
    if kind == "partition":
        return FaultSpec(
            kind=kind,
            start=start,
            duration=duration,
            fraction=fraction,
            symmetric=rng.random() < 0.5,
        )
    if kind == "degrade":
        loss = round(rng.uniform(space.min_loss, space.max_loss), 2)
        extra_latency = 0.0
        if rng.random() < 0.5 and space.max_extra_latency > 0:
            extra_latency = round(rng.uniform(0.05, space.max_extra_latency), 2)
        return FaultSpec(
            kind=kind,
            start=start,
            duration=duration,
            fraction=fraction,
            loss=loss,
            extra_latency=extra_latency,
        )
    if kind == "burst_loss":
        loss = round(rng.uniform(space.min_loss, space.max_loss), 2)
        return FaultSpec(kind=kind, start=start, duration=duration, loss=max(loss, 0.01))
    return FaultSpec(kind="crash_recover", start=start, duration=duration, fraction=fraction)

"""DATAFLASKS deployment configuration.

One frozen-ish dataclass gathers every tunable of a node so deployments,
benches and tests configure clusters uniformly. Defaults follow the
paper's setup where stated (ten slices, Cyclon PSS, DSlead slicing) and
the gossip literature elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.gossip.dissemination import recommended_fanout

__all__ = ["DataFlasksConfig"]


@dataclass
class DataFlasksConfig:
    """All tunables of a DATAFLASKS node.

    :param num_slices: ``k``, the number of slices (paper: 10).
    :param expected_n: rough system size used to size the dissemination
        fanout to ``ln N + c`` when ``fanout`` is not given explicitly.
    :param fanout: global dissemination fanout override.
    :param intra_slice_fanout: forwarding fanout once a request is inside
        its target slice (slice views are small, so a smaller fanout
        floods a slice reliably).
    :param ttl: dissemination hop budget for requests.
    :param slicing_protocol: one of ``dslead``, ``ordered``, ``sliver``,
        ``static``.
    :param store_capacity: max objects a node stores (None = unlimited).
    :param gc_foreign_data: whether anti-entropy garbage-collects objects
        that no longer map to the node's slice (Section VII trade-off).
    """

    # --- slicing
    num_slices: int = 10
    slicing_protocol: str = "dslead"
    slicing_period: float = 1.0
    slicing_sample_size: int = 4
    slicing_reservoir_size: int = 256
    slicing_stability_rounds: int = 3

    # --- peer sampling
    view_size: int = 20
    shuffle_length: int = 8
    pss_period: float = 1.0

    # --- slice-local membership (intra-slice PSS)
    slice_view_size: int = 16
    slice_advert_period: float = 1.0
    slice_advert_fanout: int = 3
    slice_entry_max_age: int = 10

    # --- request dissemination
    expected_n: int = 1000
    fanout: Optional[int] = None
    fanout_c: float = 2.0
    intra_slice_fanout: int = 3
    ttl: int = 15
    dedup_capacity: int = 100_000

    # --- storage & replication
    store_capacity: Optional[int] = None
    antientropy_period: float = 2.0
    gc_foreign_data: bool = False

    # --- autonomous replication management (Section IV-C, optional)
    # When set, every node runs a decentralised size estimator and a
    # ReplicationManager that retunes num_slices to keep the slice size
    # (replication factor) near this target.
    auto_replication_target: Optional[int] = None
    auto_replication_period: float = 10.0

    def __post_init__(self) -> None:
        if self.num_slices <= 0:
            raise ConfigurationError("num_slices must be positive")
        if self.slicing_protocol not in ("dslead", "ordered", "sliver", "static"):
            raise ConfigurationError(
                f"unknown slicing protocol {self.slicing_protocol!r}"
            )
        if self.expected_n <= 0:
            raise ConfigurationError("expected_n must be positive")
        if self.fanout is not None and self.fanout <= 0:
            raise ConfigurationError("fanout must be positive")
        if self.ttl <= 0:
            raise ConfigurationError("ttl must be positive")
        if self.intra_slice_fanout <= 0:
            raise ConfigurationError("intra_slice_fanout must be positive")
        if self.store_capacity is not None and self.store_capacity <= 0:
            raise ConfigurationError("store_capacity must be positive or None")
        if self.auto_replication_target is not None and self.auto_replication_target <= 0:
            raise ConfigurationError("auto_replication_target must be positive or None")

    # ------------------------------------------------------------- helpers

    @property
    def effective_fanout(self) -> int:
        """The dissemination fanout actually used."""
        if self.fanout is not None:
            return self.fanout
        return recommended_fanout(self.expected_n, self.fanout_c)

    def scaled_to(self, n: int, **overrides) -> "DataFlasksConfig":
        """A copy re-targeted at a system of ``n`` nodes."""
        return replace(self, expected_n=n, **overrides)
